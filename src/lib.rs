//! # marea — A Middleware Architecture for Unmanned Aircraft Avionics
//!
//! Facade crate re-exporting the whole MAREA workspace. See the README for
//! the architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! The layers follow the PEPt architecture from the paper (§6):
//!
//! * [`presentation`] — the C-like data model ([`Value`](presentation::Value),
//!   [`DataType`](presentation::DataType));
//! * [`encoding`] — pluggable wire codecs;
//! * [`protocol`] — framing, ARQ reliability, fragmentation, bulk transfer;
//! * [`transport`] — pluggable transports (in-process, simulated LAN, UDP);
//! * [`core`] — the service container and the four communication primitives;
//! * [`netsim`] — the deterministic network simulator substrate;
//! * [`flightsim`] — the UAV flight dynamics substrate;
//! * [`services`] — reusable avionics services (GPS, mission control, …).

#![forbid(unsafe_code)]

pub use marea_core as core;
pub use marea_encoding as encoding;
pub use marea_flightsim as flightsim;
pub use marea_netsim as netsim;
pub use marea_presentation as presentation;
pub use marea_protocol as protocol;
pub use marea_services as services;
pub use marea_transport as transport;

/// Commonly used items, for glob import in examples and application code.
pub mod prelude {
    pub use marea_presentation::{DataType, Name, StructType, Value};
}
