//! Multicast file distribution (§4.4) under packet loss.
//!
//! Run with `cargo run --example file_distribution`.
//!
//! One publisher distributes a 256 KiB "image" to four subscriber nodes
//! over a LAN dropping 3% of datagrams. The MFTP-style protocol announces,
//! streams chunks by multicast, then iterates NACK-driven repair rounds
//! until everyone holds the file. Compare the wire cost with what four
//! independent unicast transfers would have paid.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use marea::core::{
    ContainerConfig, FileEvent, NodeId, ProtoDuration, Service, ServiceContext, ServiceDescriptor,
    SimHarness, TimerId,
};
use marea::netsim::{LinkConfig, NetConfig};

struct Publisher {
    data: Bytes,
}

impl Service for Publisher {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("imager").file_resource("imager/frame").build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(50), None);
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        println!("publisher: announcing {} bytes", self.data.len());
        ctx.publish_file("imager/frame", self.data.clone());
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        if let FileEvent::DistributionComplete { resource, revision, subscribers } = event {
            println!(
                "publisher: `{resource}` rev {revision} fully distributed to {subscribers} subscribers at t={}",
                ctx.now()
            );
        }
    }
}

struct Receiver {
    completions: Arc<Mutex<Vec<(u32, usize)>>>,
}

impl Service for Receiver {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("sink").subscribe_file("imager/frame").build()
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        if let FileEvent::Received { revision, data, .. } = event {
            println!(
                "node {}: received rev {} ({} bytes) at t={}",
                ctx.local_node(),
                revision,
                data.len(),
                ctx.now()
            );
            self.completions.lock().push((*revision, data.len()));
        }
    }
}

fn main() {
    const SUBSCRIBERS: u32 = 4;
    const SIZE: usize = 256 * 1024;

    let net =
        NetConfig::default().with_seed(99).with_default_link(LinkConfig::default().with_loss(0.03));
    let mut h = SimHarness::new(net);

    h.add_container(ContainerConfig::new("publisher", NodeId(1)));
    let data: Vec<u8> = (0..SIZE).map(|i| (i % 253) as u8).collect();
    h.add_service(NodeId(1), Box::new(Publisher { data: Bytes::from(data) }));

    let completions = Arc::new(Mutex::new(Vec::new()));
    for i in 0..SUBSCRIBERS {
        let node = NodeId(10 + i);
        h.add_container(ContainerConfig::new("subscriber", node));
        h.add_service(node, Box::new(Receiver { completions: completions.clone() }));
    }

    h.start_all();
    h.run_for_millis(5_000);

    let done = completions.lock().len();
    let stats = h.network().stats();
    println!("\n===== results =====");
    println!("complete receptions: {done}/{SUBSCRIBERS}");
    println!("datagrams sent (all nodes): {}", stats.datagrams_sent);
    println!("bytes sent on the wire:     {}", stats.bytes_sent);
    println!("datagrams lost to the LAN:  {}", stats.dropped_loss);
    let efficiency = SIZE as f64 * SUBSCRIBERS as f64 / stats.bytes_sent as f64;
    println!(
        "delivery efficiency: {:.2}x (payload delivered / wire bytes; unicast fan-out would sit near 1.0 before loss)",
        efficiency
    );
    assert_eq!(done as u32, SUBSCRIBERS);
    println!("multicast file distribution ✔");
}
