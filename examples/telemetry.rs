//! The FlightGear telemetry bridge (§6's two-day productivity anecdote).
//!
//! Run with `cargo run --example telemetry`.
//!
//! A GPS service flies a short survey; the [`TelemetryBridge`] — a service
//! written purely against the public MAREA API — converts the position
//! variable into FlightGear generic-protocol CSV and NMEA `GPGGA`
//! sentences, the formats a real visualization pipeline would ingest.

use std::sync::Arc;

use parking_lot::Mutex;

use marea::core::{ContainerConfig, NodeId, SimHarness};
use marea::flightsim::{FlightPlan, GeoPoint, Terrain, World};
use marea::netsim::NetConfig;
use marea::services::{GpsService, TelemetryBridge};

fn main() {
    let mut h = SimHarness::new(NetConfig::default().with_seed(6));

    let origin = GeoPoint::new(41.275, 1.987, 120.0);
    let plan = FlightPlan::survey(origin.displaced_m(200.0, 200.0), 800.0, 400.0, 2);
    let world =
        Arc::new(Mutex::new(World::new(origin, 25.0, plan, Terrain::new(6, origin, 1500.0, 5))));

    h.add_container(ContainerConfig::new("fcs", NodeId(1)));
    h.add_container(ContainerConfig::new("ground", NodeId(2)));
    h.add_service(NodeId(1), Box::new(GpsService::new(world, 6)));
    let lines = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(2), Box::new(TelemetryBridge::new(lines.clone())));

    h.start_all();
    h.run_for_millis(30_000); // 30 s of flight

    let lines = lines.lock();
    println!("captured {} telemetry lines; every 40th shown:\n", lines.len());
    println!("{:<52} | NMEA", "FlightGear generic protocol");
    println!("{}", "-".repeat(100));
    for pair in lines.chunks(2).step_by(20) {
        if let [fg, nmea] = pair {
            println!("{fg:<52} | {nmea}");
        }
    }
    assert!(lines.len() > 500, "20 Hz for 30 s produces a steady stream");
    println!("\ntelemetry bridge ✔ (built on the public service API alone)");
}
