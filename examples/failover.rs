//! Provider failover: the §4.3 degraded-mode story.
//!
//! Run with `cargo run --example failover`.
//!
//! A mission-critical client calls `storage/store` twice per second.
//! Two storage providers exist (primary on node 2, backup on node 3).
//! Mid-mission the primary node is crashed without warning. The middleware
//! detects the failure, purges its name cache and transparently redirects
//! calls to the backup — the mission continues in degraded mode, exactly
//! as the paper promises.

use std::sync::Arc;

use parking_lot::Mutex;

use marea::core::{
    CallError, CallHandle, CallOptions, ContainerConfig, FnPort, NodeId, ProtoDuration, Service,
    ServiceContext, ServiceDescriptor, SimHarness, TimerId,
};
use marea::netsim::NetConfig;
use marea::prelude::*;
use marea::services::{names, MemFs, StorageService};

type Outcomes = Arc<Mutex<Vec<(u64, Result<String, String>)>>>;

struct PeriodicWriter {
    outcomes: Outcomes,
    n: u32,
    store: FnPort<(String, Vec<u8>), bool>,
}

impl PeriodicWriter {
    fn new(outcomes: Outcomes) -> Self {
        PeriodicWriter { outcomes, n: 0, store: names::storage_store_port() }
    }
}

impl Service for PeriodicWriter {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("writer").requires_fn(&self.store).build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(500), Some(ProtoDuration::from_millis(500)));
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.n += 1;
        // Prefer the primary node; the middleware falls back dynamically.
        // The caller-visible contract travels with the call: a 600 ms
        // per-attempt deadline, up to 3 providers tried. The argument
        // tuple is checked against the port's signature at compile time.
        ctx.call_fn_with(
            &self.store,
            (format!("track/fix-{:03}", self.n), vec![0xAB; 64]),
            CallOptions::default()
                .pinned(NodeId(2))
                .with_deadline(ProtoDuration::from_millis(600))
                .with_retry_budget(3),
        );
    }

    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        let t = ctx.now().as_micros() / 1000;
        self.outcomes
            .lock()
            .push((t, result.map(|_| format!("ok (req {})", handle.0)).map_err(|e| e.to_string())));
    }
}

fn main() {
    let mut h = SimHarness::new(NetConfig::default().with_seed(7));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("primary", NodeId(2)));
    h.add_container(ContainerConfig::new("backup", NodeId(3)));

    let outcomes = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(1), Box::new(PeriodicWriter::new(outcomes.clone())));
    let primary_fs = MemFs::new();
    h.add_service(NodeId(2), Box::new(StorageService::new(primary_fs.clone())));
    let backup_fs = MemFs::new();
    h.add_service(NodeId(3), Box::new(StorageService::new(backup_fs.clone())));

    h.start_all();
    println!("phase 1: both providers alive (5 s)");
    h.run_for_millis(5_000);
    println!("  primary stored {} files, backup {} files", primary_fs.len(), backup_fs.len());

    println!("phase 2: CRASHING the primary storage node");
    h.crash_node(NodeId(2));
    h.run_for_millis(10_000);
    println!("  backup now stores {} files", backup_fs.len());

    println!("\ncall outcomes:");
    let mut ok = 0;
    let mut failed = 0;
    for (t, outcome) in outcomes.lock().iter() {
        match outcome {
            Ok(_) => ok += 1,
            Err(e) => {
                failed += 1;
                println!("  t={t:>6} ms  FAILED: {e}");
            }
        }
    }
    println!("  {ok} calls succeeded, {failed} failed during the blackout window");

    let client = h.container(NodeId(1)).unwrap();
    println!("\nmiddleware log (client node):");
    for (t, line) in client.log_lines() {
        println!("  [{t}] {line}");
    }
    println!(
        "\nfailovers performed: {}  (errors surfaced: {})",
        client.stats().call_failovers,
        client.stats().call_errors
    );
    assert!(backup_fs.len() > 10, "backup took over");
    println!("degraded-mode continuation ✔");
}
