//! The paper's Fig. 3 image-processing scenario, end to end.
//!
//! Run with `cargo run --example image_mission`.
//!
//! Four simulated avionics nodes:
//!
//! * **fcs** — GPS (position variable) + Mission Control (events, remote
//!   calls);
//! * **payload** — Camera (file publisher) + Video Processing (file
//!   subscriber, detection events);
//! * **storagebox** — Storage (file subscriber, archive);
//! * **ground** — Ground Station console + FlightGear telemetry bridge.
//!
//! All four communication primitives of the paper are used exactly where
//! §5 uses them. At the end the ground-station console and the storage
//! inventory are printed.

use std::sync::Arc;

use parking_lot::Mutex;

use marea::core::{ContainerConfig, NodeId, SimHarness};
use marea::flightsim::{FlightPlan, GeoPoint, Terrain, Waypoint, World};
use marea::netsim::{LinkConfig, NetConfig};
use marea::services::{
    CameraService, GpsService, GroundStationService, MemFs, MissionControlService, StorageService,
    TelemetryBridge, VideoProcessingService,
};

fn main() {
    // 1% packet loss: the reliability machinery earns its keep.
    let net = NetConfig::default()
        .with_seed(2007)
        .with_default_link(LinkConfig::default().with_loss(0.01));
    let mut h = SimHarness::new(net);
    h.set_tick_us(2_000);

    // The world: terrain with targets, and a photo run over the two targets
    // closest to the launch point.
    let origin = GeoPoint::new(41.275, 1.987, 120.0);
    let terrain = Terrain::new(2007, origin, 2000.0, 30);
    let mut targets = terrain.targets().to_vec();
    targets
        .sort_by(|a, b| origin.distance_m(&a.position).total_cmp(&origin.distance_m(&b.position)));
    let plan = FlightPlan::new(vec![
        Waypoint::photo(targets[0].position.at_alt(120.0)).with_radius_m(40.0),
        Waypoint::photo(targets[1].position.at_alt(120.0)).with_radius_m(40.0),
    ]);
    println!(
        "mission: {} photo waypoints, {:.0} m of flight",
        plan.len(),
        origin.distance_m(&plan.get(0).unwrap().point) + plan.path_length_m()
    );
    let world = Arc::new(Mutex::new(World::new(origin, 30.0, plan.clone(), terrain)));

    // The fleet.
    h.add_container(ContainerConfig::new("fcs", NodeId(1)));
    h.add_container(ContainerConfig::new("payload", NodeId(2)));
    h.add_container(ContainerConfig::new("storagebox", NodeId(3)));
    h.add_container(ContainerConfig::new("ground", NodeId(4)));

    h.add_service(NodeId(1), Box::new(GpsService::new(world.clone(), 2007)));
    h.add_service(NodeId(1), Box::new(MissionControlService::new(plan)));
    h.add_service(NodeId(2), Box::new(CameraService::new(world).with_resolution(128, 128)));
    h.add_service(NodeId(2), Box::new(VideoProcessingService::new()));
    let fs = MemFs::new();
    h.add_service(NodeId(3), Box::new(StorageService::new(fs.clone())));
    let display = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(4), Box::new(GroundStationService::new(display.clone())));
    let telemetry = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(4), Box::new(TelemetryBridge::new(telemetry.clone())));

    // Fly until the mission reports completion (or 3 simulated minutes).
    h.start_all();
    let mut done = false;
    for _ in 0..180 {
        h.run_for_millis(1_000);
        if display.lock().iter().any(|l| l.contains("MISSION COMPLETE")) {
            done = true;
            break;
        }
    }

    println!("\n===== ground station console =====");
    for line in display.lock().iter() {
        println!("{line}");
    }

    println!("\n===== storage inventory =====");
    for path in fs.list("") {
        let size = fs.read(&path).map(|b| b.len()).unwrap_or(0);
        println!("{path}  ({size} bytes)");
    }

    println!("\n===== telemetry sample (last 4 lines) =====");
    let telem = telemetry.lock();
    for line in telem.iter().rev().take(4).collect::<Vec<_>>().into_iter().rev() {
        println!("{line}");
    }

    println!("\n===== middleware counters =====");
    for node in 1..=4u32 {
        let c = h.container(NodeId(node)).unwrap();
        let s = c.stats();
        println!(
            "{:<10} vars_pub={:<5} vars_rx={:<5} events_pub={:<3} events_rx={:<3} calls={}/{} files_pub={} files_rx={} retx={} mismatches={}",
            c.name().as_str(),
            s.vars_published,
            s.var_samples_delivered,
            s.events_published,
            s.events_delivered,
            s.calls_made,
            s.calls_served,
            s.files_published,
            s.files_received,
            c.arq_stats().retransmitted,
            s.type_mismatches.total(),
        );
        // Every interaction goes through typed ports; the contract cannot
        // be violated.
        assert_eq!(s.type_mismatches.total(), 0);
    }
    assert!(done, "mission must complete");
    println!("\nmission complete ✔");
}
