//! Chaos-scenario engine demo.
//!
//! Run with `cargo run --example chaos`.
//!
//! Part 1 replays a corpus scenario (`ground_link_flap`) and prints its
//! invariant report. Part 2 scripts a custom scenario over *real* avionics
//! services: a GPS node is crashed mid-flight and restarted from its
//! service factory; an RTO invariant measures how long the ground station
//! goes without fresh position data. Everything runs on virtual time —
//! same seed, same trace, every machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use marea::core::scenario::{
    corpus, DirectoryConvergence, FaultEvent, FaultSchedule, NoSilentStaleness, RtoRecovery,
    Scenario, ScenarioReport, ScenarioRunner,
};
use marea::core::{
    ContainerConfig, Micros, NodeId, ProtoDuration, Service, ServiceContext, ServiceDescriptor,
    SimHarness, VarQos,
};
use marea::flightsim::{FlightPlan, GeoPoint, Terrain, World};
use marea::netsim::NetConfig;
use marea::prelude::*;
use marea::services::{GpsService, SharedWorld};
use parking_lot::Mutex;

fn print_report(report: &ScenarioReport) {
    println!(
        "  scenario `{}`: {} faults injected, {} checks, {} violation(s), {} virtual ms",
        report.name,
        report.events_applied,
        report.checks_run,
        report.violations.len(),
        report.elapsed.as_millis()
    );
    for v in &report.violations {
        println!("    VIOLATION at {:?} [{}]: {}", v.at, v.invariant, v.detail);
    }
    println!(
        "  net: {} datagrams sent, {} delivered, {} dropped",
        report.net_stats.datagrams_sent,
        report.net_stats.datagrams_delivered,
        report.net_stats.total_dropped()
    );
}

/// Counts `gps/position` samples at the ground station.
struct PositionWatch {
    last_at_us: Arc<AtomicU64>,
    seen: Arc<AtomicU64>,
}

impl Service for PositionWatch {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("position-watch")
            .subscribe_variable("gps/position", VarQos::default())
            .build()
    }
    fn on_variable(&mut self, ctx: &mut ServiceContext<'_>, _n: &Name, _v: &Value, _s: Micros) {
        self.seen.fetch_add(1, Ordering::Relaxed);
        self.last_at_us.fetch_max(ctx.now().as_micros(), Ordering::Relaxed);
    }
}

fn main() {
    println!("== part 1: corpus replay (quick profile, seed 99)");
    let report =
        corpus::run_named("ground_link_flap", &corpus::ScenarioConfig::quick(99)).expect("known");
    print_report(&report);

    println!("\n== part 2: custom scenario — GPS node crash + factory restart");
    let mut h = SimHarness::new(NetConfig::default().with_seed(99));
    h.add_container(ContainerConfig::new("ground", NodeId(1)));
    h.add_container(ContainerConfig::new("uav", NodeId(2)));

    // Real avionics services, registered restartably: the GPS factory
    // shares one simulated world, so the airframe keeps flying while the
    // avionics box is down — exactly what a reboot mid-mission looks like.
    let origin = GeoPoint::new(41.275, 1.987, 120.0);
    let plan = FlightPlan::survey(origin.displaced_m(200.0, 200.0), 800.0, 400.0, 2);
    let world: SharedWorld =
        Arc::new(Mutex::new(World::new(origin, 25.0, plan, Terrain::new(7, origin, 1500.0, 5))));
    h.add_service_factory(NodeId(2), GpsService::factory(world, 7));
    let last_at = Arc::new(AtomicU64::new(0));
    let seen = Arc::new(AtomicU64::new(0));
    let (l, s) = (last_at.clone(), seen.clone());
    h.add_service_factory(NodeId(1), move || {
        Box::new(PositionWatch { last_at_us: l.clone(), seen: s.clone() }) as Box<dyn Service>
    });
    h.start_all();

    let schedule = FaultSchedule::new()
        .crash(ProtoDuration::from_secs(2), NodeId(2))
        .restart(ProtoDuration::from_secs(5), NodeId(2));
    let mut runner = ScenarioRunner::new(h);
    runner.add_invariant(Box::new(DirectoryConvergence::new(ProtoDuration::from_secs(5))));
    runner.add_invariant(Box::new(NoSilentStaleness::new(ProtoDuration::from_millis(500))));
    // RTO: fresh position data must reach the ground within 4 s of the
    // *restart* (re-announce + re-subscribe + first sample).
    let l = last_at.clone();
    let rto = RtoRecovery::new(
        "position-resume-rto",
        ProtoDuration::from_secs(4),
        |ev| matches!(ev, FaultEvent::Restart(NodeId(2))),
        move |_h, armed| l.load(Ordering::Relaxed) > armed.as_micros(),
    );
    let recoveries = rto.recoveries();
    runner.add_invariant(Box::new(rto));

    let report =
        runner.run(&Scenario::new("gps_crash_restart", schedule, ProtoDuration::from_secs(12)));
    print_report(&report);
    println!("  position samples at ground: {}", seen.load(Ordering::Relaxed));
    for us in recoveries.lock().unwrap().iter() {
        println!("  position stream resumed {} ms after restart", us / 1_000);
    }
    let h = runner.into_harness();
    println!(
        "  uav rejoined with incarnation {} — directory converged: {}",
        h.container(NodeId(2)).map(|c| c.incarnation()).unwrap_or(0),
        h.container(NodeId(1)).map(|c| c.directory().node_alive(NodeId(2))).unwrap_or(false)
    );
    assert!(report.passed(), "demo scenario must hold its invariants");
}
