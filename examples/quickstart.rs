//! Quickstart: two avionics nodes, one variable, one event.
//!
//! Run with `cargo run --example quickstart`.
//!
//! A `beacon` service on node 1 publishes a counter variable at 20 Hz and
//! emits an event every 10th sample; a `display` service on node 2
//! subscribes to both. The whole thing runs on the deterministic simulated
//! LAN, so the output is identical on every machine.

use marea::core::{
    ContainerConfig, EventPort, EventQos, Micros, NodeId, ProtoDuration, Service, ServiceContext,
    ServiceDescriptor, SimHarness, TimerId, VarPort, VarQos,
};
use marea::netsim::NetConfig;
use marea::prelude::*;

/// The example's shared vocabulary: both services build their ports from
/// these constructors, so publisher and subscriber agree by construction.
fn count_port() -> VarPort<u64> {
    VarPort::new("beacon/count")
}

fn decade_port() -> EventPort<u64> {
    EventPort::new("beacon/decade")
}

/// Publishes `beacon/count` and emits `beacon/decade` every 10 counts.
struct Beacon {
    count: u64,
    count_port: VarPort<u64>,
    decade: EventPort<u64>,
}

impl Beacon {
    fn new() -> Self {
        Beacon { count: 0, count_port: count_port(), decade: decade_port() }
    }
}

impl Service for Beacon {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("beacon")
            .provides_var(
                &self.count_port,
                VarQos::periodic(ProtoDuration::from_millis(50), ProtoDuration::from_millis(200)),
            )
            .provides_event(&self.decade)
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(50), Some(ProtoDuration::from_millis(50)));
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.count += 1;
        // Typed publish: only a u64 compiles here.
        ctx.publish_to(&self.count_port, self.count);
        if self.count.is_multiple_of(10) {
            ctx.emit_to(&self.decade, self.count);
        }
    }
}

/// Prints what it receives.
struct Display {
    count_port: VarPort<u64>,
    decade: EventPort<u64>,
}

impl Display {
    fn new() -> Self {
        Display { count_port: count_port(), decade: decade_port() }
    }
}

impl Service for Display {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("display")
            // The subscription contract: guaranteed initial value and a
            // short history ring readable via ctx.history().
            .subscribe_to_var(&self.count_port, VarQos::default().with_initial().with_history(5))
            .subscribe_to_event(&self.decade, EventQos::default())
            .build()
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if let Ok(n) = self.count_port.decode(value) {
            if n % 5 == 0 {
                println!("[{}] variable {name} = {n}", ctx.now());
            }
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        stamp: Micros,
    ) {
        let latency_us = ctx.now().saturating_since(stamp).as_micros();
        // The declared history contract keeps the last few samples
        // readable without storing them in the service.
        let recent: Vec<u64> = ctx.history(&self.count_port).into_iter().map(|(_, n)| n).collect();
        println!(
            "[{}] EVENT {name} {:?} (delivered {latency_us} µs after production; recent counts {recent:?})",
            ctx.now(),
            self.decade.decode(value).ok()
        );
    }
}

fn main() {
    let mut harness = SimHarness::new(NetConfig::default());
    harness.add_container(ContainerConfig::new("flight-node", NodeId(1)));
    harness.add_container(ContainerConfig::new("ground-node", NodeId(2)));
    harness.add_service(NodeId(1), Box::new(Beacon::new()));
    harness.add_service(NodeId(2), Box::new(Display::new()));

    harness.start_all();
    harness.run_for_millis(2_000);

    let ground = harness.container(NodeId(2)).unwrap();
    let stats = ground.stats();
    println!("---");
    println!(
        "ground node received {} samples and {} events in 2 simulated seconds",
        stats.var_samples_delivered, stats.events_delivered
    );
    println!("mean event delivery latency: {:.0} µs", stats.event_latency_mean_us().unwrap_or(0.0));
}
