//! Experiment F4 (Fig. 4): the PEPt layers are pluggable.
//!
//! The same unmodified service code runs over different transports
//! (in-process hub vs simulated LAN) and different codecs (compact vs
//! self-describing), with identical observable behaviour.

use std::sync::{Arc, Mutex};

use marea::core::{
    ContainerConfig, ContainerStats, Micros, NodeId, ProtoDuration, Service, ServiceContainer,
    ServiceContext, ServiceDescriptor, TimerId, VarPort, VarQos,
};
use marea::encoding::CodecId;
use marea::netsim::{NetConfig, SimNet};
use marea::prelude::*;
use marea::presentation::{FromValue, HasDataType, IntoValue, StructType, TypeMismatch};
use marea::transport::{InProcHub, SimLanTransport, Transport};

/// The test vocabulary: a struct record moved through a typed port.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    n: u64,
    label: String,
}

impl HasDataType for Sample {
    fn data_type() -> DataType {
        DataType::Struct(
            StructType::new("Sample")
                .with_field("n", DataType::U64)
                .unwrap()
                .with_field("label", DataType::Str)
                .unwrap(),
        )
    }
}

impl IntoValue for Sample {
    fn into_value(self) -> Value {
        Value::struct_of("Sample").field("n", self.n).field("label", self.label).build().unwrap()
    }
}

impl FromValue for Sample {
    fn from_value(value: &Value) -> Result<Self, TypeMismatch> {
        let mismatch = || TypeMismatch::new(Self::data_type(), value.kind());
        Ok(Sample {
            n: value.at("n").and_then(Value::as_u64).ok_or_else(mismatch)?,
            label: value.at("label").and_then(Value::as_str).ok_or_else(mismatch)?.to_owned(),
        })
    }
}

fn sample_port() -> VarPort<Sample> {
    VarPort::new("p/value")
}

struct Producer {
    n: u64,
    port: VarPort<Sample>,
}

impl Service for Producer {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("producer")
            .provides_var(
                &self.port,
                VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
            )
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.n += 1;
        ctx.publish_to(&self.port, Sample { n: self.n, label: format!("s{}", self.n) });
    }
}

struct Consumer {
    got: Arc<Mutex<Vec<u64>>>,
    port: VarPort<Sample>,
}

impl Service for Consumer {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("consumer")
            .subscribe_to_var(&self.port, VarQos::default())
            .build()
    }

    fn on_variable(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if let Ok(sample) = self.port.decode(value) {
            self.got.lock().unwrap().push(sample.n);
        }
    }
}

/// Drives two containers over any pair of transports for 500 simulated
/// milliseconds and returns what the consumer saw.
fn run_pair(
    mut a: ServiceContainer,
    mut b: ServiceContainer,
    advance: impl Fn(u64),
) -> (Vec<u64>, ContainerStats) {
    let got = Arc::new(Mutex::new(Vec::new()));
    a.add_service(Box::new(Producer { n: 0, port: sample_port() })).unwrap();
    b.add_service(Box::new(Consumer { got: got.clone(), port: sample_port() })).unwrap();
    a.start(Micros(0));
    b.start(Micros(0));
    for ms in 1..=500u64 {
        advance(ms * 1000);
        a.tick(Micros(ms * 1000));
        b.tick(Micros(ms * 1000));
    }
    let stats = b.stats();
    let samples = got.lock().unwrap().clone();
    (samples, stats)
}

fn assert_steady(samples: &[u64], label: &str) {
    assert!(samples.len() >= 40, "{label}: steady stream, got {}", samples.len());
    assert!(samples.windows(2).all(|w| w[0] < w[1]), "{label}: monotone");
}

#[test]
fn same_services_run_over_inproc_transport() {
    let hub = InProcHub::new();
    let a = ServiceContainer::new(ContainerConfig::new("a", NodeId(1)), Box::new(hub.attach(1)));
    let b = ServiceContainer::new(ContainerConfig::new("b", NodeId(2)), Box::new(hub.attach(2)));
    let (samples, _) = run_pair(a, b, |_| {});
    assert_steady(&samples, "inproc");
}

#[test]
fn same_services_run_over_simulated_lan() {
    let net = SimNet::new(NetConfig::default());
    let a = ServiceContainer::new(
        ContainerConfig::new("a", NodeId(1)),
        Box::new(SimLanTransport::attach(&net, 1)),
    );
    let b = ServiceContainer::new(
        ContainerConfig::new("b", NodeId(2)),
        Box::new(SimLanTransport::attach(&net, 2)),
    );
    let net2 = net.clone();
    let (samples, _) = run_pair(a, b, move |us| net2.advance_to(us));
    assert_steady(&samples, "simlan");
}

#[test]
fn same_services_run_under_self_describing_codec() {
    let net = SimNet::new(NetConfig::default());
    let mut cfg_a = ContainerConfig::new("a", NodeId(1));
    cfg_a.codec = CodecId::SELF_DESCRIBING;
    let mut cfg_b = ContainerConfig::new("b", NodeId(2));
    cfg_b.codec = CodecId::SELF_DESCRIBING;
    let a = ServiceContainer::new(cfg_a, Box::new(SimLanTransport::attach(&net, 1)));
    let b = ServiceContainer::new(cfg_b, Box::new(SimLanTransport::attach(&net, 2)));
    let net2 = net.clone();
    let (samples, _) = run_pair(a, b, move |us| net2.advance_to(us));
    assert_steady(&samples, "self-describing");
}

#[test]
fn mixed_codec_fleet_interoperates() {
    // Publisher uses the self-describing codec, subscriber defaults to
    // compact: the codec id travels per message, so they interoperate.
    let net = SimNet::new(NetConfig::default());
    let mut cfg_a = ContainerConfig::new("a", NodeId(1));
    cfg_a.codec = CodecId::SELF_DESCRIBING;
    let cfg_b = ContainerConfig::new("b", NodeId(2));
    let a = ServiceContainer::new(cfg_a, Box::new(SimLanTransport::attach(&net, 1)));
    let b = ServiceContainer::new(cfg_b, Box::new(SimLanTransport::attach(&net, 2)));
    let net2 = net.clone();
    let (samples, _) = run_pair(a, b, move |us| net2.advance_to(us));
    assert_steady(&samples, "mixed-codec");
}

#[test]
fn self_describing_codec_costs_more_wire_bytes() {
    // The F4 ablation's point: plugability lets you measure the trade.
    let run_with = |codec: CodecId| -> u64 {
        let net = SimNet::new(NetConfig::default());
        let mut cfg_a = ContainerConfig::new("a", NodeId(1));
        cfg_a.codec = codec;
        let cfg_b = ContainerConfig::new("b", NodeId(2));
        let a = ServiceContainer::new(cfg_a, Box::new(SimLanTransport::attach(&net, 1)));
        let b = ServiceContainer::new(cfg_b, Box::new(SimLanTransport::attach(&net, 2)));
        let net2 = net.clone();
        let (samples, _) = run_pair(a, b, move |us| net2.advance_to(us));
        assert_steady(&samples, "codec-cost");
        net.stats().bytes_sent
    };
    let compact = run_with(CodecId::COMPACT);
    let selfdesc = run_with(CodecId::SELF_DESCRIBING);
    assert!(
        selfdesc > compact + 500,
        "type descriptors cost wire bytes: compact={compact}, self-describing={selfdesc}"
    );
}

#[test]
fn custom_transport_implementation_plugs_in() {
    /// A trivial user-written transport: loopback pair over `std` mpsc.
    #[derive(Debug)]
    struct PipeTransport {
        node: u32,
        tx: std::sync::mpsc::Sender<(u32, bytes::Bytes)>,
        rx: std::sync::mpsc::Receiver<(u32, bytes::Bytes)>,
    }
    impl Transport for PipeTransport {
        fn local_node(&self) -> u32 {
            self.node
        }
        fn mtu(&self) -> usize {
            65_536
        }
        fn send(
            &mut self,
            _dest: marea::transport::TransportDestination,
            frame: bytes::Bytes,
        ) -> Result<(), marea::transport::TransportError> {
            // Two-node world: everything goes to the peer.
            let _ = self.tx.send((self.node, frame));
            Ok(())
        }
        fn recv(&mut self) -> Option<(u32, bytes::Bytes)> {
            self.rx.try_recv().ok()
        }
        fn join(&mut self, _group: u32) {}
        fn leave(&mut self, _group: u32) {}
    }

    let (tx_ab, rx_ab) = std::sync::mpsc::channel();
    let (tx_ba, rx_ba) = std::sync::mpsc::channel();
    let a = ServiceContainer::new(
        ContainerConfig::new("a", NodeId(1)),
        Box::new(PipeTransport { node: 1, tx: tx_ab, rx: rx_ba }),
    );
    let b = ServiceContainer::new(
        ContainerConfig::new("b", NodeId(2)),
        Box::new(PipeTransport { node: 2, tx: tx_ba, rx: rx_ab }),
    );
    let (samples, _) = run_pair(a, b, |_| {});
    assert_steady(&samples, "custom-transport");
}
