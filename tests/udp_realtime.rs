//! Real-network smoke test: two containers on real UDP loopback sockets,
//! driven by wall-clock time. Verifies that nothing in the middleware
//! depends on the simulation harness.

use std::sync::{Arc, Mutex};

use marea::core::{
    Clock, ContainerConfig, EventPort, EventQos, Micros, NodeId, ProtoDuration, Service,
    ServiceContext, ServiceDescriptor, SystemClock, TimerId, VarPort, VarQos,
};
use marea::prelude::*;
use marea::transport::{UdpTransport, UdpTransportConfig};

struct Pinger {
    seq: VarPort<u64>,
    mark: EventPort<u64>,
}

impl Pinger {
    fn new() -> Self {
        Pinger { seq: VarPort::new("ping/seq"), mark: EventPort::new("ping/mark") }
    }
}

impl Service for Pinger {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("pinger")
            .provides_var(
                &self.seq,
                VarQos::periodic(ProtoDuration::from_millis(20), ProtoDuration::from_millis(200)),
            )
            .provides_event(&self.mark)
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(20), Some(ProtoDuration::from_millis(20)));
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        let n = ctx.now().as_millis();
        ctx.publish_to(&self.seq, n);
        if n % 100 < 20 {
            ctx.emit_to(&self.mark, n);
        }
    }
}

struct Ponger {
    vars: Arc<Mutex<u64>>,
    events: Arc<Mutex<u64>>,
}

impl Service for Ponger {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("ponger")
            .subscribe_variable("ping/seq", VarQos::default())
            .subscribe_event("ping/mark", EventQos::default())
            .build()
    }

    fn on_variable(&mut self, _ctx: &mut ServiceContext<'_>, _n: &Name, _v: &Value, _s: Micros) {
        *self.vars.lock().unwrap() += 1;
    }

    fn on_event(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _n: &Name,
        _v: Option<&Value>,
        _s: Micros,
    ) {
        *self.events.lock().unwrap() += 1;
    }
}

#[test]
fn two_containers_over_real_udp_loopback() {
    // Bind both endpoints first to learn the ephemeral ports.
    let t1 = UdpTransport::bind(UdpTransportConfig::new(1, "127.0.0.1:0")).unwrap();
    let t2 = UdpTransport::bind(UdpTransportConfig::new(2, "127.0.0.1:0")).unwrap();
    let a1 = t1.local_addr().unwrap();
    let a2 = t2.local_addr().unwrap();
    let mut t1 = t1;
    let mut t2 = t2;
    t1.add_peer(2, a2);
    t2.add_peer(1, a1);

    let mut c1 =
        marea::core::ServiceContainer::new(ContainerConfig::new("udp-a", NodeId(1)), Box::new(t1));
    let mut c2 =
        marea::core::ServiceContainer::new(ContainerConfig::new("udp-b", NodeId(2)), Box::new(t2));
    c1.add_service(Box::new(Pinger::new())).unwrap();
    let vars = Arc::new(Mutex::new(0u64));
    let events = Arc::new(Mutex::new(0u64));
    c2.add_service(Box::new(Ponger { vars: vars.clone(), events: events.clone() })).unwrap();

    // Drive both containers from one thread against the wall clock,
    // ticking every millisecond *until the deliveries we wait for have
    // arrived* (bounded by a generous deadline). A fixed-length run would
    // flake on loaded CI machines where the loop is starved of CPU; the
    // convergence condition makes the test state *what* it waits for
    // instead of guessing how long that takes.
    const WANT_VARS: u64 = 30;
    const WANT_EVENTS: u64 = 2;
    let clock = SystemClock::new();
    c1.start(clock.now());
    c2.start(clock.now());
    // marea-lint: allow(D2): real-time UDP smoke test; wall-clock pacing is the point
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let now = clock.now();
        c1.tick(now);
        c2.tick(now);
        let done = *vars.lock().unwrap() >= WANT_VARS && *events.lock().unwrap() >= WANT_EVENTS;
        // marea-lint: allow(D2): real-time UDP smoke test; wall-clock pacing is the point
        if done || std::time::Instant::now() >= deadline {
            break;
        }
        // marea-lint: allow(D2): yields the CPU between real ticks; virtual time does not apply
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    c1.stop(clock.now());
    c2.stop(clock.now());

    let vars = *vars.lock().unwrap();
    let events = *events.lock().unwrap();
    assert!(vars >= WANT_VARS, "real UDP delivered a sample stream: {vars}");
    assert!(events >= WANT_EVENTS, "real UDP delivered reliable events: {events}");
}
