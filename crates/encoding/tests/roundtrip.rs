//! Property tests: both codecs round-trip arbitrary conforming values.

use marea_encoding::{typedesc, Codec, CompactCodec, DecodeError, SelfDescribingCodec};
use marea_presentation::testkit::{arb_data_type, arb_typed_value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// compact: decode(encode(v)) == v for arbitrary conforming values.
    #[test]
    fn compact_roundtrip((ty, value) in arb_typed_value(3)) {
        let bytes = CompactCodec.encode_to_vec(&value, &ty).unwrap();
        let back = CompactCodec.decode(&bytes, &ty).unwrap();
        prop_assert_eq!(back, value);
    }

    /// self-describing: decode(encode(v)) == v and the embedded schema
    /// equals the declared one.
    #[test]
    fn selfdesc_roundtrip((ty, value) in arb_typed_value(3)) {
        let bytes = SelfDescribingCodec.encode_to_vec(&value, &ty).unwrap();
        let back = SelfDescribingCodec.decode(&bytes, &ty).unwrap();
        prop_assert_eq!(&back, &value);
        let (embedded, any) = SelfDescribingCodec::decode_any(&bytes).unwrap();
        prop_assert_eq!(embedded, ty);
        prop_assert_eq!(any, value);
    }

    /// Type descriptors round-trip for arbitrary types.
    #[test]
    fn typedesc_roundtrip(ty in arb_data_type(4)) {
        let bytes = typedesc::encode_type_to_vec(&ty);
        let back = typedesc::decode_type_from_slice(&bytes).unwrap();
        prop_assert_eq!(back, ty);
    }

    /// The compact encoding is never longer than the self-describing one.
    #[test]
    fn compact_is_no_larger((ty, value) in arb_typed_value(3)) {
        let compact = CompactCodec.encode_to_vec(&value, &ty).unwrap();
        let selfd = SelfDescribingCodec.encode_to_vec(&value, &ty).unwrap();
        prop_assert!(compact.len() < selfd.len(),
            "compact {} must be smaller than self-describing {}", compact.len(), selfd.len());
    }

    /// Decoding truncated compact input never panics and never succeeds
    /// with a wrong-but-complete value followed by trailing garbage.
    #[test]
    fn compact_truncation_never_panics((ty, value) in arb_typed_value(3), cut_ratio in 0.0f64..1.0) {
        let bytes = CompactCodec.encode_to_vec(&value, &ty).unwrap();
        if bytes.is_empty() {
            return Ok(()); // e.g. empty anonymous structs encode to nothing
        }
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        if cut == bytes.len() {
            return Ok(());
        }
        // Some prefixes happen to decode (e.g. a shorter varint); that is
        // fine only if the prefix is a complete valid encoding, which
        // decode() enforces by rejecting trailing bytes. A success here
        // means the truncation landed exactly on a value boundary of a
        // *different* value — acceptable for a positional codec. Either
        // way: no panic.
        let _ = CompactCodec.decode(&bytes[..cut], &ty);
    }

    /// Random byte soup never panics the self-describing decoder.
    #[test]
    fn selfdesc_fuzz_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SelfDescribingCodec::decode_any(&bytes);
    }

    /// Corrupting a single byte of a self-describing payload is always
    /// detected as *some* error or decodes to a conforming value — never a
    /// panic, never trailing garbage.
    #[test]
    fn selfdesc_corruption_is_contained((ty, value) in arb_typed_value(2), pos in any::<prop::sample::Index>(), xor in 1u8..=255) {
        let mut bytes = SelfDescribingCodec.encode_to_vec(&value, &ty).unwrap();
        if bytes.is_empty() {
            return Ok(());
        }
        let i = pos.index(bytes.len());
        bytes[i] ^= xor;
        if let Ok((decoded_ty, decoded_value)) = SelfDescribingCodec::decode_any(&bytes) {
            prop_assert!(decoded_value.conforms_to(&decoded_ty).is_ok());
        }
    }
}

#[test]
fn empty_input_fails_cleanly() {
    assert!(matches!(
        CompactCodec.decode(&[], &marea_presentation::DataType::U32),
        Err(DecodeError::UnexpectedEof { .. })
    ));
    assert!(SelfDescribingCodec::decode_any(&[]).is_err());
}
