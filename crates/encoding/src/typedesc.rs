//! Wire-format type descriptors.
//!
//! A type descriptor is the serialized form of a [`DataType`]. It travels in
//! two places:
//!
//! * in front of every [`SelfDescribingCodec`](crate::SelfDescribingCodec)
//!   payload, and
//! * inside the discovery announcements the service containers broadcast
//!   when a service declares its variables/events/functions (paper §3, name
//!   management) — peers learn schemas from the descriptor, never from
//!   out-of-band configuration.

use bytes::BytesMut;

use marea_presentation::{DataType, StructType, TypeKind, UnionType, VectorType};

use crate::error::DecodeError;
use crate::wire::{WireReader, WireWriter};

/// Maximum nesting depth accepted when decoding a descriptor.
const MAX_TYPE_DEPTH: usize = 32;

/// Maximum number of fields/alternatives accepted per composite.
const MAX_FIELDS: usize = 256;

/// Maximum length of an embedded field/alternative name.
const MAX_NAME_LEN: usize = 128;

/// Serializes a [`DataType`] into `buf`.
pub fn encode_type(ty: &DataType, buf: &mut BytesMut) {
    let mut w = WireWriter::new(buf);
    encode_into(ty, &mut w);
}

/// Serializes a [`DataType`] into a fresh vector.
pub fn encode_type_to_vec(ty: &DataType) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode_type(ty, &mut buf);
    buf.to_vec()
}

fn encode_into(ty: &DataType, w: &mut WireWriter<'_>) {
    w.put_u8(ty.kind().wire_tag());
    match ty {
        DataType::Vector(vt) => {
            match vt.fixed_len() {
                Some(n) => {
                    w.put_u8(1);
                    w.put_varint(n as u64);
                }
                None => w.put_u8(0),
            }
            encode_into(vt.elem(), w);
        }
        DataType::Struct(st) => {
            encode_opt_name(st.name().map(|n| n.as_str()), w);
            w.put_varint(st.fields().len() as u64);
            for f in st.fields() {
                w.put_str(f.name().as_str());
                encode_into(f.ty(), w);
            }
        }
        DataType::Union(ut) => {
            encode_opt_name(ut.name().map(|n| n.as_str()), w);
            w.put_varint(ut.alternatives().len() as u64);
            for a in ut.alternatives() {
                w.put_str(a.name().as_str());
                encode_into(a.ty(), w);
            }
        }
        _ => {} // scalar: tag is everything
    }
}

fn encode_opt_name(name: Option<&str>, w: &mut WireWriter<'_>) {
    match name {
        Some(n) => {
            w.put_u8(1);
            w.put_str(n);
        }
        None => w.put_u8(0),
    }
}

/// Deserializes a [`DataType`] from a reader.
///
/// # Errors
///
/// Any [`DecodeError`] for malformed input: unknown tags, invalid embedded
/// names, excessive nesting or field counts.
pub fn decode_type(r: &mut WireReader<'_>) -> Result<DataType, DecodeError> {
    decode_from(r, 0)
}

/// Deserializes a [`DataType`] from a complete byte slice.
///
/// # Errors
///
/// As [`decode_type`], plus [`DecodeError::TrailingBytes`] if input remains.
pub fn decode_type_from_slice(bytes: &[u8]) -> Result<DataType, DecodeError> {
    let mut r = WireReader::new(bytes);
    let ty = decode_type(&mut r)?;
    if !r.is_empty() {
        return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
    }
    Ok(ty)
}

fn decode_from(r: &mut WireReader<'_>, depth: usize) -> Result<DataType, DecodeError> {
    if depth > MAX_TYPE_DEPTH {
        return Err(DecodeError::TooDeep { limit: MAX_TYPE_DEPTH });
    }
    let tag = r.get_u8()?;
    let kind = TypeKind::from_wire_tag(tag).ok_or(DecodeError::InvalidTag(tag))?;
    Ok(match kind {
        TypeKind::Bool => DataType::Bool,
        TypeKind::I8 => DataType::I8,
        TypeKind::I16 => DataType::I16,
        TypeKind::I32 => DataType::I32,
        TypeKind::I64 => DataType::I64,
        TypeKind::U8 => DataType::U8,
        TypeKind::U16 => DataType::U16,
        TypeKind::U32 => DataType::U32,
        TypeKind::U64 => DataType::U64,
        TypeKind::F32 => DataType::F32,
        TypeKind::F64 => DataType::F64,
        TypeKind::Char => DataType::Char,
        TypeKind::Str => DataType::Str,
        TypeKind::Bytes => DataType::Bytes,
        TypeKind::Vector => {
            let fixed = r.get_bool().map_err(|_| DecodeError::InvalidTag(2))?;
            let len = if fixed {
                let n = r.get_varint()?;
                Some(usize::try_from(n).map_err(|_| DecodeError::VarintOverflow)?)
            } else {
                None
            };
            let elem = decode_from(r, depth + 1)?;
            match len {
                Some(n) => DataType::Vector(VectorType::fixed(elem, n)),
                None => DataType::Vector(VectorType::of(elem)),
            }
        }
        TypeKind::Struct => {
            let name = decode_opt_name(r)?;
            let count = r.get_varint()?;
            if count > MAX_FIELDS as u64 {
                return Err(DecodeError::LengthOverflow { declared: count, limit: MAX_FIELDS });
            }
            let mut st = match name {
                Some(n) => StructType::new(&n),
                None => StructType::anonymous(),
            };
            for _ in 0..count {
                let fname = r.get_str(MAX_NAME_LEN)?.to_owned();
                let fty = decode_from(r, depth + 1)?;
                st = st.with_field(&fname, fty).map_err(|_| DecodeError::InvalidName)?;
            }
            DataType::Struct(st)
        }
        TypeKind::Union => {
            let name = decode_opt_name(r)?;
            let count = r.get_varint()?;
            if count > MAX_FIELDS as u64 {
                return Err(DecodeError::LengthOverflow { declared: count, limit: MAX_FIELDS });
            }
            let mut ut = match name {
                Some(n) => UnionType::new(&n),
                None => UnionType::anonymous(),
            };
            for _ in 0..count {
                let aname = r.get_str(MAX_NAME_LEN)?.to_owned();
                let aty = decode_from(r, depth + 1)?;
                ut = ut.with_alternative(&aname, aty).map_err(|_| DecodeError::InvalidName)?;
            }
            DataType::Union(ut)
        }
    })
}

fn decode_opt_name(r: &mut WireReader<'_>) -> Result<Option<String>, DecodeError> {
    let present = r.get_bool().map_err(|e| match e {
        DecodeError::InvalidBool(b) => DecodeError::InvalidTag(b),
        other => other,
    })?;
    if present {
        let s = r.get_str(MAX_NAME_LEN)?;
        // Names embedded in descriptors must themselves be valid.
        marea_presentation::Name::new(s).map_err(|_| DecodeError::InvalidName)?;
        Ok(Some(s.to_owned()))
    } else {
        Ok(None)
    }
}

// StructType::new / UnionType::new panic on invalid literals; the decoder
// validated the name first, so wrap them safely here.
#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ty: &DataType) -> DataType {
        let bytes = encode_type_to_vec(ty);
        decode_type_from_slice(&bytes).unwrap()
    }

    #[test]
    fn scalars_are_one_byte() {
        for ty in [DataType::Bool, DataType::F64, DataType::Str, DataType::Bytes] {
            let bytes = encode_type_to_vec(&ty);
            assert_eq!(bytes.len(), 1);
            assert_eq!(roundtrip(&ty), ty);
        }
    }

    #[test]
    fn composites_roundtrip() {
        let ty = DataType::Struct(
            StructType::new("Fix")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("history", DataType::Vector(VectorType::fixed(DataType::F32, 8)))
                .unwrap()
                .with_field(
                    "status",
                    DataType::Union(
                        UnionType::anonymous()
                            .with_alternative("ok", DataType::Bool)
                            .unwrap()
                            .with_alternative("err", DataType::Str)
                            .unwrap(),
                    ),
                )
                .unwrap(),
        );
        assert_eq!(roundtrip(&ty), ty);
    }

    #[test]
    fn anonymous_and_named_composites_are_distinguished() {
        let anon = DataType::Struct(StructType::anonymous().with_field("x", DataType::U8).unwrap());
        let named = DataType::Struct(StructType::new("X").with_field("x", DataType::U8).unwrap());
        assert_eq!(roundtrip(&anon), anon);
        assert_eq!(roundtrip(&named), named);
        assert_ne!(encode_type_to_vec(&anon), encode_type_to_vec(&named));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode_type_from_slice(&[0xEE]), Err(DecodeError::InvalidTag(0xEE)));
    }

    #[test]
    fn truncation_is_rejected() {
        let ty = DataType::Struct(StructType::new("S").with_field("a", DataType::U64).unwrap());
        let bytes = encode_type_to_vec(&ty);
        for cut in 0..bytes.len() {
            assert!(
                decode_type_from_slice(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn embedded_bad_names_are_rejected() {
        // Hand-craft a struct descriptor with an invalid field name "9x".
        let mut buf = BytesMut::new();
        {
            let mut w = WireWriter::new(&mut buf);
            w.put_u8(TypeKind::Struct.wire_tag());
            w.put_u8(0); // anonymous
            w.put_varint(1);
            w.put_str("9x");
            w.put_u8(TypeKind::Bool.wire_tag());
        }
        assert_eq!(decode_type_from_slice(&buf), Err(DecodeError::InvalidName));
    }

    #[test]
    fn field_count_limit_is_enforced() {
        let mut buf = BytesMut::new();
        {
            let mut w = WireWriter::new(&mut buf);
            w.put_u8(TypeKind::Struct.wire_tag());
            w.put_u8(0);
            w.put_varint(100_000);
        }
        assert!(matches!(decode_type_from_slice(&buf), Err(DecodeError::LengthOverflow { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_type_to_vec(&DataType::Bool);
        bytes.push(0);
        assert_eq!(
            decode_type_from_slice(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }
}
