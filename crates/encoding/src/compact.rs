//! The compact, schema-directed codec.

use bytes::BytesMut;

use marea_presentation::{
    DataType, StructBuilder, TypeError, TypeErrorKind, UnionValue, Value, VectorValue,
};

use crate::codec::{Codec, CodecId};
use crate::error::{DecodeError, EncodeError};
use crate::wire::{WireReader, WireWriter};

/// Maximum nesting depth accepted on both encode and decode.
///
/// Variables in a UAV mission are small telemetry records; bounding depth
/// protects the low-resource nodes the paper targets from stack abuse by a
/// corrupted or malicious peer.
pub(crate) const MAX_DEPTH: usize = 32;

/// Maximum length accepted for any single string/blob/vector component.
pub(crate) const MAX_COMPONENT_LEN: usize = 64 * 1024 * 1024;

/// Schema-directed positional codec: the tightest wire representation.
///
/// Because both peers share the schema (exchanged once at announcement
/// time), no type tags or field names travel with data — exactly the
/// bandwidth frugality the paper's *variable* primitive needs at 20 Hz over
/// a radio modem.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactCodec;

impl CompactCodec {
    fn encode_into(
        value: &Value,
        ty: &DataType,
        w: &mut WireWriter<'_>,
        depth: usize,
    ) -> Result<(), EncodeError> {
        if depth > MAX_DEPTH {
            return Err(EncodeError::TooDeep { limit: MAX_DEPTH });
        }
        match (ty, value) {
            (DataType::Bool, Value::Bool(v)) => w.put_bool(*v),
            (DataType::I8, Value::I8(v)) => w.put_u8(*v as u8),
            (DataType::I16, Value::I16(v)) => w.put_signed_varint(i64::from(*v)),
            (DataType::I32, Value::I32(v)) => w.put_signed_varint(i64::from(*v)),
            (DataType::I64, Value::I64(v)) => w.put_signed_varint(*v),
            (DataType::U8, Value::U8(v)) => w.put_u8(*v),
            (DataType::U16, Value::U16(v)) => w.put_varint(u64::from(*v)),
            (DataType::U32, Value::U32(v)) => w.put_varint(u64::from(*v)),
            (DataType::U64, Value::U64(v)) => w.put_varint(*v),
            (DataType::F32, Value::F32(v)) => w.put_f32_le(*v),
            (DataType::F64, Value::F64(v)) => w.put_f64_le(*v),
            (DataType::Char, Value::Char(v)) => w.put_varint(u64::from(u32::from(*v))),
            (DataType::Str, Value::Str(v)) => {
                if v.len() > MAX_COMPONENT_LEN {
                    return Err(EncodeError::TooLarge { size: v.len(), limit: MAX_COMPONENT_LEN });
                }
                w.put_str(v);
            }
            (DataType::Bytes, Value::Bytes(v)) => {
                if v.len() > MAX_COMPONENT_LEN {
                    return Err(EncodeError::TooLarge { size: v.len(), limit: MAX_COMPONENT_LEN });
                }
                w.put_len_prefixed(v);
            }
            (DataType::Vector(vt), Value::Vector(vv)) => {
                if vt.fixed_len().is_none() {
                    w.put_varint(vv.len() as u64);
                }
                for item in vv.iter() {
                    Self::encode_into(item, vt.elem(), w, depth + 1)?;
                }
            }
            (DataType::Struct(st), Value::Struct(sv)) => {
                for (def, (_, field_value)) in st.fields().iter().zip(sv.fields()) {
                    Self::encode_into(field_value, def.ty(), w, depth + 1)?;
                }
            }
            (DataType::Union(ut), Value::Union(uv)) => {
                w.put_varint(u64::from(uv.discriminant()));
                let alt = &ut.alternatives()[uv.discriminant() as usize];
                Self::encode_into(uv.value(), alt.ty(), w, depth + 1)?;
            }
            // conforms_to() ran before dispatch, so this is unreachable in
            // practice; keep a defensive error rather than a panic.
            (expected, found) => {
                return Err(EncodeError::Type(TypeError::new(TypeErrorKind::KindMismatch {
                    expected: expected.kind(),
                    found: found.kind(),
                })));
            }
        }
        Ok(())
    }

    pub(crate) fn decode_from(
        r: &mut WireReader<'_>,
        ty: &DataType,
        depth: usize,
    ) -> Result<Value, DecodeError> {
        if depth > MAX_DEPTH {
            return Err(DecodeError::TooDeep { limit: MAX_DEPTH });
        }
        Ok(match ty {
            DataType::Bool => Value::Bool(r.get_bool()?),
            DataType::I8 => Value::I8(r.get_u8()? as i8),
            DataType::I16 => {
                let v = r.get_signed_varint()?;
                Value::I16(i16::try_from(v).map_err(|_| DecodeError::VarintOverflow)?)
            }
            DataType::I32 => {
                let v = r.get_signed_varint()?;
                Value::I32(i32::try_from(v).map_err(|_| DecodeError::VarintOverflow)?)
            }
            DataType::I64 => Value::I64(r.get_signed_varint()?),
            DataType::U8 => Value::U8(r.get_u8()?),
            DataType::U16 => {
                let v = r.get_varint()?;
                Value::U16(u16::try_from(v).map_err(|_| DecodeError::VarintOverflow)?)
            }
            DataType::U32 => {
                let v = r.get_varint()?;
                Value::U32(u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)?)
            }
            DataType::U64 => Value::U64(r.get_varint()?),
            DataType::F32 => Value::F32(r.get_f32_le()?),
            DataType::F64 => Value::F64(r.get_f64_le()?),
            DataType::Char => {
                let cp = r.get_varint()?;
                let cp = u32::try_from(cp).map_err(|_| DecodeError::VarintOverflow)?;
                Value::Char(char::from_u32(cp).ok_or(DecodeError::InvalidChar(cp))?)
            }
            DataType::Str => Value::Str(r.get_str(MAX_COMPONENT_LEN)?.to_owned()),
            DataType::Bytes => Value::Bytes(r.get_len_prefixed(MAX_COMPONENT_LEN)?.to_vec()),
            DataType::Vector(vt) => {
                let len = match vt.fixed_len() {
                    Some(n) => n as u64,
                    None => r.get_varint()?,
                };
                if len > MAX_COMPONENT_LEN as u64 {
                    return Err(DecodeError::LengthOverflow {
                        declared: len,
                        limit: MAX_COMPONENT_LEN,
                    });
                }
                let mut items = Vec::with_capacity(usize::min(len as usize, 1024));
                for _ in 0..len {
                    items.push(Self::decode_from(r, vt.elem(), depth + 1)?);
                }
                Value::Vector(
                    VectorValue::new(vt.elem().clone(), items)
                        .expect("decoded elements conform by construction"),
                )
            }
            DataType::Struct(st) => {
                let mut b = StructBuilder::anonymous();
                for def in st.fields() {
                    let v = Self::decode_from(r, def.ty(), depth + 1)?;
                    b = b.field(def.name().as_str(), v);
                }
                b.build().expect("schema field names are valid")
            }
            DataType::Union(ut) => {
                let disc = r.get_varint()?;
                let disc = u32::try_from(disc).map_err(|_| DecodeError::VarintOverflow)?;
                let alt = ut
                    .alternatives()
                    .get(disc as usize)
                    .ok_or(DecodeError::InvalidDiscriminant(disc))?;
                let v = Self::decode_from(r, alt.ty(), depth + 1)?;
                Value::Union(
                    UnionValue::new(disc, alt.name().as_str(), v)
                        .expect("schema alternative names are valid"),
                )
            }
        })
    }
}

impl Codec for CompactCodec {
    fn id(&self) -> CodecId {
        CodecId::COMPACT
    }

    fn name(&self) -> &'static str {
        "compact"
    }

    fn encode(&self, value: &Value, ty: &DataType, buf: &mut BytesMut) -> Result<(), EncodeError> {
        value.conforms_to(ty)?;
        let mut w = WireWriter::new(buf);
        Self::encode_into(value, ty, &mut w, 0)
    }

    fn decode(&self, bytes: &[u8], ty: &DataType) -> Result<Value, DecodeError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode_from(&mut r, ty, 0)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_presentation::{StructType, UnionType, VectorType};

    fn codec() -> CompactCodec {
        CompactCodec
    }

    fn roundtrip(v: &Value, ty: &DataType) -> Value {
        let bytes = codec().encode_to_vec(v, ty).unwrap();
        codec().decode(&bytes, ty).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        let cases: Vec<(Value, DataType)> = vec![
            (Value::Bool(true), DataType::Bool),
            (Value::I8(-5), DataType::I8),
            (Value::I16(-300), DataType::I16),
            (Value::I32(i32::MIN), DataType::I32),
            (Value::I64(i64::MAX), DataType::I64),
            (Value::U8(200), DataType::U8),
            (Value::U16(65535), DataType::U16),
            (Value::U32(7), DataType::U32),
            (Value::U64(u64::MAX), DataType::U64),
            (Value::F32(1.25), DataType::F32),
            (Value::F64(-0.0), DataType::F64),
            (Value::Char('λ'), DataType::Char),
            (Value::Str("mission".into()), DataType::Str),
            (Value::Bytes(vec![1, 2, 3]), DataType::Bytes),
        ];
        for (v, ty) in cases {
            assert_eq!(roundtrip(&v, &ty), v, "{ty}");
        }
    }

    #[test]
    fn struct_encoding_is_positional_and_tight() {
        let ty = DataType::Struct(
            StructType::new("Fix")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap(),
        );
        let v = Value::struct_of("Fix").field("lat", 1.0).field("lon", 2.0).build().unwrap();
        let bytes = codec().encode_to_vec(&v, &ty).unwrap();
        assert_eq!(bytes.len(), 16, "no tags, no names: exactly two f64");
        assert_eq!(roundtrip(&v, &ty), v);
    }

    #[test]
    fn fixed_vectors_have_no_length_prefix() {
        let fixed = DataType::Vector(VectorType::fixed(DataType::U8, 4));
        let var = DataType::Vector(VectorType::of(DataType::U8));
        let v_fixed = Value::Vector(
            VectorValue::new(DataType::U8, vec![1u8.into(), 2u8.into(), 3u8.into(), 4u8.into()])
                .unwrap(),
        );
        let fixed_bytes = codec().encode_to_vec(&v_fixed, &fixed).unwrap();
        let var_bytes = codec().encode_to_vec(&v_fixed, &var).unwrap();
        assert_eq!(fixed_bytes.len(), 4);
        assert_eq!(var_bytes.len(), 5, "one varint length byte");
        assert_eq!(roundtrip(&v_fixed, &fixed), v_fixed);
    }

    #[test]
    fn unions_carry_discriminant() {
        let ut = UnionType::new("Alarm")
            .with_alternative("engine", DataType::U8)
            .unwrap()
            .with_alternative("msg", DataType::Str)
            .unwrap();
        let ty = DataType::Union(ut.clone());
        let v = Value::Union(UnionValue::for_type(&ut, "msg", "low fuel").unwrap());
        assert_eq!(roundtrip(&v, &ty), v);
    }

    #[test]
    fn nonconforming_value_is_rejected_before_encoding() {
        let err = codec().encode_to_vec(&Value::Bool(true), &DataType::F64).unwrap_err();
        assert!(matches!(err, EncodeError::Type(_)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = codec().encode_to_vec(&Value::U8(3), &DataType::U8).unwrap();
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            codec().decode(&extended, &DataType::U8),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn truncated_input_is_rejected() {
        let ty = DataType::Struct(StructType::new("P").with_field("x", DataType::F64).unwrap());
        let v = Value::struct_of("P").field("x", 9.0).build().unwrap();
        let bytes = codec().encode_to_vec(&v, &ty).unwrap();
        assert!(matches!(codec().decode(&bytes[..4], &ty), Err(DecodeError::UnexpectedEof { .. })));
    }

    #[test]
    fn bad_union_discriminant_is_rejected() {
        let ut = UnionType::new("U").with_alternative("a", DataType::U8).unwrap();
        let ty = DataType::Union(ut);
        // discriminant 9 with payload byte
        let bytes = [9u8, 0u8];
        assert_eq!(codec().decode(&bytes, &ty), Err(DecodeError::InvalidDiscriminant(9)));
    }

    #[test]
    fn char_decoding_validates_scalar_values() {
        // 0xD800 is a surrogate, invalid as char.
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_varint(0xD800);
        assert_eq!(codec().decode(&buf, &DataType::Char), Err(DecodeError::InvalidChar(0xD800)));
    }

    #[test]
    fn integer_range_is_enforced_on_decode() {
        // Encode a u32 that does not fit u16.
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_varint(70_000);
        assert_eq!(codec().decode(&buf, &DataType::U16), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn small_integers_encode_to_single_bytes() {
        let bytes = codec().encode_to_vec(&Value::I64(-2), &DataType::I64).unwrap();
        assert_eq!(bytes.len(), 1, "zigzag keeps small magnitudes small");
        let bytes = codec().encode_to_vec(&Value::U64(9), &DataType::U64).unwrap();
        assert_eq!(bytes.len(), 1);
    }
}
