//! Encoding-layer error types.

use std::error::Error;
use std::fmt;

use marea_presentation::TypeError;

/// Error produced while encoding a value.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// The value does not conform to the schema it was encoded against.
    Type(TypeError),
    /// The value nests deeper than the configured limit.
    ///
    /// Deep nesting is rejected symmetrically on encode and decode so a
    /// container can never emit a message its peers will refuse.
    TooDeep {
        /// Configured maximum depth.
        limit: usize,
    },
    /// A vector or blob exceeds the per-message size limit.
    TooLarge {
        /// Size of the offending component in bytes.
        size: usize,
        /// Configured maximum.
        limit: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Type(e) => write!(f, "cannot encode: {e}"),
            EncodeError::TooDeep { limit } => {
                write!(f, "value nesting exceeds depth limit {limit}")
            }
            EncodeError::TooLarge { size, limit } => {
                write!(f, "component of {size} bytes exceeds size limit {limit}")
            }
        }
    }
}

impl Error for EncodeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EncodeError::Type(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TypeError> for EncodeError {
    fn from(e: TypeError) -> Self {
        EncodeError::Type(e)
    }
}

/// Error produced while decoding bytes into a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes needed beyond the end of input.
        needed: usize,
    },
    /// A varint ran longer than its maximum encoded width.
    VarintOverflow,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// A char field held an invalid Unicode scalar value.
    InvalidChar(u32),
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A type-descriptor or value tag byte was not recognized.
    InvalidTag(u8),
    /// A union discriminant referenced a non-existent alternative.
    InvalidDiscriminant(u32),
    /// A length prefix exceeded the configured limit.
    LengthOverflow {
        /// Declared length.
        declared: u64,
        /// Configured maximum.
        limit: usize,
    },
    /// The nesting depth limit was exceeded while decoding.
    TooDeep {
        /// Configured maximum depth.
        limit: usize,
    },
    /// Input remained after the value was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A name embedded in a self-describing payload was invalid.
    InvalidName,
    /// The decoded type is not compatible with the expected type.
    TypeMismatch,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed } => {
                write!(f, "unexpected end of input ({needed} more bytes needed)")
            }
            DecodeError::VarintOverflow => write!(f, "varint exceeds maximum width"),
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::InvalidChar(cp) => write!(f, "invalid unicode scalar value {cp:#x}"),
            DecodeError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#x}"),
            DecodeError::InvalidTag(t) => write!(f, "unrecognized tag byte {t:#x}"),
            DecodeError::InvalidDiscriminant(d) => {
                write!(f, "union discriminant {d} has no alternative")
            }
            DecodeError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            DecodeError::TooDeep { limit } => {
                write!(f, "encoded value nests deeper than limit {limit}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unconsumed bytes after value")
            }
            DecodeError::InvalidName => write!(f, "invalid embedded name"),
            DecodeError::TypeMismatch => {
                write!(f, "decoded type incompatible with expected type")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_concise() {
        assert_eq!(
            DecodeError::UnexpectedEof { needed: 4 }.to_string(),
            "unexpected end of input (4 more bytes needed)"
        );
        assert_eq!(
            EncodeError::TooDeep { limit: 16 }.to_string(),
            "value nesting exceeds depth limit 16"
        );
    }

    #[test]
    fn encode_error_wraps_type_error() {
        use marea_presentation::{DataType, Value};
        let te = Value::Bool(true).conforms_to(&DataType::F64).unwrap_err();
        let ee: EncodeError = te.clone().into();
        assert_eq!(ee, EncodeError::Type(te));
        assert!(Error::source(&ee).is_some());
    }
}
