//! # marea-encoding — the PEPt *Encoding* layer
//!
//! > *"Encoding describes the representation of these data on the wire."*
//! > — paper §6
//!
//! This crate turns presentation-layer [`Value`](marea_presentation::Value)s
//! into bytes and back. Two codecs are provided, both pluggable through the
//! [`Codec`] trait (the PEPt architecture demands that each subsystem
//! "accept new pluggable subsystems"):
//!
//! * [`CompactCodec`] — schema-directed positional encoding. Struct field
//!   names never travel; integers are LEB128 varints (zigzag for signed);
//!   fixed-length vectors carry no length prefix. This is the codec used for
//!   the high-rate *variable* primitive where every wire byte counts on a
//!   bandwidth-limited UAV datalink.
//! * [`SelfDescribingCodec`] — prefixes each payload with a compact **type
//!   descriptor** ([`typedesc`]) followed by the compact encoding of the
//!   value. Receivers can decode without prior schema knowledge (ground
//!   stations, log replayers) at the cost of per-message overhead; the
//!   `pept_ablation` bench quantifies that cost.
//!
//! ## Example
//!
//! ```
//! use marea_encoding::{Codec, CompactCodec};
//! use marea_presentation::{DataType, StructType, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ty = DataType::Struct(StructType::new("Fix")
//!     .with_field("lat", DataType::F64)?
//!     .with_field("lon", DataType::F64)?);
//! let v = Value::struct_of("Fix").field("lat", 41.3).field("lon", 2.1).build()?;
//!
//! let codec = CompactCodec;
//! let bytes = codec.encode_to_vec(&v, &ty)?;
//! assert_eq!(bytes.len(), 16); // two f64, nothing else
//! assert_eq!(codec.decode(&bytes, &ty)?, v);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod compact;
mod error;
mod selfdesc;
pub mod typedesc;
mod wire;

pub use codec::{Codec, CodecId, CodecRegistry};
pub use compact::CompactCodec;
pub use error::{DecodeError, EncodeError};
pub use selfdesc::SelfDescribingCodec;
pub use wire::{WireReader, WireWriter};
