//! The self-describing codec: type descriptor + compact payload.

use bytes::BytesMut;

use marea_presentation::{DataType, Value};

use crate::codec::{Codec, CodecId};
use crate::compact::CompactCodec;
use crate::error::{DecodeError, EncodeError};
use crate::typedesc;
use crate::wire::WireReader;

/// Codec that prefixes every payload with its own
/// [type descriptor](crate::typedesc), making messages decodable without
/// prior schema exchange.
///
/// The payload that follows the descriptor is the
/// [`CompactCodec`] encoding of the value against the embedded type. On
/// decode, the embedded type must be *structurally compatible* with the
/// expected type (same shape; documentation names are ignored), otherwise
/// [`DecodeError::TypeMismatch`] is returned — a subscriber never silently
/// reinterprets a publisher's data.
///
/// # Examples
///
/// ```
/// use marea_encoding::{Codec, SelfDescribingCodec};
/// use marea_presentation::{DataType, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let codec = SelfDescribingCodec;
/// let bytes = codec.encode_to_vec(&Value::U32(7), &DataType::U32)?;
/// // One descriptor byte + one varint byte.
/// assert_eq!(bytes.len(), 2);
/// assert_eq!(codec.decode(&bytes, &DataType::U32)?, Value::U32(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelfDescribingCodec;

impl SelfDescribingCodec {
    /// Decodes a payload using only the embedded descriptor (no expected
    /// type), returning both the recovered type and value. This is what log
    /// replayers and generic ground-station displays use.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed input.
    pub fn decode_any(bytes: &[u8]) -> Result<(DataType, Value), DecodeError> {
        let mut r = WireReader::new(bytes);
        let ty = typedesc::decode_type(&mut r)?;
        let value = CompactCodec::decode_from(&mut r, &ty, 0)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
        }
        Ok((ty, value))
    }
}

impl Codec for SelfDescribingCodec {
    fn id(&self) -> CodecId {
        CodecId::SELF_DESCRIBING
    }

    fn name(&self) -> &'static str {
        "self-describing"
    }

    fn encode(&self, value: &Value, ty: &DataType, buf: &mut BytesMut) -> Result<(), EncodeError> {
        typedesc::encode_type(ty, buf);
        // CompactCodec::encode re-validates conformance.
        CompactCodec.encode(value, ty, buf)
    }

    fn decode(&self, bytes: &[u8], ty: &DataType) -> Result<Value, DecodeError> {
        let (embedded, value) = Self::decode_any(bytes)?;
        if !embedded.is_compatible_with(ty) {
            return Err(DecodeError::TypeMismatch);
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_presentation::StructType;

    fn fix_ty() -> DataType {
        DataType::Struct(
            StructType::new("Fix")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap(),
        )
    }

    fn fix_val() -> Value {
        Value::struct_of("Fix").field("lat", 41.3).field("lon", 2.1).build().unwrap()
    }

    #[test]
    fn roundtrip_with_expected_type() {
        let codec = SelfDescribingCodec;
        let bytes = codec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        assert_eq!(codec.decode(&bytes, &fix_ty()).unwrap(), fix_val());
    }

    #[test]
    fn decode_any_recovers_schema() {
        let codec = SelfDescribingCodec;
        let bytes = codec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        let (ty, value) = SelfDescribingCodec::decode_any(&bytes).unwrap();
        assert_eq!(ty, fix_ty());
        assert_eq!(value, fix_val());
    }

    #[test]
    fn incompatible_expected_type_is_rejected() {
        let codec = SelfDescribingCodec;
        let bytes = codec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        assert_eq!(codec.decode(&bytes, &DataType::F64), Err(DecodeError::TypeMismatch));
    }

    #[test]
    fn renamed_but_structurally_equal_type_is_accepted() {
        let codec = SelfDescribingCodec;
        let bytes = codec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        let renamed = DataType::Struct(
            StructType::new("Other")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap(),
        );
        assert_eq!(codec.decode(&bytes, &renamed).unwrap(), fix_val());
    }

    #[test]
    fn overhead_is_exactly_the_descriptor() {
        let compact = CompactCodec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        let selfd = SelfDescribingCodec.encode_to_vec(&fix_val(), &fix_ty()).unwrap();
        let desc = typedesc::encode_type_to_vec(&fix_ty());
        assert_eq!(selfd.len(), compact.len() + desc.len());
    }
}
