//! Low-level wire primitives: little-endian scalars, LEB128 varints and
//! zigzag transforms over [`bytes`] buffers.
//!
//! Both codecs and the protocol layer build on these; keeping them in one
//! place guarantees every MAREA subsystem agrees byte-for-byte.

use bytes::{BufMut, BytesMut};

use crate::error::DecodeError;

/// Maximum bytes a LEB128-encoded `u64` may occupy.
pub(crate) const MAX_VARINT_LEN: usize = 10;

/// Append-only wire writer over a [`BytesMut`].
///
/// All multi-byte scalars are little-endian; unsigned integers use LEB128
/// varints via [`WireWriter::put_varint`].
#[derive(Debug)]
pub struct WireWriter<'a> {
    buf: &'a mut BytesMut,
}

impl<'a> WireWriter<'a> {
    /// Wraps a buffer for writing.
    pub fn new(buf: &'a mut BytesMut) -> Self {
        WireWriter { buf }
    }

    /// Bytes written so far (over the whole underlying buffer).
    pub fn written(&self) -> usize {
        self.buf.len()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16_le(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes a little-endian IEEE-754 `f32`.
    pub fn put_f32_le(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Writes a little-endian IEEE-754 `f64`.
    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a signed integer as a zigzag-transformed varint.
    pub fn put_signed_varint(&mut self, v: i64) {
        self.put_varint(zigzag_encode(v));
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Writes a varint length prefix followed by the bytes.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.put_raw(bytes);
    }

    /// Writes a varint length prefix followed by UTF-8 string bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_len_prefixed(s.as_bytes());
    }
}

/// Cursor-style wire reader over a byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(input: &'a [u8]) -> Self {
        WireReader { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// `true` when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof { needed: n - self.remaining() });
        }
        let out = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting values other than 0/1.
    ///
    /// # Errors
    ///
    /// [`DecodeError::InvalidBool`] on any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn get_u16_le(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_u32_le(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_u64_le(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("slice of 8")))
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn get_f32_le(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.get_u32_le()?))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn get_f64_le(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64_le()?))
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::VarintOverflow`] if the encoding exceeds 10 bytes or
    /// overflows 64 bits; [`DecodeError::UnexpectedEof`] on truncation.
    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        for i in 0..MAX_VARINT_LEN {
            let byte = self.get_u8()?;
            let low = u64::from(byte & 0x7f);
            if shift >= 64 || (shift == 63 && low > 1) {
                return Err(DecodeError::VarintOverflow);
            }
            result |= low << shift;
            if byte & 0x80 == 0 {
                // Reject non-canonical encodings with redundant trailing 0x80 groups
                // except the single-byte zero.
                if byte == 0 && i > 0 {
                    return Err(DecodeError::VarintOverflow);
                }
                return Ok(result);
            }
            shift += 7;
        }
        Err(DecodeError::VarintOverflow)
    }

    /// Reads a zigzag-transformed signed varint.
    ///
    /// # Errors
    ///
    /// Propagates [`WireReader::get_varint`] errors.
    pub fn get_signed_varint(&mut self) -> Result<i64, DecodeError> {
        Ok(zigzag_decode(self.get_varint()?))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Reads a varint length prefix then that many bytes, enforcing `limit`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::LengthOverflow`] when the prefix exceeds `limit`;
    /// otherwise the usual EOF/varint errors.
    pub fn get_len_prefixed(&mut self, limit: usize) -> Result<&'a [u8], DecodeError> {
        let len = self.get_varint()?;
        if len > limit as u64 {
            return Err(DecodeError::LengthOverflow { declared: len, limit });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string, enforcing `limit`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::InvalidUtf8`] on malformed UTF-8, plus the errors of
    /// [`WireReader::get_len_prefixed`].
    pub fn get_str(&mut self, limit: usize) -> Result<&'a str, DecodeError> {
        let bytes = self.get_len_prefixed(limit)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }
}

/// Zigzag-encodes a signed integer so small magnitudes stay small varints.
pub(crate) fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub(crate) fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_varint(v: u64) -> u64 {
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_varint(v);
        let mut r = WireReader::new(&buf);
        let got = r.get_varint().unwrap();
        assert!(r.is_empty());
        got
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_varint(v), v);
        }
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_varint(5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        WireWriter::new(&mut buf).put_varint(300);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        // 11 continuation bytes.
        let bytes = [0x80u8; 11];
        assert_eq!(WireReader::new(&bytes).get_varint(), Err(DecodeError::VarintOverflow));
        // Non-canonical: 0x80 0x00 encodes zero in two bytes.
        let bytes = [0x80u8, 0x00];
        assert_eq!(WireReader::new(&bytes).get_varint(), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn varint_rejects_65_bit_values() {
        // 10 bytes with the top byte > 1 overflows 64 bits.
        let mut bytes = [0xffu8; 10];
        bytes[9] = 0x02;
        assert_eq!(WireReader::new(&bytes).get_varint(), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn scalars_roundtrip() {
        let mut buf = BytesMut::new();
        {
            let mut w = WireWriter::new(&mut buf);
            w.put_bool(true);
            w.put_u16_le(0xBEEF);
            w.put_u32_le(0xDEADBEEF);
            w.put_u64_le(u64::MAX - 1);
            w.put_f32_le(1.5);
            w.put_f64_le(-2.25);
            w.put_str("hola");
            w.put_len_prefixed(&[9, 8, 7]);
        }
        let mut r = WireReader::new(&buf);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u16_le().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32_le().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64_le().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32_le().unwrap(), 1.5);
        assert_eq!(r.get_f64_le().unwrap(), -2.25);
        assert_eq!(r.get_str(64).unwrap(), "hola");
        assert_eq!(r.get_len_prefixed(64).unwrap(), &[9, 8, 7]);
        assert!(r.is_empty());
    }

    #[test]
    fn bool_rejects_junk() {
        assert_eq!(WireReader::new(&[7]).get_bool(), Err(DecodeError::InvalidBool(7)));
    }

    #[test]
    fn eof_is_detected_with_needed_count() {
        let mut r = WireReader::new(&[1, 2]);
        assert_eq!(r.get_u32_le(), Err(DecodeError::UnexpectedEof { needed: 2 }));
    }

    #[test]
    fn length_limit_is_enforced() {
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_len_prefixed(&[0u8; 100]);
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.get_len_prefixed(10), Err(DecodeError::LengthOverflow { .. })));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = BytesMut::new();
        WireWriter::new(&mut buf).put_len_prefixed(&[0xff, 0xfe]);
        assert_eq!(WireReader::new(&buf).get_str(16), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn position_tracks_consumption() {
        let mut r = WireReader::new(&[1, 2, 3, 4]);
        r.get_u8().unwrap();
        assert_eq!(r.position(), 1);
        assert_eq!(r.remaining(), 3);
    }
}
