//! The pluggable [`Codec`] abstraction and per-container registry.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use bytes::BytesMut;

use marea_presentation::{DataType, Value};

use crate::error::{DecodeError, EncodeError};

/// Wire identifier of a codec.
///
/// The protocol layer stamps each data-bearing frame with the codec id used
/// for its payload so mixed-codec fleets interoperate (a resource-starved
/// flight node can publish compact while a ground station logs
/// self-describing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodecId(pub u8);

impl CodecId {
    /// The schema-directed compact codec.
    pub const COMPACT: CodecId = CodecId(0);
    /// The self-describing codec (type descriptor + compact payload).
    pub const SELF_DESCRIBING: CodecId = CodecId(1);
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec#{}", self.0)
    }
}

/// A pluggable presentation-to-wire codec (PEPt *Encoding* subsystem).
///
/// Implementations must be stateless or internally synchronized: one codec
/// instance is shared by every service in a container.
pub trait Codec: Send + Sync + fmt::Debug {
    /// Stable wire identifier.
    fn id(&self) -> CodecId;

    /// Short human-readable name (`"compact"`, `"self-describing"`, …).
    fn name(&self) -> &'static str;

    /// Encodes `value` (which must conform to `ty`) into `buf`.
    ///
    /// # Errors
    ///
    /// [`EncodeError::Type`] when the value does not conform to `ty`;
    /// implementation-specific size/depth errors otherwise.
    fn encode(&self, value: &Value, ty: &DataType, buf: &mut BytesMut) -> Result<(), EncodeError>;

    /// Decodes a value of declared type `ty` from `bytes`, consuming all of
    /// them.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on malformed, truncated or trailing input.
    fn decode(&self, bytes: &[u8], ty: &DataType) -> Result<Value, DecodeError>;

    /// Convenience wrapper over [`Codec::encode`] returning a fresh vector.
    ///
    /// # Errors
    ///
    /// Same as [`Codec::encode`].
    fn encode_to_vec(&self, value: &Value, ty: &DataType) -> Result<Vec<u8>, EncodeError> {
        let mut buf = BytesMut::new();
        self.encode(value, ty, &mut buf)?;
        Ok(buf.to_vec())
    }
}

/// Registry mapping [`CodecId`]s to codec implementations.
///
/// Each service container owns one registry; frames arriving with an
/// unregistered codec id are rejected at the protocol layer.
#[derive(Debug, Clone)]
pub struct CodecRegistry {
    codecs: BTreeMap<CodecId, Arc<dyn Codec>>,
    default_id: CodecId,
}

impl CodecRegistry {
    /// Creates a registry pre-loaded with the two built-in codecs, with the
    /// compact codec as default.
    pub fn new() -> Self {
        let mut codecs: BTreeMap<CodecId, Arc<dyn Codec>> = BTreeMap::new();
        codecs.insert(CodecId::COMPACT, Arc::new(crate::CompactCodec));
        codecs.insert(CodecId::SELF_DESCRIBING, Arc::new(crate::SelfDescribingCodec));
        CodecRegistry { codecs, default_id: CodecId::COMPACT }
    }

    /// Creates an empty registry (no codecs, `default` lookups fail until
    /// one is registered under the requested default id).
    pub fn empty(default_id: CodecId) -> Self {
        CodecRegistry { codecs: BTreeMap::new(), default_id }
    }

    /// Registers (or replaces) a codec, returning the previous one with the
    /// same id.
    pub fn register(&mut self, codec: Arc<dyn Codec>) -> Option<Arc<dyn Codec>> {
        self.codecs.insert(codec.id(), codec)
    }

    /// Selects which codec [`CodecRegistry::default_codec`] returns.
    pub fn set_default(&mut self, id: CodecId) {
        self.default_id = id;
    }

    /// Looks up a codec by wire id.
    pub fn get(&self, id: CodecId) -> Option<&Arc<dyn Codec>> {
        self.codecs.get(&id)
    }

    /// The container's default codec.
    ///
    /// # Panics
    ///
    /// Panics if the configured default id has no registered codec; this is
    /// a configuration error caught at container start-up.
    pub fn default_codec(&self) -> &Arc<dyn Codec> {
        self.codecs.get(&self.default_id).expect("default codec must be registered")
    }

    /// Id of the default codec.
    pub fn default_id(&self) -> CodecId {
        self.default_id
    }

    /// Registered codec ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = CodecId> + '_ {
        self.codecs.keys().copied()
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        CodecRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompactCodec, SelfDescribingCodec};

    #[test]
    fn registry_has_builtins() {
        let reg = CodecRegistry::new();
        assert!(reg.get(CodecId::COMPACT).is_some());
        assert!(reg.get(CodecId::SELF_DESCRIBING).is_some());
        assert_eq!(reg.default_codec().id(), CodecId::COMPACT);
        assert_eq!(reg.ids().collect::<Vec<_>>(), vec![CodecId::COMPACT, CodecId::SELF_DESCRIBING]);
    }

    #[test]
    fn default_is_switchable() {
        let mut reg = CodecRegistry::new();
        reg.set_default(CodecId::SELF_DESCRIBING);
        assert_eq!(reg.default_codec().name(), "self-describing");
    }

    #[test]
    fn custom_codec_replaces_builtin() {
        // A codec that reuses the compact wire format under a fresh id.
        #[derive(Debug)]
        struct Custom;
        impl Codec for Custom {
            fn id(&self) -> CodecId {
                CodecId(77)
            }
            fn name(&self) -> &'static str {
                "custom"
            }
            fn encode(
                &self,
                value: &Value,
                ty: &DataType,
                buf: &mut BytesMut,
            ) -> Result<(), EncodeError> {
                CompactCodec.encode(value, ty, buf)
            }
            fn decode(&self, bytes: &[u8], ty: &DataType) -> Result<Value, DecodeError> {
                CompactCodec.decode(bytes, ty)
            }
        }
        let mut reg = CodecRegistry::new();
        assert!(reg.register(Arc::new(Custom)).is_none());
        assert_eq!(reg.get(CodecId(77)).unwrap().name(), "custom");
        let again = reg.register(Arc::new(Custom));
        assert!(again.is_some(), "re-registration returns the old codec");
    }

    #[test]
    fn both_builtin_codecs_roundtrip_same_value() {
        let ty = DataType::Str;
        let v = Value::Str("telemetry".into());
        for codec in [&CompactCodec as &dyn Codec, &SelfDescribingCodec as &dyn Codec] {
            let bytes = codec.encode_to_vec(&v, &ty).unwrap();
            assert_eq!(codec.decode(&bytes, &ty).unwrap(), v, "{}", codec.name());
        }
    }
}
