//! Chaos-scenario corpus tests: every named scenario must hold its
//! invariants in quick mode, runs must be seed-reproducible, and the
//! failover scenario must meet its recovery-time objective.

use std::sync::atomic::Ordering;

use marea_core::scenario::{corpus, ScenarioReport};
use marea_core::{ContainerStats, NodeId};

fn quick(seed: u64) -> corpus::ScenarioConfig {
    corpus::ScenarioConfig::quick(seed)
}

fn run(name: &str, seed: u64) -> ScenarioReport {
    corpus::run_named(name, &quick(seed)).expect("known corpus scenario")
}

#[test]
fn corpus_quick_mode_holds_every_invariant() {
    for (i, name) in corpus::NAMES.iter().enumerate() {
        let report = run(name, 0xC0DE + i as u64);
        assert!(report.passed(), "scenario `{name}` violated invariants: {:#?}", report.violations);
        assert!(report.events_applied > 0, "`{name}` injected no faults");
        assert!(report.checks_run > 0, "`{name}` never checked its invariants");
    }
}

#[test]
fn corpus_covers_the_advertised_scenarios() {
    for name in [
        "ground_link_flap",
        "split_brain_heal",
        "rolling_restart_swarm16",
        "radio_degradation_ramp",
        "publisher_failover",
        "bulk_flood_under_partition",
    ] {
        assert!(corpus::NAMES.contains(&name), "missing corpus entry `{name}`");
        assert!(corpus::build(name, &quick(1)).is_some());
    }
    assert!(corpus::build("no_such_scenario", &quick(1)).is_none());
}

/// The acceptance bar for the whole engine: a chaos run is a pure function
/// of its seed. Two runs with the same seed must produce bit-identical
/// network traces *and* container counters; the lossy ramp scenario makes
/// this sensitive to any hidden iteration-order nondeterminism.
#[test]
fn same_seed_reproduces_identical_stats() {
    for name in ["radio_degradation_ramp", "publisher_failover", "rolling_restart_swarm16"] {
        let run_once = |seed: u64| -> (ScenarioReport, Vec<(NodeId, ContainerStats)>) {
            let mut chaos = corpus::build(name, &quick(seed)).expect("known");
            let report = chaos.run();
            let h = chaos.runner.into_harness();
            let stats = h
                .nodes()
                .into_iter()
                .map(|n| (n, h.container(n).expect("listed").stats()))
                .collect();
            (report, stats)
        };
        let (r1, s1) = run_once(42);
        let (r2, s2) = run_once(42);
        assert_eq!(r1.net_stats, r2.net_stats, "`{name}`: same seed, same packet trace");
        assert_eq!(s1, s2, "`{name}`: same seed, same container counters (incl. QosStats)");
        assert_eq!(r1.events_applied, r2.events_applied);
    }
}

#[test]
fn publisher_failover_measures_and_meets_its_rto() {
    let cfg = quick(7);
    let mut chaos = corpus::build("publisher_failover", &cfg).expect("known");
    let report = chaos.run();
    assert!(report.passed(), "{:#?}", report.violations);

    // The RTO invariant armed on the crash and measured the recovery.
    let recoveries = chaos.probes.recoveries_us.lock().unwrap().clone();
    assert_eq!(recoveries.len(), 1, "exactly one crash was scripted");
    assert!(
        recoveries[0] <= cfg.rto.as_micros(),
        "recovery took {}µs, objective {}µs",
        recoveries[0],
        cfg.rto.as_micros()
    );

    // The client kept getting answers (failover to the backup) and the
    // telemetry subscription kept delivering samples.
    assert!(chaos.probes.calls_ok.load(Ordering::Relaxed) > 10);
    assert!(chaos.probes.var_samples.load(Ordering::Relaxed) > 50);

    // The restarted primary rejoined: everyone sees all three nodes.
    let h = chaos.runner.into_harness();
    assert_eq!(h.nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
    for n in h.nodes() {
        let c = h.container(n).unwrap();
        assert!(c.directory().node_alive(NodeId(2)), "restarted primary visible from {n}");
    }
    // The primary's second life announces a higher incarnation.
    assert!(h.container(NodeId(2)).unwrap().incarnation() >= 2);
}

#[test]
fn bulk_flood_applies_bounded_inbox_drops() {
    let mut chaos = corpus::build("bulk_flood_under_partition", &quick(3)).expect("known");
    let report = chaos.run();
    assert!(report.passed(), "{:#?}", report.violations);
    assert!(chaos.probes.events_seen.load(Ordering::Relaxed) > 100, "bulk stream was delivered");
    // The flood outpaces the sink's bounded bulk inbox at some point, so
    // the declared drop policy must have acted (and the scheduler stayed
    // within the QueueBound invariant for the whole run).
    let h = chaos.runner.into_harness();
    let sink = h.container(NodeId(1)).unwrap();
    let bulk = sink.event_qos_stats("chaos/bulk").expect("subscribed channel");
    assert!(bulk.inbox_peak <= 32, "bound respected: peak {}", bulk.inbox_peak);
}

#[test]
fn clock_skew_event_drifts_the_local_clock() {
    use marea_core::scenario::{FaultSchedule, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default());
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));
    h.start_all();
    let schedule = FaultSchedule::new().clock_skew(
        ProtoDuration::from_millis(100),
        NodeId(2),
        200_000, // +20% fast clock
    );
    let mut runner = ScenarioRunner::new(h);
    let report = runner.run(&Scenario::new("skew", schedule, ProtoDuration::from_millis(1_100)));
    assert_eq!(report.events_applied, 1);
    let h = runner.into_harness();
    // 1.1s elapsed; the skewed node ran 1s of drifted time on top of the
    // first 100ms: local ≈ 100ms + 1000ms * 1.2 = 1300ms.
    let local = h.local_time(NodeId(2));
    assert!((1_290_000..=1_310_000).contains(&local), "drifted clock: {local}");
    assert_eq!(h.local_time(NodeId(1)), 1_100_000, "unskewed node follows virtual time");
    // Despite the skew, the fleet stays mutually alive (timestamps are
    // node-local; liveness rides message arrival).
    for n in [NodeId(1), NodeId(2)] {
        for m in [NodeId(1), NodeId(2)] {
            assert!(h.container(n).unwrap().directory().node_alive(m));
        }
    }
}

/// Regression guard: the staleness invariant must measure sample age in
/// the *subscribing node's* clock domain. A slow local clock makes
/// `last_rx` fall ever further behind global virtual time; comparing
/// across domains would report silent staleness on a perfectly healthy
/// 20 ms sample stream.
#[test]
fn staleness_invariant_is_clock_domain_correct_under_skew() {
    use marea_core::scenario::corpus::{self, ScenarioConfig};
    use marea_core::ProtoDuration;

    let cfg = ScenarioConfig::quick(5);
    let mut chaos = corpus::build("ground_link_flap", &cfg).expect("known");
    // Slow the subscriber's clock by 10% from the start; the flap script
    // then runs as usual. ~6 virtual seconds ⇒ ~600 ms of divergence,
    // comfortably past the declared deadline + slack if the invariant
    // compared clock domains incorrectly.
    let mut scenario = chaos.scenario.clone();
    scenario.schedule =
        scenario.schedule.clock_skew(ProtoDuration::from_millis(10), NodeId(1), -100_000);
    chaos.scenario = scenario;
    let report = chaos.run();
    assert!(report.passed(), "healthy skewed stream flagged: {:#?}", report.violations);
    assert!(chaos.probes.var_samples.load(Ordering::Relaxed) > 50, "stream actually flowed");
}

/// A scripted restart of a node that was never added is a script error:
/// it must surface as a `schedule` violation, not arm RTO invariants or
/// count as an applied fault.
#[test]
fn restart_of_unknown_node_is_reported_as_schedule_violation() {
    use marea_core::scenario::{FaultSchedule, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default());
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.start_all();
    let schedule = FaultSchedule::new().restart(ProtoDuration::from_millis(50), NodeId(99));
    let mut runner = ScenarioRunner::new(h);
    let report = runner.run(&Scenario::new("typo", schedule, ProtoDuration::from_millis(200)));
    assert_eq!(report.events_applied, 0, "a failed restart is not an applied fault");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].invariant, "schedule");
    assert!(report.violations[0].detail.contains("node99"), "{}", report.violations[0].detail);
}
