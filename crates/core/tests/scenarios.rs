//! Chaos-scenario corpus tests: every named scenario must hold its
//! invariants in quick mode, runs must be seed-reproducible, and the
//! failover scenario must meet its recovery-time objective.

use std::sync::atomic::Ordering;

use marea_core::scenario::{corpus, ScenarioReport};
use marea_core::{ContainerStats, NodeId};

fn quick(seed: u64) -> corpus::ScenarioConfig {
    corpus::ScenarioConfig::quick(seed)
}

fn run(name: &str, seed: u64) -> ScenarioReport {
    corpus::run_named(name, &quick(seed)).expect("known corpus scenario")
}

#[test]
fn corpus_quick_mode_holds_every_invariant() {
    for (i, name) in corpus::NAMES.iter().enumerate() {
        // The 1024-node swarm dominates corpus runtime; it has its own
        // dedicated test below that also pins seed-reproducibility.
        if *name == "swarm_1024" {
            continue;
        }
        let report = run(name, 0xC0DE + i as u64);
        assert!(report.passed(), "scenario `{name}` violated invariants: {:#?}", report.violations);
        assert!(report.events_applied > 0, "`{name}` injected no faults");
        assert!(report.checks_run > 0, "`{name}` never checked its invariants");
    }
}

#[test]
fn corpus_covers_the_advertised_scenarios() {
    for name in [
        "ground_link_flap",
        "split_brain_heal",
        "rolling_restart_swarm16",
        "radio_degradation_ramp",
        "publisher_failover",
        "bulk_flood_under_partition",
        "swarm_1024",
    ] {
        assert!(corpus::NAMES.contains(&name), "missing corpus entry `{name}`");
        assert!(corpus::build(name, &quick(1)).is_some());
    }
    assert!(corpus::build("no_such_scenario", &quick(1)).is_none());
}

/// The acceptance bar for the whole engine: a chaos run is a pure function
/// of its seed. Two runs with the same seed must produce bit-identical
/// network traces *and* container counters; the lossy ramp scenario makes
/// this sensitive to any hidden iteration-order nondeterminism.
#[test]
fn same_seed_reproduces_identical_stats() {
    for name in ["radio_degradation_ramp", "publisher_failover", "rolling_restart_swarm16"] {
        let run_once = |seed: u64| -> (ScenarioReport, Vec<(NodeId, ContainerStats)>) {
            let mut chaos = corpus::build(name, &quick(seed)).expect("known");
            let report = chaos.run();
            let h = chaos.runner.into_harness();
            let stats = h
                .nodes()
                .into_iter()
                .map(|n| (n, h.container(n).expect("listed").stats()))
                .collect();
            (report, stats)
        };
        let (r1, s1) = run_once(42);
        let (r2, s2) = run_once(42);
        assert_eq!(r1.net_stats, r2.net_stats, "`{name}`: same seed, same packet trace");
        assert_eq!(s1, s2, "`{name}`: same seed, same container counters (incl. QosStats)");
        assert_eq!(r1.events_applied, r2.events_applied);
    }
}

/// The swarm-scale acceptance bar: a 1024-node fleet survives a crash +
/// rejoin with every directory re-converging on the full fleet, queues
/// bounded throughout — and the whole run stays a pure function of the
/// seed (byte-identical network trace and container counters across two
/// runs). One test does both so the corpus pays for the big fleet twice,
/// not three times.
///
/// Ignored by default: the O(n²) control traffic takes minutes in debug
/// builds. CI runs it in release (`--release -- --ignored`), where the
/// two runs finish in well under a minute.
#[test]
#[ignore = "swarm-scale run: minutes in debug; CI exercises it in release"]
fn swarm_1024_converges_and_is_seed_reproducible() {
    let run_once = |seed: u64| -> (ScenarioReport, Vec<(NodeId, ContainerStats)>) {
        let mut chaos = corpus::build("swarm_1024", &quick(seed)).expect("known");
        let report = chaos.run();
        let h = chaos.runner.into_harness();

        // Zero invariant violations at swarm scale.
        assert!(report.passed(), "swarm_1024 violated invariants: {:#?}", report.violations);
        assert_eq!(report.events_applied, 2, "crash + restart both applied");
        assert!(report.checks_run > 0, "invariants never ran");

        // The rejoined node is visible fleet-wide and itself sees the
        // whole fleet — the digest gossip recovered its catalogue view.
        assert_eq!(h.nodes().len(), 1024);
        for n in [NodeId(1), NodeId(9), NodeId(1024)] {
            let c = h.container(n).expect("listed");
            assert!(c.directory().node_alive(NodeId(512)), "restarted node visible from {n}");
        }
        let rejoined = h.container(NodeId(512)).expect("listed");
        for n in [NodeId(1), NodeId(511), NodeId(1024)] {
            assert!(rejoined.directory().node_alive(n), "rejoined node sees {n}");
        }
        assert!(rejoined.incarnation() >= 2, "second life, higher incarnation");

        let stats =
            h.nodes().into_iter().map(|n| (n, h.container(n).expect("listed").stats())).collect();
        (report, stats)
    };
    let (r1, s1) = run_once(42);
    let (r2, s2) = run_once(42);
    assert_eq!(r1.net_stats, r2.net_stats, "same seed, same packet trace");
    assert_eq!(s1, s2, "same seed, same container counters");
}

#[test]
fn publisher_failover_measures_and_meets_its_rto() {
    let cfg = quick(7);
    let mut chaos = corpus::build("publisher_failover", &cfg).expect("known");
    let report = chaos.run();
    assert!(report.passed(), "{:#?}", report.violations);

    // The RTO invariant armed on the crash and measured the recovery.
    let recoveries = chaos.probes.recoveries_us.lock().unwrap().clone();
    assert_eq!(recoveries.len(), 1, "exactly one crash was scripted");
    assert!(
        recoveries[0] <= cfg.rto.as_micros(),
        "recovery took {}µs, objective {}µs",
        recoveries[0],
        cfg.rto.as_micros()
    );

    // The client kept getting answers (failover to the backup) and the
    // telemetry subscription kept delivering samples.
    assert!(chaos.probes.calls_ok.load(Ordering::Relaxed) > 10);
    assert!(chaos.probes.var_samples.load(Ordering::Relaxed) > 50);

    // The restarted primary rejoined: everyone sees all three nodes.
    let h = chaos.runner.into_harness();
    assert_eq!(h.nodes(), vec![NodeId(1), NodeId(2), NodeId(3)]);
    for n in h.nodes() {
        let c = h.container(n).unwrap();
        assert!(c.directory().node_alive(NodeId(2)), "restarted primary visible from {n}");
    }
    // The primary's second life announces a higher incarnation.
    assert!(h.container(NodeId(2)).unwrap().incarnation() >= 2);
}

#[test]
fn bulk_flood_applies_bounded_inbox_drops() {
    let mut chaos = corpus::build("bulk_flood_under_partition", &quick(3)).expect("known");
    let report = chaos.run();
    assert!(report.passed(), "{:#?}", report.violations);
    assert!(chaos.probes.events_seen.load(Ordering::Relaxed) > 100, "bulk stream was delivered");
    // The flood outpaces the sink's bounded bulk inbox at some point, so
    // the declared drop policy must have acted (and the scheduler stayed
    // within the QueueBound invariant for the whole run).
    let h = chaos.runner.into_harness();
    let sink = h.container(NodeId(1)).unwrap();
    let bulk = sink.event_qos_stats("chaos/bulk").expect("subscribed channel");
    assert!(bulk.inbox_peak <= 32, "bound respected: peak {}", bulk.inbox_peak);
}

#[test]
fn clock_skew_event_drifts_the_local_clock() {
    use marea_core::scenario::{FaultSchedule, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default());
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));
    h.start_all();
    let schedule = FaultSchedule::new().clock_skew(
        ProtoDuration::from_millis(100),
        NodeId(2),
        200_000, // +20% fast clock
    );
    let mut runner = ScenarioRunner::new(h);
    let report = runner.run(&Scenario::new("skew", schedule, ProtoDuration::from_millis(1_100)));
    assert_eq!(report.events_applied, 1);
    let h = runner.into_harness();
    // 1.1s elapsed; the skewed node ran 1s of drifted time on top of the
    // first 100ms: local ≈ 100ms + 1000ms * 1.2 = 1300ms.
    let local = h.local_time(NodeId(2));
    assert!((1_290_000..=1_310_000).contains(&local), "drifted clock: {local}");
    assert_eq!(h.local_time(NodeId(1)), 1_100_000, "unskewed node follows virtual time");
    // Despite the skew, the fleet stays mutually alive (timestamps are
    // node-local; liveness rides message arrival).
    for n in [NodeId(1), NodeId(2)] {
        for m in [NodeId(1), NodeId(2)] {
            assert!(h.container(n).unwrap().directory().node_alive(m));
        }
    }
}

/// Regression guard: the staleness invariant must measure sample age in
/// the *subscribing node's* clock domain. A slow local clock makes
/// `last_rx` fall ever further behind global virtual time; comparing
/// across domains would report silent staleness on a perfectly healthy
/// 20 ms sample stream.
#[test]
fn staleness_invariant_is_clock_domain_correct_under_skew() {
    use marea_core::scenario::corpus::{self, ScenarioConfig};
    use marea_core::ProtoDuration;

    let cfg = ScenarioConfig::quick(5);
    let mut chaos = corpus::build("ground_link_flap", &cfg).expect("known");
    // Slow the subscriber's clock by 10% from the start; the flap script
    // then runs as usual. ~6 virtual seconds ⇒ ~600 ms of divergence,
    // comfortably past the declared deadline + slack if the invariant
    // compared clock domains incorrectly.
    let mut scenario = chaos.scenario.clone();
    scenario.schedule =
        scenario.schedule.clock_skew(ProtoDuration::from_millis(10), NodeId(1), -100_000);
    chaos.scenario = scenario;
    let report = chaos.run();
    assert!(report.passed(), "healthy skewed stream flagged: {:#?}", report.violations);
    assert!(chaos.probes.var_samples.load(Ordering::Relaxed) > 50, "stream actually flowed");
}

/// The flight recorder is part of the determinism fingerprint: two runs
/// with the same seed must produce byte-identical trace rings (rendered
/// line by line) and identical latency-histogram snapshots. The restart
/// scenario exercises the crash/stash/adopt path of the recorder too.
#[test]
fn same_seed_reproduces_identical_trace_rings_and_histograms() {
    use marea_core::trace::render_event;

    for name in ["radio_degradation_ramp", "publisher_failover", "rolling_restart_swarm16"] {
        let run_once = |seed: u64| {
            let mut chaos = corpus::build(name, &quick(seed)).expect("known");
            chaos.run();
            let h = chaos.runner.into_harness();
            let rings: Vec<(NodeId, Vec<String>)> = h
                .trace_rings()
                .into_iter()
                .map(|(n, ring)| (n, ring.events().map(|e| render_event(n, e)).collect()))
                .collect();
            let hists: Vec<_> = h
                .nodes()
                .into_iter()
                .filter_map(|n| h.container(n).map(|c| (n, c.stats())))
                .map(|(n, s)| (n, s.publish_to_deliver, s.call_rtt, s.rto_recovery))
                .collect();
            (rings, hists)
        };
        let (r1, h1) = run_once(42);
        let (r2, h2) = run_once(42);
        assert!(
            r1.iter().any(|(_, lines)| !lines.is_empty()),
            "`{name}`: the recorder captured nothing"
        );
        assert_eq!(r1, r2, "`{name}`: same seed, same trace rings");
        assert_eq!(h1, h2, "`{name}`: same seed, same histogram snapshots");
        assert!(
            h1.iter().any(|(_, p2d, _, _)| p2d.count() > 0),
            "`{name}`: publish→deliver histogram never recorded"
        );
    }
}

/// Flood helper for the evidence test: a publisher hammering one variable
/// channel at a subscriber whose per-tick budget cannot keep up.
struct FloodPublisher {
    samples: marea_core::VarPort<u32>,
}

impl marea_core::Service for FloodPublisher {
    fn descriptor(&self) -> marea_core::ServiceDescriptor {
        marea_core::ServiceDescriptor::builder("flood")
            .provides_var(
                &self.samples,
                marea_core::VarQos::aperiodic(marea_core::ProtoDuration::from_secs(1)),
            )
            .build()
    }
    fn on_start(&mut self, ctx: &mut marea_core::ServiceContext<'_>) {
        ctx.set_timer(
            marea_core::ProtoDuration::from_millis(2),
            Some(marea_core::ProtoDuration::from_millis(2)),
        );
    }
    fn on_timer(&mut self, ctx: &mut marea_core::ServiceContext<'_>, _id: marea_core::TimerId) {
        for i in 0..8u32 {
            ctx.publish_to(&self.samples, i);
        }
    }
}

struct FloodSink;

impl marea_core::Service for FloodSink {
    fn descriptor(&self) -> marea_core::ServiceDescriptor {
        marea_core::ServiceDescriptor::builder("floodsink")
            .subscribe_variable("chaos/flood", marea_core::VarQos::default())
            .build()
    }
}

/// The acceptance bar for the flight recorder: when an invariant breaks,
/// the violation carries the breaching node's recorder tail *and* the
/// assembled cross-node causal chain of the offending sample — the
/// journey from `var_publish` on the publisher to the subscriber.
#[test]
fn queue_bound_violation_carries_trace_evidence_and_causal_chain() {
    use marea_core::scenario::{FaultSchedule, QueueBound, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness, VarPort};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default().with_seed(9));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    let mut sub = ContainerConfig::new("sub", NodeId(2));
    sub.tick_budget = 1; // guarantee a persistent backlog
    h.add_container(sub);
    h.add_service(NodeId(1), Box::new(FloodPublisher { samples: VarPort::new("chaos/flood") }));
    h.add_service(NodeId(2), Box::new(FloodSink));
    h.start_all();

    let mut runner = ScenarioRunner::new(h);
    runner.add_invariant(Box::new(QueueBound::new(0)));
    let report =
        runner.run(&Scenario::new("flood", FaultSchedule::new(), ProtoDuration::from_millis(100)));

    let v = report
        .violations
        .iter()
        .find(|v| v.invariant == "event-queue-bound" && !v.chain.is_empty())
        .expect("the flooded subscriber breached the queue bound with a traced sample in flight");
    assert_eq!(v.node, Some(NodeId(2)), "breach pinned to the backlogged node");
    assert!(!v.trace.is_empty(), "flight-recorder tail attached");
    assert!(v.trace.len() <= 12, "tail is bounded");
    // The chain reconstructs the offending sample's cross-node journey.
    assert!(
        v.chain.iter().any(|l| l.contains(" n1 ") && l.contains("var_publish")),
        "chain shows the publish on node 1: {:#?}",
        v.chain
    );
    assert!(
        v.chain.iter().any(|l| l.contains(" n2 ")),
        "chain shows the sample reaching node 2: {:#?}",
        v.chain
    );
    // Every chain line names the same trace id.
    let id = v.chain[0].split("trace=").nth(1).map(|s| s.split_whitespace().next().unwrap());
    assert!(id.is_some_and(|id| id != "-"), "chain lines carry a real trace id");
    assert!(
        v.chain.iter().all(|l| l.contains(&format!("trace={}", id.unwrap()))),
        "chain is a single causal thread: {:#?}",
        v.chain
    );
}

/// Synthetic invariant that breaches every check at fixed coordinates —
/// used to pin the report's deterministic violation order.
struct AlwaysBreach {
    label: &'static str,
    node: u32,
}

impl marea_core::scenario::Invariant for AlwaysBreach {
    fn name(&self) -> &str {
        self.label
    }
    fn check(
        &mut self,
        _ctx: &marea_core::scenario::InvariantCtx<'_>,
    ) -> Result<(), marea_core::scenario::Breach> {
        Err(marea_core::scenario::Breach::new("synthetic").at_node(NodeId(self.node)))
    }
}

/// Violation reports are ordered by (event-time, node, channel,
/// invariant) regardless of invariant registration order — pinned here so
/// downstream tooling (marea-trace, CI diffing) can rely on it.
#[test]
fn violations_are_ordered_by_time_node_channel_invariant() {
    use marea_core::scenario::{FaultSchedule, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default());
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));
    h.start_all();

    let mut runner = ScenarioRunner::new(h);
    // Registered deliberately out of sorted order.
    runner.add_invariant(Box::new(AlwaysBreach { label: "z-check", node: 2 }));
    runner.add_invariant(Box::new(AlwaysBreach { label: "a-check", node: 1 }));
    let report = runner.run(&Scenario::new(
        "ordering",
        FaultSchedule::new(),
        ProtoDuration::from_millis(25),
    ));

    assert!(report.violations.len() >= 4, "two invariants over several checks");
    let keys: Vec<_> = report
        .violations
        .iter()
        .map(|v| (v.at, v.node, v.channel.clone(), v.invariant.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "report is sorted by (at, node, channel, invariant)");
    // Within one check instant the node-1 breach precedes node-2's.
    assert_eq!(keys[0].1, Some(NodeId(1)));
    assert_eq!(keys[0].3, "a-check");
    assert_eq!(keys[1].1, Some(NodeId(2)));
    assert_eq!(keys[1].3, "z-check");
}

/// A scripted restart of a node that was never added is a script error:
/// it must surface as a `schedule` violation, not arm RTO invariants or
/// count as an applied fault.
#[test]
fn restart_of_unknown_node_is_reported_as_schedule_violation() {
    use marea_core::scenario::{FaultSchedule, Scenario, ScenarioRunner};
    use marea_core::{ContainerConfig, ProtoDuration, SimHarness};
    use marea_netsim::NetConfig;

    let mut h = SimHarness::new(NetConfig::default());
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.start_all();
    let schedule = FaultSchedule::new().restart(ProtoDuration::from_millis(50), NodeId(99));
    let mut runner = ScenarioRunner::new(h);
    let report = runner.run(&Scenario::new("typo", schedule, ProtoDuration::from_millis(200)));
    assert_eq!(report.events_applied, 0, "a failed restart is not an applied fault");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].invariant, "schedule");
    assert!(report.violations[0].detail.contains("node99"), "{}", report.violations[0].detail);
}
