//! QoS-contract enforcement tests: history rings, bounded event inboxes
//! with drop policies, per-subscription scheduler priority, caller-visible
//! call deadlines/retry budgets, and property tests over profile
//! validation.

mod common;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use common::{obs_log, observations, Obs, Recorder, Scripted};
use marea_core::{
    CallError, CallOptions, ContainerConfig, DropPolicy, EventPort, EventQos, FnPort, NodeId,
    Priority, ProtoDuration, ServiceDescriptor, SimHarness, VarPort, VarQos,
};
use marea_netsim::NetConfig;
use marea_presentation::Value;
use proptest::prelude::*;

fn lan(seed: u64) -> NetConfig {
    NetConfig::default().with_seed(seed)
}

/// Timestamped call outcomes captured by a test client.
type OutcomeLog<T> = Arc<Mutex<Vec<(u64, Result<T, String>)>>>;

// ---------------------------------------------------------------------------
// Variables: history contract
// ---------------------------------------------------------------------------

#[test]
fn history_contract_retains_last_samples_for_handlers() {
    let mut h = SimHarness::new(lan(61));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let counter = VarPort::<u64>::new("hist/v");
    let mut b = ServiceDescriptor::builder("pub");
    b.provides_var(
        &counter,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(200)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let mut n = 0u64;
    let port = counter.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        n += 1;
        ctx.publish_to(&port, n);
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    // The consumer reads ctx.history() from inside its handler — the ring
    // the container retains under the declared depth of 5.
    let snapshots: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut sb = ServiceDescriptor::builder("sub");
    sb.subscribe_to_var(&counter, VarQos::default().with_history(5));
    let mut consumer = Scripted::new(sb.build());
    let port = counter.clone();
    let sink = snapshots.clone();
    consumer.on_variable = Some(Box::new(move |ctx, name, _value| {
        if port.matches(name) {
            let ring: Vec<u64> = ctx.history(&port).into_iter().map(|(_, v)| v).collect();
            sink.lock().unwrap().push(ring);
        }
    }));
    h.add_service(NodeId(2), Box::new(consumer));
    h.start_all();
    h.run_for_millis(500);

    let snaps = snapshots.lock().unwrap();
    assert!(snaps.len() >= 20, "samples flowed: {}", snaps.len());
    let last = snaps.last().unwrap();
    assert_eq!(last.len(), 5, "ring filled to the declared depth");
    assert!(last.windows(2).all(|w| w[1] == w[0] + 1), "oldest-first, contiguous: {last:?}");
    // Every snapshot ends with the sample that triggered the handler.
    for (i, snap) in snaps.iter().enumerate() {
        assert!(snap.len() <= 5, "never deeper than declared");
        assert!(!snap.is_empty(), "at least the triggering sample (snapshot {i})");
    }
    let qos = h.container(NodeId(2)).unwrap().var_qos_stats("hist/v").unwrap();
    assert_eq!(qos.history_len, 5);
}

// ---------------------------------------------------------------------------
// Events: bounded inboxes, drop policies, per-subscription priority
// ---------------------------------------------------------------------------

/// One container, one burst of `total` events into a subscription bounded
/// at `bound`; returns the payloads delivered.
fn run_bounded_burst(policy: DropPolicy, bound: usize, total: u32, seed: u64) -> (Vec<u64>, u64) {
    let mut h = SimHarness::new(lan(seed));
    let mut cfg = ContainerConfig::new("solo", NodeId(1));
    cfg.tick_budget = 512;
    h.add_container(cfg);

    let burst = EventPort::<u64>::new("burst/e");
    let mut b = ServiceDescriptor::builder("burster");
    b.provides_event(&burst);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), None);
    }));
    let port = burst.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        for i in 0..u64::from(total) {
            ctx.emit_to(&port, i);
        }
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    let mut sb = ServiceDescriptor::builder("sink");
    sb.subscribe_to_event(
        &burst,
        EventQos::default().with_queue_bound(bound).with_drop_policy(policy),
    );
    h.add_service(NodeId(1), Box::new(Recorder::new(sb.build(), log.clone())));
    h.start_all();
    h.run_for_millis(200);

    let delivered: Vec<u64> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(_, Some(v)) => v.as_u64(),
            _ => None,
        })
        .collect();
    let container = h.container(NodeId(1)).unwrap();
    let drops = container.event_qos_stats("burst/e").unwrap().queue_drops;
    assert_eq!(container.stats().qos.queue_drops, drops, "aggregate ledger matches per-channel");
    (delivered, drops)
}

#[test]
fn bounded_inbox_drop_oldest_keeps_the_freshest_events() {
    let (delivered, drops) = run_bounded_burst(DropPolicy::DropOldest, 10, 100, 62);
    assert_eq!(delivered, (90..100).collect::<Vec<u64>>(), "newest 10 survive");
    assert_eq!(drops, 90, "every displaced delivery is counted");
}

#[test]
fn bounded_inbox_drop_newest_keeps_the_backlog() {
    let (delivered, drops) = run_bounded_burst(DropPolicy::DropNewest, 10, 100, 63);
    assert_eq!(delivered, (0..10).collect::<Vec<u64>>(), "oldest 10 survive");
    assert_eq!(drops, 90);
}

#[test]
fn unbounded_default_drops_nothing() {
    let (delivered, drops) = run_bounded_burst(DropPolicy::DropOldest, usize::MAX, 100, 64);
    assert_eq!(delivered.len(), 100);
    assert_eq!(drops, 0);
    // And the aggregate QoS ledger stays clean.
}

#[test]
fn bulk_priority_flood_cannot_starve_a_critical_subscription() {
    // A low-priority flood (EventQos::bulk) and a critical subscription
    // share one consumer with a tiny tick budget. The critical event is
    // emitted *after* the flood, yet must be delivered first.
    let mut h = SimHarness::new(lan(65));
    let mut cfg = ContainerConfig::new("solo", NodeId(1));
    cfg.tick_budget = 64;
    h.add_container(cfg);

    let flood = EventPort::<u32>::new("q/flood");
    let critical = EventPort::<()>::new("q/critical");
    let mut b = ServiceDescriptor::builder("pub");
    b.provides_event(&flood).provides_event(&critical);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), None);
    }));
    let (fp, cp) = (flood.clone(), critical.clone());
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        for i in 0..500u32 {
            ctx.emit_to(&fp, i);
        }
        ctx.emit_to(&cp, ());
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    let mut sb = ServiceDescriptor::builder("sink");
    sb.subscribe_to_event(&flood, EventQos::bulk().with_queue_bound(100))
        .subscribe_to_event(&critical, EventQos::default());
    h.add_service(NodeId(1), Box::new(Recorder::new(sb.build(), log.clone())));
    h.start_all();
    h.run_for_millis(100);

    let events: Vec<String> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(name, _) => Some(name),
            _ => None,
        })
        .collect();
    let critical_pos = events.iter().position(|n| n == "q/critical").expect("critical delivered");
    assert!(
        critical_pos == 0,
        "critical event jumps the 500-deep bulk backlog (delivered at {critical_pos})"
    );
    let bulk_delivered = events.iter().filter(|n| n.as_str() == "q/flood").count();
    assert!(bulk_delivered > 0, "bulk still drains in the background");
    let drops = h.container(NodeId(1)).unwrap().event_qos_stats("q/flood").unwrap();
    assert_eq!(drops.queue_drops, 400, "flood beyond the bound is shed");
    assert!(drops.inbox_peak <= 100, "inbox never exceeds the declared bound");
}

// ---------------------------------------------------------------------------
// Calls: caller-visible deadline and retry budget
// ---------------------------------------------------------------------------

#[test]
fn call_deadline_and_retry_budget_shape_failure_time() {
    // The provider's node is partitioned before the call: with the default
    // contract (800 ms x 3 attempts) the failure would surface after
    // seconds; a 100 ms deadline with a budget of 1 surfaces it fast.
    let mut h = SimHarness::new(lan(66));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("server", NodeId(2)));

    let ping = FnPort::<(), bool>::new("s/ping");
    let mut sb = ServiceDescriptor::builder("server");
    sb.provides_fn(&ping);
    let mut server = Scripted::new(sb.build());
    server.on_call = Some(Box::new(|_ctx, _f, _a| Ok(Value::Bool(true))));
    h.add_service(NodeId(2), Box::new(server));

    let outcome: OutcomeLog<Value> = Arc::new(Mutex::new(Vec::new()));
    let mut cb = ServiceDescriptor::builder("client");
    cb.requires_fn(&ping);
    let mut client = Scripted::new(cb.build());
    client.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(200), None);
    }));
    let cport = ping.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        ctx.call_fn_with(
            &cport,
            (),
            CallOptions::default()
                .with_deadline(ProtoDuration::from_millis(100))
                .with_retry_budget(1),
        );
    }));
    let sink = outcome.clone();
    client.on_reply = Some(Box::new(move |ctx, _h, result| {
        sink.lock().unwrap().push((ctx.now().as_millis(), result.map_err(|e| e.to_string())));
    }));
    h.add_service(NodeId(1), Box::new(client));
    h.start_all();
    h.run_for_millis(150); // discovery settles, timer not yet fired
    h.network().set_partition(1, 2, true);
    h.run_for_millis(2_000);

    let replies = outcome.lock().unwrap();
    assert_eq!(replies.len(), 1, "{replies:?}");
    let (t_ms, result) = &replies[0];
    assert_eq!(result.as_ref().unwrap_err(), &CallError::Timeout.to_string());
    // Fired at 200 ms + 100 ms contract deadline (+ tick slack), far below
    // the 2400 ms the container defaults would have taken.
    assert!((*t_ms) < 500, "budgeted failure surfaces fast, at {t_ms} ms");
    assert_eq!(h.container(NodeId(1)).unwrap().stats().qos.retries, 0, "budget of 1: no retries");
}

#[test]
fn per_call_deadline_speeds_up_failover_to_backup() {
    let mut h = SimHarness::new(lan(67));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("primary", NodeId(2)));
    h.add_container(ContainerConfig::new("backup", NodeId(3)));

    let who = FnPort::<(), u32>::new("s/who");
    for node in [NodeId(2), NodeId(3)] {
        let mut sb = ServiceDescriptor::builder("server");
        sb.provides_fn(&who);
        let mut server = Scripted::new(sb.build());
        let id = node.0;
        server.on_call = Some(Box::new(move |_ctx, _f, _a| Ok(Value::U32(id))));
        h.add_service(node, Box::new(server));
    }

    let outcome: OutcomeLog<u64> = Arc::new(Mutex::new(Vec::new()));
    let mut cb = ServiceDescriptor::builder("client");
    cb.requires_fn(&who);
    let mut client = Scripted::new(cb.build());
    client.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(200), None);
    }));
    let cport = who.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        // Pin to the (partitioned) primary, but keep a tight per-attempt
        // deadline so the middleware re-dispatches to the backup quickly.
        ctx.call_fn_with(
            &cport,
            (),
            CallOptions::default()
                .pinned(NodeId(2))
                .with_deadline(ProtoDuration::from_millis(100))
                .with_retry_budget(3),
        );
    }));
    let sink = outcome.clone();
    client.on_reply = Some(Box::new(move |ctx, _h, result| {
        sink.lock().unwrap().push((
            ctx.now().as_millis(),
            result.map(|v| v.as_u64().unwrap_or(0)).map_err(|e| e.to_string()),
        ));
    }));
    h.add_service(NodeId(1), Box::new(client));
    h.start_all();
    h.run_for_millis(150);
    h.network().set_partition(1, 2, true);
    h.run_for_millis(2_000);

    let replies = outcome.lock().unwrap();
    assert_eq!(replies.len(), 1, "{replies:?}");
    let (t_ms, result) = &replies[0];
    assert_eq!(result, &Ok(3), "the backup answered");
    assert!(*t_ms < 700, "tight deadline bounds the blackout: answered at {t_ms} ms");
    let client = h.container(NodeId(1)).unwrap();
    assert!(client.stats().qos.retries >= 1);
    assert!(client.fn_retries("s/who") >= 1);
}

// ---------------------------------------------------------------------------
// Property tests: profile validation and builder rejection
// ---------------------------------------------------------------------------

proptest! {
    /// `VarQos::validate` accepts exactly the satisfiable contracts.
    #[test]
    fn var_qos_validation_matches_field_rules(
        validity_us in 0u64..1_000_000,
        deadline_periods in 0u32..10,
        history in 0usize..64,
    ) {
        let qos = VarQos::aperiodic(ProtoDuration::from_micros(validity_us))
            .with_deadline_periods(deadline_periods)
            .with_history(history);
        let ok = validity_us > 0 && deadline_periods > 0 && history > 0;
        prop_assert_eq!(qos.validate().is_ok(), ok, "{:?}", qos);
    }

    /// The builder panics on every invalid variable contract and accepts
    /// every valid one.
    #[test]
    fn builder_rejects_exactly_invalid_var_profiles(
        validity_us in 0u64..1_000,
        history in 0usize..8,
    ) {
        let qos = VarQos::aperiodic(ProtoDuration::from_micros(validity_us)).with_history(history);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut b = ServiceDescriptor::builder("svc");
            b.subscribe_variable("svc/v", qos);
            b.build()
        }));
        prop_assert_eq!(outcome.is_ok(), qos.validate().is_ok());
    }

    /// `EventQos::validate` rejects exactly the zero queue bound, for any
    /// priority and drop policy.
    #[test]
    fn event_qos_validation_matches_field_rules(
        queue_bound in 0usize..128,
        priority in 0u8..8,
        drop_newest in any::<bool>(),
    ) {
        let policy = if drop_newest { DropPolicy::DropNewest } else { DropPolicy::DropOldest };
        let qos = EventQos::default()
            .with_priority(Priority(priority))
            .with_queue_bound(queue_bound)
            .with_drop_policy(policy);
        prop_assert_eq!(qos.validate().is_ok(), queue_bound > 0);

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut b = ServiceDescriptor::builder("svc");
            b.subscribe_event("svc/e", qos);
            b.build()
        }));
        prop_assert_eq!(outcome.is_ok(), queue_bound > 0);
    }

    /// `CallOptions::validate` rejects exactly zero deadlines and zero
    /// retry budgets; unset fields always fall back to container defaults.
    #[test]
    fn call_options_validation_matches_field_rules(
        deadline_us in 0u64..10_000,
        use_deadline in any::<bool>(),
        retry_budget in 0u32..10,
        use_budget in any::<bool>(),
    ) {
        let mut opts = CallOptions::default();
        if use_deadline {
            opts = opts.with_deadline(ProtoDuration::from_micros(deadline_us));
        }
        if use_budget {
            opts = opts.with_retry_budget(retry_budget);
        }
        let ok = !(use_deadline && deadline_us == 0 || use_budget && retry_budget == 0);
        prop_assert_eq!(opts.validate().is_ok(), ok, "{:?}", opts);
    }
}
