//! Metrics-timeline determinism over the chaos corpus: sampling a full
//! scenario (crashes, loss ramps, link churn) must be a pure function
//! of the seed, down to the rendered bytes.

use marea_core::metrics::MetricsConfig;
use marea_core::scenario::corpus;
use marea_core::ProtoDuration;

fn timeline_of(name: &str, seed: u64) -> (String, String, u64) {
    let mut chaos =
        corpus::build(name, &corpus::ScenarioConfig::quick(seed)).expect("known corpus scenario");
    chaos
        .runner
        .harness_mut()
        .enable_metrics(MetricsConfig { period: ProtoDuration::from_millis(100), capacity: 8192 });
    let report = chaos.run();
    assert!(report.passed(), "`{name}`: {:#?}", report.violations);
    let h = chaos.runner.into_harness();
    let sampler = h.metrics().expect("sampler enabled");
    (sampler.to_jsonl(), sampler.to_json(), sampler.samples())
}

/// Same seed ⇒ byte-identical timeline, for both renderings, on two
/// corpus scenarios with very different failure modes (a clean loss
/// ramp and a crash/failover script).
#[test]
fn same_seed_timeline_is_byte_identical_across_corpus_scenarios() {
    let mut timelines = Vec::new();
    for name in ["radio_degradation_ramp", "publisher_failover"] {
        let (jsonl_a, json_a, samples_a) = timeline_of(name, 42);
        let (jsonl_b, json_b, samples_b) = timeline_of(name, 42);
        assert!(samples_a > 0, "`{name}`: the sampler must have fired");
        assert_eq!(samples_a, samples_b, "`{name}`: same sample count");
        assert_eq!(jsonl_a, jsonl_b, "`{name}`: same seed, same JSONL bytes");
        assert_eq!(json_a, json_b, "`{name}`: same seed, same JSON bytes");
        timelines.push(jsonl_a);
    }
    // The two scenarios produce genuinely different timelines, so the
    // equalities above are not vacuous (e.g. an empty sampler).
    assert_ne!(timelines[0], timelines[1], "distinct scenarios must have distinct timelines");
}

/// The timeline carries real per-node activity from the scenario: node
/// frames for every container and non-zero delivery deltas somewhere.
#[test]
fn corpus_timeline_carries_per_node_activity() {
    let (jsonl, json, _) = timeline_of("publisher_failover", 7);
    assert!(jsonl.lines().count() > 3, "timeline has frames:\n{jsonl}");
    assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"node\"")), "node frames present");
    assert!(jsonl.lines().last().unwrap().starts_with("{\"kind\":\"summary\""));
    assert!(json.contains("\"frames\":"), "document form renders");
}
