//! Multi-node integration tests for the service container: every paper
//! feature exercised over the simulated LAN.

mod common;

use bytes::Bytes;
use common::{obs_log, observations, Obs, Recorder, Scripted};
use marea_core::{
    CallOptions, CallPolicy, ContainerConfig, EventPort, EventQos, FnPort, Micros, NodeId,
    ProtoDuration, SchedulerKind, ServiceDescriptor, SimHarness, VarDistribution, VarPort, VarQos,
};
use marea_netsim::{LinkConfig, NetConfig};
use marea_presentation::{DataType, Value};

fn lan(seed: u64) -> NetConfig {
    NetConfig::default().with_seed(seed)
}

fn lossy(seed: u64, loss: f64) -> NetConfig {
    NetConfig::default().with_seed(seed).with_default_link(LinkConfig::default().with_loss(loss))
}

#[test]
fn containers_discover_each_other() {
    let mut h = SimHarness::new(lan(1));
    h.add_container(ContainerConfig::new("alpha", NodeId(1)));
    h.add_container(ContainerConfig::new("beta", NodeId(2)));
    h.start_all();
    let discovered = h.run_until(
        |h| {
            h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2))
                && h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1))
        },
        ProtoDuration::from_secs(2),
    );
    assert!(discovered, "mutual discovery within budget");
    let a = h.container(NodeId(1)).unwrap();
    assert_eq!(a.directory().node(NodeId(2)).unwrap().container.as_str(), "beta");
}

#[test]
fn variables_flow_across_nodes_with_schema() {
    let mut h = SimHarness::new(lan(2));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    // Publisher: counter at 10 ms period, declared through a typed port.
    let counter = VarPort::<u64>::new("counter/value");
    let mut b = ServiceDescriptor::builder("counter");
    b.provides_var(
        &counter,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let mut n = 0u64;
    let port = counter.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        n += 1;
        ctx.publish_to(&port, n);
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("display")
                .subscribe_variable("counter/value", VarQos::default())
                .build(),
            log.clone(),
        )),
    );

    h.start_all();
    h.run_for_millis(300);

    let vars: Vec<u64> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Var(name, v) if name == "counter/value" => v.as_u64(),
            _ => None,
        })
        .collect();
    assert!(vars.len() >= 20, "expected a steady sample stream, got {}", vars.len());
    // Strictly increasing (duplicates and regressions filtered).
    assert!(vars.windows(2).all(|w| w[0] < w[1]), "{vars:?}");
    // Availability notice fired.
    assert!(observations(&log)
        .iter()
        .any(|(_, o)| matches!(o, Obs::Provider(p) if p.contains("VariableAvailable"))));
}

#[test]
fn initial_value_is_guaranteed_to_late_subscribers() {
    let mut h = SimHarness::new(lan(3));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    // Publishes exactly once at start, then stays silent. Long validity.
    let oneshot = VarPort::<u32>::new("oneshot/value");
    let mut b = ServiceDescriptor::builder("oneshot");
    b.provides_var(&oneshot, VarQos::aperiodic(ProtoDuration::from_secs(60)));
    let mut publisher = Scripted::new(b.build());
    let port = oneshot.clone();
    publisher.on_start = Some(Box::new(move |ctx| ctx.publish_to(&port, 42u32)));
    h.add_service(NodeId(1), Box::new(publisher));
    h.start_all();
    h.run_for_millis(100);

    // Subscriber appears late: the only way it can learn the value is the
    // initial-value unicast (paper §4.1).
    let log = obs_log();
    h.container_mut(NodeId(2))
        .unwrap()
        .add_service(Box::new(Recorder::new(
            ServiceDescriptor::builder("late")
                .subscribe_variable("oneshot/value", VarQos::default().with_initial())
                .build(),
            log.clone(),
        )))
        .unwrap();
    h.run_for_millis(100);

    let got: Vec<Value> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Var(_, v) => Some(v),
            _ => None,
        })
        .collect();
    assert_eq!(got, vec![Value::U32(42)], "initial exact value delivered once");
}

#[test]
fn variable_timeout_warns_subscribers() {
    let mut h = SimHarness::new(lan(4));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    // Publishes at 10 ms for 100 ms, then goes silent (sensor failure).
    let reading = VarPort::<f32>::new("sensor/reading");
    let mut b = ServiceDescriptor::builder("sensor");
    b.provides_var(
        &reading,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(50)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let mut count = 0;
    let port = reading.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        count += 1;
        if count <= 10 {
            ctx.publish_to(&port, 1.5f32);
        }
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("monitor")
                .subscribe_variable("sensor/reading", VarQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(400);

    let obs = observations(&log);
    let timeouts: Vec<&Micros> = obs
        .iter()
        .filter_map(|(t, o)| match o {
            Obs::VarTimeout(name) if name == "sensor/reading" => Some(t),
            _ => None,
        })
        .collect();
    assert_eq!(timeouts.len(), 1, "warned exactly once: {obs:?}");
    // The warning came after the last sample plus ~3 periods.
    let last_sample =
        obs.iter().filter(|(_, o)| matches!(o, Obs::Var(..))).map(|(t, _)| *t).max().unwrap();
    assert!(*timeouts[0] > last_sample);
    // The miss is accounted against the subscription's QoS contract.
    let sub = h.container(NodeId(2)).unwrap();
    assert_eq!(sub.stats().qos.deadline_misses, 1);
    assert_eq!(sub.var_qos_stats("sensor/reading").unwrap().deadline_misses, 1);
}

#[test]
fn stale_samples_are_dropped_by_validity() {
    // A slow link delays samples beyond their validity window.
    let mut h = SimHarness::new(lan(5));
    h.network().set_default_link(LinkConfig::default().with_latency_us(30_000));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let fast = VarPort::<u8>::new("fast/v");
    let mut b = ServiceDescriptor::builder("fast");
    b.provides_var(
        &fast,
        // validity < link latency
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(5)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let port = fast.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| ctx.publish_to(&port, 1u8)));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("mon")
                .subscribe_variable("fast/v", VarQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(200);

    let delivered = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert_eq!(delivered, 0, "every sample arrived stale");
    let stats = h.container(NodeId(2)).unwrap().stats();
    assert!(stats.stale_samples_dropped > 5, "{stats:?}");
    // Stale drops are part of the QoS ledger, per subscription and total.
    assert_eq!(stats.qos.stale_drops, stats.stale_samples_dropped);
    let per_sub = h.container(NodeId(2)).unwrap().var_qos_stats("fast/v").unwrap();
    assert_eq!(per_sub.stale_drops, stats.stale_samples_dropped);
}

#[test]
fn events_are_delivered_exactly_once_in_order_under_loss() {
    let mut h = SimHarness::new(lossy(6, 0.10));
    // FEC off: this test exercises the ARQ retransmission machinery, which
    // the erasure-coding layer otherwise short-circuits at this loss rate
    // (see fec_repairs_erasures_without_retransmit below).
    let mut pub_cfg = ContainerConfig::new("pub", NodeId(1));
    pub_cfg.fec.enabled = false;
    let mut sub_cfg = ContainerConfig::new("sub", NodeId(2));
    sub_cfg.fec.enabled = false;
    h.add_container(pub_cfg);
    h.add_container(sub_cfg);

    let tick = EventPort::<u64>::new("alerter/tick");
    let mut b = ServiceDescriptor::builder("alerter");
    b.provides_event(&tick);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        // First emission waits out subscription wiring (even under loss the
        // reliable control plane settles within a few RTOs); pub/sub has no
        // retroactive delivery for earlier events.
        ctx.set_timer(ProtoDuration::from_millis(300), Some(ProtoDuration::from_millis(5)));
    }));
    let mut i = 0u64;
    let port = tick.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        if i < 50 {
            ctx.emit_to(&port, i);
            i += 1;
        }
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("watcher")
                .subscribe_event("alerter/tick", EventQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    let all_arrived = h.run_until(
        |h| h.container(NodeId(2)).unwrap().stats().events_delivered >= 50,
        ProtoDuration::from_secs(2),
    );
    assert!(all_arrived, "all 50 events within the loss budget");

    let got: Vec<u64> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(name, Some(v)) if name == "alerter/tick" => v.as_u64(),
            _ => None,
        })
        .collect();
    assert_eq!(got, (0..50).collect::<Vec<u64>>(), "reliable, ordered, exactly once");
    // Loss did force retransmissions.
    let arq = h.container(NodeId(1)).unwrap().arq_stats();
    assert!(arq.retransmitted > 0, "{arq:?}");
    assert_eq!(arq.failed, 0);
}

#[test]
fn fec_repairs_erasures_without_retransmit() {
    // Same shape as the test above but with FEC left on (the default):
    // the erasure-coding layer below ARQ must rebuild lost frames from
    // parity, and every event still arrives exactly once in order.
    let mut h = SimHarness::new(lossy(6, 0.10));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let tick = EventPort::<u64>::new("alerter/tick");
    let mut b = ServiceDescriptor::builder("alerter");
    b.provides_event(&tick);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(300), Some(ProtoDuration::from_millis(5)));
    }));
    let mut i = 0u64;
    let port = tick.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        if i < 50 {
            ctx.emit_to(&port, i);
            i += 1;
        }
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("watcher")
                .subscribe_event("alerter/tick", EventQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    let all_arrived = h.run_until(
        |h| h.container(NodeId(2)).unwrap().stats().events_delivered >= 50,
        ProtoDuration::from_secs(2),
    );
    assert!(all_arrived, "all 50 events within the loss budget");

    let got: Vec<u64> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(name, Some(v)) if name == "alerter/tick" => v.as_u64(),
            _ => None,
        })
        .collect();
    assert_eq!(got, (0..50).collect::<Vec<u64>>(), "reliable, ordered, exactly once");

    let tx = h.container(NodeId(1)).unwrap().stats().fec;
    assert!(tx.data_shards_out > 0, "link traffic was coded: {tx:?}");
    assert!(tx.parity_shards_out > 0, "groups closed with parity: {tx:?}");
    let rx = h.container(NodeId(2)).unwrap().stats().fec;
    assert!(rx.recovered > 0, "at 10% loss some erasure must be parity-repaired: {rx:?}");

    // Negotiation must converge on BOTH ends, even though the subscriber
    // attached after the publisher's startup Hello had already been
    // broadcast (the heartbeat-borne capability refresh covers that) —
    // a one-sided cap would leave the late node sending uncoded forever.
    assert!(tx.negotiated_rate_max >= 1, "publisher negotiated a live rate: {tx:?}");
    assert!(rx.negotiated_rate_max >= 1, "subscriber negotiated a live rate: {rx:?}");
}

#[test]
fn bare_events_carry_no_payload() {
    let mut h = SimHarness::new(lan(7));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let ping = EventPort::<()>::new("bare/ping");
    let mut b = ServiceDescriptor::builder("bare");
    b.provides_event(&ping);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(20), None);
    }));
    let port = ping.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| ctx.emit_to(&port, ())));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("w")
                .subscribe_event("bare/ping", EventQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(200);
    let events: Vec<Obs> = observations(&log)
        .into_iter()
        .filter(|(_, o)| matches!(o, Obs::Event(..)))
        .map(|(_, o)| o)
        .collect();
    assert_eq!(events, vec![Obs::Event("bare/ping".into(), None)]);
}

#[test]
fn remote_invocation_roundtrip() {
    let mut h = SimHarness::new(lan(8));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("server", NodeId(2)));

    let double = FnPort::<(u32,), u32>::new("math/double");
    let mut b = ServiceDescriptor::builder("math");
    b.provides_fn(&double);
    let mut server = Scripted::new(b.build());
    let sport = double.clone();
    server.on_call = Some(Box::new(move |_ctx, function, args| {
        assert_eq!(function.as_str(), "math/double");
        let (x,) = sport.decode_args(args).map_err(|e| e.to_string())?;
        Ok(sport.encode_ret(x * 2))
    }));
    h.add_service(NodeId(2), Box::new(server));

    let log = obs_log();
    let mut client = Scripted::new(
        ServiceDescriptor::builder("consumer").requires_function("math/double").build(),
    );
    client.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(30), None);
    }));
    let cport = double.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        ctx.call_fn(&cport, (21,));
    }));
    let reply_log = log.clone();
    client.on_reply = Some(Box::new(move |ctx, handle, result| {
        reply_log
            .lock()
            .unwrap()
            .push((ctx.now(), Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string()))));
    }));
    h.add_service(NodeId(1), Box::new(client));

    h.start_all();
    h.run_for_millis(300);

    let replies: Vec<Obs> = observations(&log)
        .into_iter()
        .filter(|(_, o)| matches!(o, Obs::Reply(..)))
        .map(|(_, o)| o)
        .collect();
    assert_eq!(replies, vec![Obs::Reply(1, Ok(Value::U32(42)))]);
    assert_eq!(h.container(NodeId(2)).unwrap().stats().calls_served, 1);
}

#[test]
fn local_calls_bypass_the_network() {
    let mut h = SimHarness::new(lan(9));
    h.add_container(ContainerConfig::new("solo", NodeId(1)));

    let neg = FnPort::<(i32,), i32>::new("math/neg");
    let mut b = ServiceDescriptor::builder("math");
    b.provides_fn(&neg);
    let mut server = Scripted::new(b.build());
    let sport = neg.clone();
    server.on_call = Some(Box::new(move |_ctx, _f, args| {
        let (x,) = sport.decode_args(args).map_err(|e| e.to_string())?;
        Ok(sport.encode_ret(-x))
    }));
    h.add_service(NodeId(1), Box::new(server));

    let log = obs_log();
    let mut client = Scripted::new(ServiceDescriptor::builder("consumer").build());
    client.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), None);
    }));
    let cport = neg.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        ctx.call_fn(&cport, (7,));
    }));
    let reply_log = log.clone();
    client.on_reply = Some(Box::new(move |ctx, handle, result| {
        reply_log
            .lock()
            .unwrap()
            .push((ctx.now(), Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string()))));
    }));
    h.add_service(NodeId(1), Box::new(client));
    h.start_all();
    h.run_for_millis(100);

    let replies: Vec<Obs> = observations(&log)
        .into_iter()
        .filter(|(_, o)| matches!(o, Obs::Reply(..)))
        .map(|(_, o)| o)
        .collect();
    assert_eq!(replies, vec![Obs::Reply(1, Ok(Value::I32(-7)))]);
    // No CallRequest ever hit the wire (only discovery traffic did).
    let arq = h.container(NodeId(1)).unwrap().arq_stats();
    assert_eq!(arq.sent, 0, "local call used the in-container path");
}

#[test]
fn call_errors_propagate() {
    let mut h = SimHarness::new(lan(10));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("server", NodeId(2)));

    let work = FnPort::<(), bool>::new("fragile/work");
    let missing = FnPort::<(), bool>::new("no/such-function");
    let mut b = ServiceDescriptor::builder("fragile");
    b.provides_fn(&work);
    let mut server = Scripted::new(b.build());
    server.on_call = Some(Box::new(|_ctx, _f, _a| Err("out of film".into())));
    h.add_service(NodeId(2), Box::new(server));

    let log = obs_log();
    let mut client = Scripted::new(ServiceDescriptor::builder("consumer").build());
    client.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(30), None);
    }));
    client.on_timer = Some(Box::new(move |ctx, _| {
        ctx.call_fn(&work, ());
        ctx.call_fn(&missing, ());
    }));
    let reply_log = log.clone();
    client.on_reply = Some(Box::new(move |ctx, handle, result| {
        reply_log
            .lock()
            .unwrap()
            .push((ctx.now(), Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string()))));
    }));
    h.add_service(NodeId(1), Box::new(client));
    h.start_all();
    h.run_for_millis(300);

    let mut replies: Vec<Obs> = observations(&log)
        .into_iter()
        .filter(|(_, o)| matches!(o, Obs::Reply(..)))
        .map(|(_, o)| o)
        .collect();
    replies.sort_by_key(|o| match o {
        Obs::Reply(h, _) => *h,
        _ => 0,
    });
    assert_eq!(replies.len(), 2);
    assert!(matches!(&replies[0], Obs::Reply(_, Err(e)) if e.contains("out of film")));
    assert!(matches!(&replies[1], Obs::Reply(_, Err(e)) if e.contains("no provider")));
}

#[test]
fn calls_fail_over_to_redundant_provider() {
    let mut h = SimHarness::new(lan(11));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("primary", NodeId(2)));
    h.add_container(ContainerConfig::new("backup", NodeId(3)));

    let where_fn = FnPort::<(), u32>::new("storage/where");
    for node in [NodeId(2), NodeId(3)] {
        let mut b = ServiceDescriptor::builder("storage");
        b.provides_fn(&where_fn);
        let mut server = Scripted::new(b.build());
        let who = node.0;
        server.on_call = Some(Box::new(move |_ctx, _f, _a| Ok(Value::U32(who))));
        h.add_service(node, Box::new(server));
    }

    let log = obs_log();
    let mut client = Scripted::new(ServiceDescriptor::builder("consumer").build());
    client.on_start = Some(Box::new(|ctx| {
        // Call every 100 ms, pinned to node 2 while it lives.
        ctx.set_timer(ProtoDuration::from_millis(100), Some(ProtoDuration::from_millis(100)));
    }));
    let cport = where_fn.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        ctx.call_fn_with(&cport, (), CallOptions::default().pinned(NodeId(2)));
    }));
    let reply_log = log.clone();
    client.on_reply = Some(Box::new(move |ctx, handle, result| {
        reply_log
            .lock()
            .unwrap()
            .push((ctx.now(), Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string()))));
    }));
    h.add_service(NodeId(1), Box::new(client));
    h.start_all();
    h.run_for_millis(450);

    // Kill the primary mid-mission.
    h.crash_node(NodeId(2));
    h.run_for_millis(3_000);

    let replies: Vec<(u64, Result<u64, String>)> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Reply(h, r) => Some((h, r.map(|v| v.as_u64().unwrap()))),
            _ => None,
        })
        .collect();
    let served_by_primary = replies.iter().filter(|(_, r)| *r == Ok(2)).count();
    let served_by_backup = replies.iter().filter(|(_, r)| *r == Ok(3)).count();
    assert!(served_by_primary >= 3, "primary served before crash: {replies:?}");
    assert!(served_by_backup >= 10, "backup continues the mission: {replies:?}");
    // Every call eventually answered (possibly after failover); at most the
    // in-flight ones during the blackout window report an error.
    let errors = replies.iter().filter(|(_, r)| r.is_err()).count();
    assert!(errors <= 2, "at most the in-flight calls error: {replies:?}");
    let client = h.container(NodeId(1)).unwrap();
    assert!(client.stats().call_failovers >= 1);
    // The transparent re-dispatches are part of the QoS ledger, total and
    // per function.
    assert!(client.stats().qos.retries >= 1, "{:?}", client.stats().qos);
    assert!(client.fn_retries("storage/where") >= 1);
    assert_eq!(client.fn_retries("no/such"), 0);
}

#[test]
fn file_distribution_to_multiple_nodes_is_bit_exact() {
    let mut h = SimHarness::new(lossy(12, 0.02));
    h.add_container(ContainerConfig::new("cam", NodeId(1)));
    h.add_container(ContainerConfig::new("store", NodeId(2)));
    h.add_container(ContainerConfig::new("proc", NodeId(3)));

    let image: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let mut camera =
        Scripted::new(ServiceDescriptor::builder("camera").file_resource("camera/img").build());
    let img = Bytes::from(image.clone());
    camera.on_start = Some(Box::new(move |ctx| {
        ctx.publish_file("camera/img", img.clone());
    }));
    h.add_service(NodeId(1), Box::new(camera));

    let log2 = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("storage").subscribe_file("camera/img").build(),
            log2.clone(),
        )),
    );
    let log3 = obs_log();
    h.add_service(
        NodeId(3),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("video").subscribe_file("camera/img").build(),
            log3.clone(),
        )),
    );
    h.start_all();
    let both_done = h.run_until(
        |h| {
            [NodeId(2), NodeId(3)]
                .iter()
                .all(|n| h.container(*n).unwrap().stats().files_received >= 1)
        },
        ProtoDuration::from_secs(5),
    );
    assert!(both_done, "both subscribers completed within the loss budget");

    for (node, log) in [(NodeId(2), &log2), (NodeId(3), &log3)] {
        let data: Vec<Bytes> = observations(log)
            .into_iter()
            .filter_map(|(_, o)| match o {
                Obs::FileData(name, _rev, data) if name == "camera/img" => Some(data),
                _ => None,
            })
            .collect();
        assert_eq!(data.len(), 1, "{node} received exactly once");
        assert_eq!(data[0].as_ref(), image.as_slice(), "{node} bit-exact");
    }
}

#[test]
fn same_node_file_subscription_bypasses_the_network() {
    let mut h = SimHarness::new(lan(13));
    h.add_container(ContainerConfig::new("solo", NodeId(1)));

    let payload = Bytes::from(vec![7u8; 50_000]);
    let mut camera =
        Scripted::new(ServiceDescriptor::builder("camera").file_resource("camera/img").build());
    let img = payload.clone();
    camera.on_start = Some(Box::new(move |ctx| {
        ctx.publish_file("camera/img", img.clone());
    }));
    h.add_service(NodeId(1), Box::new(camera));

    let log = obs_log();
    h.add_service(
        NodeId(1),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("storage").subscribe_file("camera/img").build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(200);

    let got: Vec<Bytes> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::FileData(_, _, data) => Some(data),
            _ => None,
        })
        .collect();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0], payload);
    let stats = h.container(NodeId(1)).unwrap().stats();
    assert_eq!(stats.file_bypass_deliveries, 1);
    assert_eq!(stats.files_received, 0, "no network reception happened");
    // No chunk ever hit the wire.
    let chunks_on_wire = h.network().stats().bytes_sent;
    assert!(chunks_on_wire < 10_000, "only control-plane traffic: {chunks_on_wire}");
}

#[test]
fn file_revision_update_reaches_subscribers() {
    let mut h = SimHarness::new(lan(14));
    h.add_container(ContainerConfig::new("cam", NodeId(1)));
    h.add_container(ContainerConfig::new("store", NodeId(2)));

    let mut camera =
        Scripted::new(ServiceDescriptor::builder("camera").file_resource("camera/map").build());
    camera.on_start = Some(Box::new(move |ctx| {
        ctx.publish_file("camera/map", Bytes::from(vec![1u8; 10_000]));
        // Revise after 300 ms.
        ctx.set_timer(ProtoDuration::from_millis(300), None);
    }));
    camera.on_timer = Some(Box::new(move |ctx, _| {
        ctx.publish_file("camera/map", Bytes::from(vec![2u8; 5_000]));
    }));
    h.add_service(NodeId(1), Box::new(camera));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("storage").subscribe_file("camera/map").build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(1_500);

    let revs: Vec<(u32, usize, u8)> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::FileData(_, rev, data) => Some((rev, data.len(), data[0])),
            _ => None,
        })
        .collect();
    assert_eq!(revs, vec![(1, 10_000, 1), (2, 5_000, 2)], "both revisions, in order");
}

#[test]
fn file_schema_violations_are_counted_per_engine() {
    let mut h = SimHarness::new(lan(44));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));

    // Node 1: publishes an *undeclared* resource (dropped + counted) and a
    // declared one.
    let mut rogue =
        Scripted::new(ServiceDescriptor::builder("rogue").file_resource("shared/img").build());
    rogue.on_start = Some(Box::new(|ctx| {
        ctx.publish_file("rogue/undeclared", Bytes::from_static(b"x"));
        ctx.publish_file("shared/img", Bytes::from_static(b"from-node-1"));
    }));
    h.add_service(NodeId(1), Box::new(rogue));

    // Node 2: publishes the *same* resource name — a fleet-level contract
    // violation (two writers behind one name) each side must refuse.
    let mut twin =
        Scripted::new(ServiceDescriptor::builder("twin").file_resource("shared/img").build());
    twin.on_start = Some(Box::new(|ctx| {
        ctx.publish_file("shared/img", Bytes::from_static(b"from-node-2"));
    }));
    h.add_service(NodeId(2), Box::new(twin));

    h.start_all();
    h.run_for_millis(500);

    let a = h.container(NodeId(1)).unwrap();
    assert!(
        a.stats().type_mismatches.files >= 2,
        "undeclared publish + colliding announce both counted: {:?}",
        a.stats().type_mismatches
    );
    assert!(a.log_lines().any(|(_, l)| l.contains("undeclared file resource")));
    assert!(a.log_lines().any(|(_, l)| l.contains("locally published resource")));
    let b = h.container(NodeId(2)).unwrap();
    assert_eq!(b.stats().type_mismatches.files, 1, "node 2 refused node 1's announce");
}

#[test]
fn panicking_service_is_quarantined_and_fleet_notified() {
    let mut h = SimHarness::new(lan(15));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));

    let mut bomb_b = ServiceDescriptor::builder("bomb");
    bomb_b.function::<(), ()>("bomb/arm");
    let mut bomb = Scripted::new(bomb_b.build());
    bomb.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(50), None);
    }));
    bomb.on_timer = Some(Box::new(|_ctx, _| panic!("deliberate test panic")));
    h.add_service(NodeId(1), Box::new(bomb));
    h.start_all();

    // Silence the default panic hook for the expected panic.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    h.run_for_millis(300);
    std::panic::set_hook(prev_hook);

    let a = h.container(NodeId(1)).unwrap();
    assert_eq!(a.service_state("bomb"), Some(marea_core::ServiceState::Failed));
    assert_eq!(a.stats().services_failed, 1);
    // The other container no longer sees the function as available.
    let b = h.container(NodeId(2)).unwrap();
    assert!(b.directory().resolve_function("bomb/arm", CallPolicy::Dynamic, None).is_none());
}

#[test]
fn graceful_bye_purges_remote_caches_immediately() {
    let mut h = SimHarness::new(lan(16));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));
    let mut xb = ServiceDescriptor::builder("x");
    xb.function::<(), ()>("x/f");
    h.add_service(NodeId(2), Box::new(Scripted::new(xb.build())));
    h.start_all();
    h.run_for_millis(50);
    assert!(h
        .container(NodeId(1))
        .unwrap()
        .directory()
        .resolve_function("x/f", CallPolicy::Dynamic, None)
        .is_some());
    h.stop_node(NodeId(2));
    h.run_for_millis(10);
    let a = h.container(NodeId(1)).unwrap();
    assert!(!a.directory().node_alive(NodeId(2)), "bye is immediate, no heartbeat wait");
    assert!(a.directory().resolve_function("x/f", CallPolicy::Dynamic, None).is_none());
}

#[test]
fn unicast_fanout_mode_still_delivers() {
    let mut h = SimHarness::new(lan(17));
    let mut cfg = ContainerConfig::new("pub", NodeId(1));
    cfg.var_distribution = VarDistribution::UnicastFanout;
    h.add_container(cfg);
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let pv = VarPort::<u32>::new("p/v");
    let mut b = ServiceDescriptor::builder("p");
    b.provides_var(
        &pv,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let port = pv.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| ctx.publish_to(&port, 5u32)));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("s").subscribe_variable("p/v", VarQos::default()).build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(300);
    let n = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert!(n >= 20, "unicast fan-out delivers: {n}");
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = |seed: u64| -> (u64, u64, u64, u64) {
        let mut h = SimHarness::new(lossy(seed, 0.05));
        h.add_container(ContainerConfig::new("pub", NodeId(1)));
        h.add_container(ContainerConfig::new("sub", NodeId(2)));
        let pv = VarPort::<u64>::new("p/v");
        let pe = EventPort::<u64>::new("p/e");
        let mut b = ServiceDescriptor::builder("p");
        b.provides_var(
            &pv,
            VarQos::periodic(ProtoDuration::from_millis(5), ProtoDuration::from_millis(50)),
        )
        .provides_event(&pe);
        let mut publisher = Scripted::new(b.build());
        publisher.on_start = Some(Box::new(|ctx| {
            ctx.set_timer(ProtoDuration::from_millis(5), Some(ProtoDuration::from_millis(5)));
        }));
        let mut k = 0u64;
        let (vp, ep) = (pv.clone(), pe.clone());
        publisher.on_timer = Some(Box::new(move |ctx, _| {
            k += 1;
            ctx.publish_to(&vp, k);
            if k.is_multiple_of(7) {
                ctx.emit_to(&ep, k);
            }
        }));
        h.add_service(NodeId(1), Box::new(publisher));
        let log = obs_log();
        h.add_service(
            NodeId(2),
            Box::new(Recorder::new(
                ServiceDescriptor::builder("s")
                    .subscribe_variable("p/v", VarQos::default())
                    .subscribe_event("p/e", EventQos::default())
                    .build(),
                log.clone(),
            )),
        );
        h.start_all();
        h.run_for_millis(500);
        let stats = h.container(NodeId(2)).unwrap().stats();
        let net = h.network().stats();
        (
            stats.var_samples_delivered,
            stats.events_delivered,
            net.datagrams_delivered,
            net.bytes_delivered,
        )
    };
    let a = run(99);
    let b = run(99);
    let c = run(100);
    assert_eq!(a, b, "same seed, same run");
    assert_ne!(a, c, "different seed, different packet trace");
}

#[test]
fn priority_scheduler_runs_events_before_variable_backlog() {
    // Queue 200 variable deliveries and 1 event in the same tick; with the
    // priority scheduler the event handler runs first even though it was
    // enqueued last. The FIFO ablation runs it last.
    let order_with = |kind: SchedulerKind| -> usize {
        let mut h = SimHarness::new(lan(18));
        let mut cfg = ContainerConfig::new("solo", NodeId(1));
        cfg.scheduler = kind;
        cfg.tick_budget = 512;
        h.add_container(cfg);

        let bv = VarPort::<u32>::new("b/v");
        let be = EventPort::<()>::new("b/e");
        let mut b = ServiceDescriptor::builder("blaster");
        b.provides_var(&bv, VarQos::aperiodic(ProtoDuration::from_secs(1))).provides_event(&be);
        let mut blaster = Scripted::new(b.build());
        blaster.on_start = Some(Box::new(|ctx| {
            ctx.set_timer(ProtoDuration::from_millis(10), None);
        }));
        let (vp, ep) = (bv.clone(), be.clone());
        blaster.on_timer = Some(Box::new(move |ctx, _| {
            for i in 0..200u32 {
                ctx.publish_to(&vp, i);
            }
            ctx.emit_to(&ep, ());
        }));
        h.add_service(NodeId(1), Box::new(blaster));

        let log = obs_log();
        h.add_service(
            NodeId(1),
            Box::new(Recorder::new(
                ServiceDescriptor::builder("listener")
                    .subscribe_variable("b/v", VarQos::default())
                    .subscribe_event("b/e", EventQos::default())
                    .build(),
                log.clone(),
            )),
        );
        h.start_all();
        h.run_for_millis(100);
        let obs = observations(&log);
        obs.iter().position(|(_, o)| matches!(o, Obs::Event(..))).expect("event delivered")
    };
    let pos_priority = order_with(SchedulerKind::Priority);
    let pos_fifo = order_with(SchedulerKind::Fifo);
    assert!(
        pos_priority < 5,
        "priority scheduler delivers the event almost immediately (pos {pos_priority})"
    );
    assert!(
        pos_fifo > 100,
        "fifo scheduler buries the event behind the variable backlog (pos {pos_fifo})"
    );
}

#[test]
fn required_function_availability_notices() {
    let mut h = SimHarness::new(lan(19));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));

    let log = obs_log();
    h.add_service(
        NodeId(1),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("needy").requires_function("late/fn").build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(100);
    // Initially unavailable.
    assert!(observations(&log)
        .iter()
        .any(|(_, o)| matches!(o, Obs::Provider(p) if p.contains("FunctionUnavailable"))));

    // Provider appears later.
    let mut late_b = ServiceDescriptor::builder("late");
    late_b.function::<(), ()>("late/fn");
    h.container_mut(NodeId(2))
        .unwrap()
        .add_service(Box::new(Scripted::new(late_b.build())))
        .unwrap();
    h.run_for_millis(200);
    assert!(observations(&log)
        .iter()
        .any(|(_, o)| matches!(o, Obs::Provider(p) if p.contains("FunctionAvailable"))));
}

// ---------------------------------------------------------------------------
// Typed service ports
// ---------------------------------------------------------------------------

mod typed {
    use super::*;
    use marea_core::{
        CallError, CallHandle, EventPort, FnPort, Service, ServiceContext, TimerId,
        TypedCallHandle, VarPort,
    };
    use marea_presentation::Name;
    use std::sync::{Arc, Mutex};

    /// A fully typed producer: variable, event and function all declared
    /// through ports returned by the builder.
    struct TypedBeacon {
        n: u64,
        count: VarPort<u64>,
        decade: EventPort<u32>,
        double: FnPort<(u32,), u32>,
    }

    impl TypedBeacon {
        fn new() -> Self {
            TypedBeacon {
                n: 0,
                count: VarPort::new("typed/count"),
                decade: EventPort::new("typed/decade"),
                double: FnPort::new("typed/double"),
            }
        }
    }

    impl Service for TypedBeacon {
        fn descriptor(&self) -> ServiceDescriptor {
            let mut b = ServiceDescriptor::builder("typed-beacon");
            b.provides_var(
                &self.count,
                VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
            )
            .provides_event(&self.decade)
            .provides_fn(&self.double);
            b.build()
        }
        fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
            ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
        }
        fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
            self.n += 1;
            ctx.publish_to(&self.count, self.n);
            if self.n.is_multiple_of(10) {
                ctx.emit_to(&self.decade, self.n as u32);
            }
        }
        fn on_call(
            &mut self,
            _ctx: &mut ServiceContext<'_>,
            function: &Name,
            args: &[Value],
        ) -> Result<Value, String> {
            if !self.double.matches(function) {
                return Err("unknown function".into());
            }
            let (x,) = self.double.decode_args(args).map_err(|e| e.to_string())?;
            Ok(self.double.encode_ret(x * 2))
        }
    }

    #[derive(Default)]
    struct Seen {
        counts: Vec<u64>,
        decades: Vec<u32>,
        doubled: Option<Result<u32, String>>,
    }

    /// A fully typed consumer: subscribes and decodes through the same
    /// port constructors, calls through a typed handle.
    struct TypedObserver {
        seen: Arc<Mutex<Seen>>,
        count: VarPort<u64>,
        decade: EventPort<u32>,
        double: FnPort<(u32,), u32>,
        pending: Option<TypedCallHandle<u32>>,
        called: bool,
    }

    impl TypedObserver {
        fn new(seen: Arc<Mutex<Seen>>) -> Self {
            TypedObserver {
                seen,
                count: VarPort::new("typed/count"),
                decade: EventPort::new("typed/decade"),
                double: FnPort::new("typed/double"),
                pending: None,
                called: false,
            }
        }
    }

    impl Service for TypedObserver {
        fn descriptor(&self) -> ServiceDescriptor {
            let mut b = ServiceDescriptor::builder("typed-observer");
            b.subscribe_to_var(&self.count, VarQos::default().with_initial().with_history(8))
                .subscribe_to_event(&self.decade, EventQos::default())
                .requires_fn(&self.double);
            b.build()
        }
        fn on_provider_change(
            &mut self,
            ctx: &mut ServiceContext<'_>,
            notice: &marea_core::ProviderNotice,
        ) {
            if let marea_core::ProviderNotice::FunctionAvailable(name) = notice {
                if self.double.matches(name) && !self.called {
                    self.called = true;
                    self.pending = Some(ctx.call_fn(&self.double, (21,)));
                }
            }
        }
        fn on_variable(
            &mut self,
            _ctx: &mut ServiceContext<'_>,
            name: &Name,
            value: &Value,
            _stamp: Micros,
        ) {
            if self.count.matches(name) {
                if let Ok(n) = self.count.decode(value) {
                    self.seen.lock().unwrap().counts.push(n);
                }
            }
        }
        fn on_event(
            &mut self,
            _ctx: &mut ServiceContext<'_>,
            name: &Name,
            value: Option<&Value>,
            _stamp: Micros,
        ) {
            if self.decade.matches(name) {
                if let Ok(d) = self.decade.decode(value) {
                    self.seen.lock().unwrap().decades.push(d);
                }
            }
        }
        fn on_reply(
            &mut self,
            _ctx: &mut ServiceContext<'_>,
            handle: CallHandle,
            result: Result<Value, CallError>,
        ) {
            if let Some(pending) = self.pending {
                if pending.matches(handle) {
                    self.seen.lock().unwrap().doubled =
                        Some(pending.decode(result).map_err(|e| e.to_string()));
                }
            }
        }
    }

    #[test]
    fn typed_ports_flow_end_to_end() {
        let mut h = SimHarness::new(lan(41));
        h.add_container(ContainerConfig::new("pub", NodeId(1)));
        h.add_container(ContainerConfig::new("sub", NodeId(2)));
        h.add_service(NodeId(1), Box::new(TypedBeacon::new()));
        let seen = Arc::new(Mutex::new(Seen::default()));
        h.add_service(NodeId(2), Box::new(TypedObserver::new(seen.clone())));
        h.start_all();
        h.run_for_millis(400);

        let seen = seen.lock().unwrap();
        assert!(seen.counts.len() >= 20, "typed samples flow: {}", seen.counts.len());
        assert!(seen.counts.windows(2).all(|w| w[0] < w[1]));
        assert!(!seen.decades.is_empty(), "typed events flow");
        assert_eq!(seen.doubled, Some(Ok(42)), "typed call round-trips");
        // The declared history contract keeps the ring at its depth.
        let hist = h.container(NodeId(2)).unwrap().var_qos_stats("typed/count").unwrap();
        assert_eq!(hist.history_len, 8, "ring filled to the declared depth");

        // No contract can be violated through typed ports.
        for node in [NodeId(1), NodeId(2)] {
            let s = h.container(node).unwrap().stats();
            assert_eq!(s.type_mismatches.total(), 0, "{node:?}: {s:?}");
        }
    }

    #[test]
    // marea-lint: allow(Q1): compat test exercises the deprecated dynamic layer on purpose
    #[allow(deprecated)]
    fn compat_publish_type_mismatch_is_counted() {
        let mut h = SimHarness::new(lan(42));
        h.add_container(ContainerConfig::new("pub", NodeId(1)));
        h.add_container(ContainerConfig::new("sub", NodeId(2)));

        // Descriptor declares U64; the dynamic compat publish sends F64.
        let mut publisher = Scripted::new(
            ServiceDescriptor::builder("badpub")
                // marea-lint: allow(Q1): compat test declares through the deprecated string API
                .variable_dynamic(
                    "bad/value",
                    DataType::U64,
                    ProtoDuration::from_millis(10),
                    ProtoDuration::from_millis(100),
                )
                .build(),
        );
        publisher.on_start = Some(Box::new(|ctx| {
            ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
        }));
        // marea-lint: allow(Q1): compat test publishes through the deprecated string API
        publisher.on_timer = Some(Box::new(|ctx, _| ctx.publish("bad/value", 1.5f64)));
        h.add_service(NodeId(1), Box::new(publisher));

        let log = obs_log();
        h.add_service(
            NodeId(2),
            Box::new(Recorder::new(
                ServiceDescriptor::builder("watcher")
                    .subscribe_variable("bad/value", VarQos::default())
                    .build(),
                log.clone(),
            )),
        );
        h.start_all();
        h.run_for_millis(200);

        let stats = h.container(NodeId(1)).unwrap().stats();
        assert!(stats.type_mismatches.vars >= 5, "publish-side mismatches counted: {stats:?}");
        assert_eq!(stats.vars_published, 0, "violating samples never hit the wire");
        assert!(
            !observations(&log).iter().any(|(_, o)| matches!(o, Obs::Var(..))),
            "nothing deliverable reached the subscriber"
        );
        assert!(
            h.container(NodeId(1)).unwrap().log_lines().any(|(_, l)| l.contains("violates schema")),
            "violation is logged"
        );
    }

    #[test]
    // marea-lint: allow(Q1): compat test exercises the deprecated dynamic layer on purpose
    #[allow(deprecated)]
    fn compat_event_and_call_mismatches_are_counted() {
        let mut h = SimHarness::new(lan(43));
        h.add_container(ContainerConfig::new("a", NodeId(1)));
        h.add_container(ContainerConfig::new("b", NodeId(2)));

        // Provider: event channel declared U32, function (U32) -> U32.
        let provider = Scripted::new(
            ServiceDescriptor::builder("provider")
                // marea-lint: allow(Q1): compat test declares through the deprecated string API
                .event_dynamic("p/ev", Some(DataType::U32))
                // marea-lint: allow(Q1): compat test declares through the deprecated string API
                .function_dynamic("p/fn", vec![DataType::U32], Some(DataType::U32))
                .build(),
        );
        h.add_service(NodeId(2), Box::new(provider));

        // Abuser: emits a Str on its own U32 channel, calls with a Bool
        // argument, and publishes an undeclared file resource.
        let mut abuser = Scripted::new(
            ServiceDescriptor::builder("abuser")
                // marea-lint: allow(Q1): compat test declares through the deprecated string API
                .event_dynamic("a/ev", Some(DataType::U32))
                .requires_function("p/fn")
                .build(),
        );
        abuser.on_start = Some(Box::new(|ctx| {
            ctx.set_timer(ProtoDuration::from_millis(50), None);
        }));
        abuser.on_timer = Some(Box::new(|ctx, _| {
            // marea-lint: allow(Q1): compat test abuses the deprecated emit/call paths on purpose
            ctx.emit("a/ev", Some(Value::Str("wrong".into())));
            // marea-lint: allow(Q1): compat test abuses the deprecated call path on purpose
            ctx.call("p/fn", vec![Value::Bool(true)]);
            ctx.publish_file("a/undeclared", Bytes::from_static(b"x"));
        }));
        let log = obs_log();
        let recorder_log = log.clone();
        abuser.on_reply = Some(Box::new(move |_, _, result| {
            recorder_log
                .lock()
                .unwrap()
                .push((Micros(0), Obs::Reply(0, result.map_err(|e| e.to_string()))));
        }));
        h.add_service(NodeId(1), Box::new(abuser));

        h.start_all();
        h.run_for_millis(300);

        let stats = h.container(NodeId(1)).unwrap().stats();
        assert!(stats.type_mismatches.events >= 1, "event payload mismatch counted: {stats:?}");
        assert!(stats.type_mismatches.calls >= 1, "argument mismatch counted: {stats:?}");
        assert!(stats.type_mismatches.files >= 1, "undeclared file counted: {stats:?}");
        // The caller observed the failure as a structured error.
        let replies: Vec<_> = observations(&log)
            .into_iter()
            .filter_map(|(_, o)| match o {
                Obs::Reply(_, r) => Some(r),
                _ => None,
            })
            .collect();
        assert!(
            replies.iter().any(|r| matches!(r, Err(e) if e.contains("bad arguments"))),
            "{replies:?}"
        );
    }
}
