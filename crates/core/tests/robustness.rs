//! Robustness and fault-injection tests: fragmentation paths, network
//! partitions with healing, and sustained lossy operation.

mod common;

use bytes::Bytes;
use common::{obs_log, observations, Obs, Recorder, Scripted};
use marea_core::{
    ContainerConfig, EventPort, EventQos, FnPort, NodeId, ProtoDuration, ServiceDescriptor,
    SimHarness, VarPort, VarQos,
};
use marea_netsim::{LinkConfig, NetConfig};
use marea_presentation::Value;

fn lan(seed: u64) -> NetConfig {
    NetConfig::default().with_seed(seed)
}

#[test]
fn events_larger_than_the_mtu_are_fragmented_and_delivered() {
    // 8 KiB payload over a 1500-byte MTU: the tagged EventData rides a
    // RelData envelope that must be fragmented and reassembled.
    let mut h = SimHarness::new(lan(21));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let blob = EventPort::<Vec<u8>>::new("big/blob");
    let mut b = ServiceDescriptor::builder("big");
    b.provides_event(&blob);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(50), None);
    }));
    let port = blob.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        ctx.emit_to(&port, payload);
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("sink")
                .subscribe_event("big/blob", EventQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(500);

    let events: Vec<Value> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(_, Some(v)) => Some(v),
            _ => None,
        })
        .collect();
    assert_eq!(events.len(), 1);
    let bytes = events[0].as_bytes().unwrap();
    assert_eq!(bytes.len(), 8192);
    assert!(bytes.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8), "bit-exact");
}

#[test]
fn oversized_events_survive_loss() {
    // Fragmented reliable payloads under 5% loss: the ARQ covers every
    // fragment of the envelope.
    let mut h = SimHarness::new(
        NetConfig::default().with_seed(22).with_default_link(LinkConfig::default().with_loss(0.05)),
    );
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let blob = EventPort::<Vec<u8>>::new("big/blob");
    let mut b = ServiceDescriptor::builder("big");
    b.provides_event(&blob);
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(100), Some(ProtoDuration::from_millis(100)));
    }));
    let mut sent = 0u32;
    let port = blob.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        if sent < 10 {
            sent += 1;
            ctx.emit_to(&port, vec![sent as u8; 4000]);
        }
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("sink")
                .subscribe_event("big/blob", EventQos::default())
                .build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(5_000);

    let sizes: Vec<u8> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(_, Some(v)) => v.as_bytes().map(|b| b[0]),
            _ => None,
        })
        .collect();
    assert_eq!(sizes, (1..=10u8).collect::<Vec<_>>(), "all 10 big events, in order");
}

#[test]
fn partition_heals_and_traffic_resumes() {
    let mut h = SimHarness::new(lan(23));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let pv = VarPort::<u64>::new("p/v");
    let mut b = ServiceDescriptor::builder("p");
    b.provides_var(
        &pv,
        VarQos::periodic(ProtoDuration::from_millis(20), ProtoDuration::from_millis(100)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(20), Some(ProtoDuration::from_millis(20)));
    }));
    let mut k = 0u64;
    let port = pv.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| {
        k += 1;
        ctx.publish_to(&port, k);
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("s").subscribe_variable("p/v", VarQos::default()).build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(1_000);
    let before = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert!(before > 30, "flowing before partition: {before}");

    // Partition: both sides eventually declare the other dead.
    h.network().set_partition(1, 2, true);
    h.run_for_millis(4_000);
    assert!(!h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)));
    assert!(!h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1)));
    let timeouts =
        observations(&log).iter().filter(|(_, o)| matches!(o, Obs::VarTimeout(_))).count();
    assert_eq!(timeouts, 1, "subscriber warned exactly once about the silent variable");

    // Heal: rediscovery through heartbeats + periodic announces, then the
    // subscription re-wires itself and samples flow again.
    h.network().set_partition(1, 2, false);
    h.run_for_millis(5_000);
    assert!(h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)));
    assert!(h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1)));
    let after = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert!(after > before + 50, "samples resumed after healing: before={before}, after={after}");
    // The subscriber saw the provider disappear and come back.
    let notices: Vec<String> = observations(&log)
        .into_iter()
        .filter_map(|(_, o)| match o {
            Obs::Provider(p) => Some(p),
            _ => None,
        })
        .collect();
    assert!(notices.iter().filter(|p| p.contains("VariableAvailable")).count() >= 2, "{notices:?}");
    assert!(notices.iter().any(|p| p.contains("VariableUnavailable")), "{notices:?}");
}

#[test]
fn sustained_10_percent_loss_mission_keeps_its_guarantees() {
    // A longer soak: variables keep flowing (some lost, fine), every event
    // arrives exactly once in order, every call gets an answer.
    let mut h = SimHarness::new(
        NetConfig::default().with_seed(24).with_default_link(LinkConfig::default().with_loss(0.10)),
    );
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));

    let wv = VarPort::<u64>::new("w/v");
    let we = EventPort::<u64>::new("w/e");
    let wping = FnPort::<(u64,), u64>::new("w/ping");
    let mut b = ServiceDescriptor::builder("worker");
    b.provides_var(
        &wv,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(50)),
    )
    .provides_event(&we)
    .provides_fn(&wping);
    let mut worker = Scripted::new(b.build());
    worker.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let mut k = 0u64;
    let (vp, ep) = (wv.clone(), we.clone());
    worker.on_timer = Some(Box::new(move |ctx, _| {
        k += 1;
        ctx.publish_to(&vp, k);
        if k.is_multiple_of(10) {
            ctx.emit_to(&ep, k / 10);
        }
    }));
    worker.on_call = Some(Box::new(|_ctx, _f, args| Ok(Value::U64(args[0].as_u64().unwrap() + 1))));
    h.add_service(NodeId(1), Box::new(worker));

    let log = obs_log();
    let mut client = Scripted::new(
        ServiceDescriptor::builder("client")
            .subscribe_variable("w/v", VarQos::default())
            .subscribe_event("w/e", EventQos::default())
            .requires_function("w/ping")
            .build(),
    );
    // Proper client pattern (like MissionControl): wait for the required
    // function to be resolvable before calling.
    let mut armed = false;
    client.on_provider_change = Some(Box::new(move |ctx, notice| {
        if matches!(notice, marea_core::ProviderNotice::FunctionAvailable(_)) && !armed {
            armed = true;
            ctx.set_timer(ProtoDuration::from_millis(100), Some(ProtoDuration::from_millis(100)));
        }
    }));
    let mut c = 0u64;
    let cport = wping.clone();
    client.on_timer = Some(Box::new(move |ctx, _| {
        c += 1;
        ctx.call_fn(&cport, (c,));
    }));
    let vlog = log.clone();
    client.on_variable = Some(Box::new(move |ctx, name, value| {
        vlog.lock().unwrap().push((ctx.now(), Obs::Var(name.to_string(), value.clone())));
    }));
    let elog = log.clone();
    client.on_event = Some(Box::new(move |ctx, name, value| {
        elog.lock().unwrap().push((ctx.now(), Obs::Event(name.to_string(), value.cloned())));
    }));
    let rlog = log.clone();
    client.on_reply = Some(Box::new(move |ctx, handle, result| {
        rlog.lock()
            .unwrap()
            .push((ctx.now(), Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string()))));
    }));
    h.add_service(NodeId(2), Box::new(client));
    h.start_all();
    h.run_for_millis(10_000);

    let obs = observations(&log);
    let vars = obs.iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    let events: Vec<u64> = obs
        .iter()
        .filter_map(|(_, o)| match o {
            Obs::Event(_, Some(v)) => v.as_u64(),
            _ => None,
        })
        .collect();
    let replies = obs.iter().filter(|(_, o)| matches!(o, Obs::Reply(_, Ok(_)))).count();
    let errors = obs.iter().filter(|(_, o)| matches!(o, Obs::Reply(_, Err(_)))).count();

    assert!(vars > 700, "best-effort stream flows despite 10% loss: {vars}");
    // Events: exactly once, in order, no gaps up to the last one seen.
    assert!(events.len() >= 90, "{}", events.len());
    assert!(events.windows(2).all(|w| w[1] == w[0] + 1), "gap-free: {events:?}");
    assert!(replies >= 85, "calls answered: {replies} ok, {errors} errors");
    assert_eq!(errors, 0, "no call gave up at this loss rate");
}

#[test]
fn node_crash_mid_file_transfer_leaves_receiver_consistent() {
    let mut h = SimHarness::new(lan(25));
    // Slow the link so the transfer takes a while.
    h.network().set_default_link(
        LinkConfig::default().with_bandwidth_bps(Some(2_000_000)), // 2 Mbit/s
    );
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let mut publisher =
        Scripted::new(ServiceDescriptor::builder("fp").file_resource("fp/blob").build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.publish_file("fp/blob", Bytes::from(vec![9u8; 2_000_000])); // ~8s at 2Mbit/s
    }));
    h.add_service(NodeId(1), Box::new(publisher));

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("sink").subscribe_file("fp/blob").build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(1_000); // transfer under way
    h.crash_node(NodeId(1));
    h.run_for_millis(5_000);

    // No completed file must ever surface from a dead transfer.
    let received =
        observations(&log).iter().filter(|(_, o)| matches!(o, Obs::FileData(..))).count();
    assert_eq!(received, 0, "partial transfer never surfaces as data");
    let sub = h.container(NodeId(2)).unwrap();
    assert!(!sub.directory().node_alive(NodeId(1)), "publisher declared dead");
    assert_eq!(sub.stats().files_received, 0);
}

#[test]
fn crashed_node_is_deregistered_from_the_netsim() {
    // Regression guard: `crash_node` must remove the netsim endpoint —
    // a crashed box that keeps receiving (and buffering) datagrams would
    // silently absorb multicast traffic and distort every stats-based
    // experiment.
    let mut h = SimHarness::new(lan(27));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));

    let pv = VarPort::<u64>::new("c/v");
    let mut b = ServiceDescriptor::builder("c");
    b.provides_var(
        &pv,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let port = pv.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| ctx.publish_to(&port, 1)));
    h.add_service(NodeId(1), Box::new(publisher));
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("s").subscribe_variable("c/v", VarQos::default()).build(),
            obs_log(),
        )),
    );
    h.start_all();
    h.run_for_millis(500);
    assert!(h.network().has_node(2));
    let before = h.network().stats().node(2).delivered;
    assert!(before > 0, "traffic flowed to node 2 first");

    h.crash_node(NodeId(2));
    assert!(!h.network().has_node(2), "crash must deregister the netsim node");
    h.run_for_millis(1_000);
    let after = h.network().stats().node(2).delivered;
    assert_eq!(after, before, "a crashed node receives nothing more");
}

#[test]
fn publisher_restart_resumes_fresh_samples_within_rto() {
    // Crash a publisher, restart it from its factory blueprint, and
    // assert the subscriber resumes *fresh* (non-stale) values and the
    // directory re-converges within the recovery-time objective.
    let mut h = SimHarness::new(lan(28));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));

    let pv = VarPort::<u64>::new("r/v");
    let make_publisher = {
        let pv = pv.clone();
        move || {
            let mut b = ServiceDescriptor::builder("r");
            b.provides_var(
                &pv,
                VarQos::periodic(ProtoDuration::from_millis(20), ProtoDuration::from_millis(100)),
            );
            let mut publisher = Scripted::new(b.build());
            publisher.on_start = Some(Box::new(|ctx| {
                ctx.set_timer(ProtoDuration::from_millis(20), Some(ProtoDuration::from_millis(20)));
            }));
            let mut k = 0u64;
            let port = pv.clone();
            publisher.on_timer = Some(Box::new(move |ctx, _| {
                k += 1;
                ctx.publish_to(&port, k);
            }));
            Box::new(publisher) as Box<dyn marea_core::Service>
        }
    };
    h.add_service_factory(NodeId(1), make_publisher);

    let log = obs_log();
    h.add_service(
        NodeId(2),
        Box::new(Recorder::new(
            ServiceDescriptor::builder("s").subscribe_variable("r/v", VarQos::default()).build(),
            log.clone(),
        )),
    );
    h.start_all();
    h.run_for_millis(1_000);
    let before = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert!(before > 30, "flowing before the crash: {before}");

    h.crash_node(NodeId(1));
    h.run_for_millis(3_000); // node timeout passes; subscriber unbinds
    assert!(!h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1)));
    let during = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();

    assert!(h.restart_node(NodeId(1)), "blueprint restart");
    let restarted_at = h.now();
    let rto = ProtoDuration::from_secs(4);
    let recovered = h.run_until(
        |h| {
            h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1))
                && h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2))
        },
        rto,
    );
    assert!(recovered, "directory re-converged within the RTO");
    let convergence = h.now().saturating_since(restarted_at);
    assert!(convergence <= rto, "took {}ms", convergence.as_millis());

    // Fresh samples resume: every post-restart sample was produced by the
    // new incarnation (its stamp is newer than the restart), i.e. nothing
    // stale from the first life is replayed.
    h.run_for_millis(1_000);
    let obs = observations(&log);
    let fresh: Vec<_> =
        obs.iter().filter(|(t, o)| matches!(o, Obs::Var(..)) && *t > restarted_at).collect();
    assert!(fresh.len() > 20, "samples resumed after restart: {}", fresh.len());
    let total = obs.iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert_eq!(total, during + fresh.len(), "no samples from the dead window surfaced late");
    // And the subscriber saw the provider go and come back.
    let notices: Vec<String> = obs
        .iter()
        .filter_map(|(_, o)| match o {
            Obs::Provider(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    assert!(notices.iter().any(|p| p.contains("VariableUnavailable")), "{notices:?}");
    assert!(notices.iter().filter(|p| p.contains("VariableAvailable")).count() >= 2, "{notices:?}");
}

#[test]
fn service_added_and_stopped_at_runtime() {
    let mut h = SimHarness::new(lan(26));
    h.add_container(ContainerConfig::new("a", NodeId(1)));
    h.add_container(ContainerConfig::new("b", NodeId(2)));
    h.start_all();
    h.run_for_millis(50);

    // Hot-add a publisher on a running container.
    let hot = VarPort::<u8>::new("hot/v");
    let mut b = ServiceDescriptor::builder("hot");
    b.provides_var(
        &hot,
        VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
    );
    let mut publisher = Scripted::new(b.build());
    publisher.on_start = Some(Box::new(|ctx| {
        ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
    }));
    let port = hot.clone();
    publisher.on_timer = Some(Box::new(move |ctx, _| ctx.publish_to(&port, 1u8)));
    h.container_mut(NodeId(1)).unwrap().add_service(Box::new(publisher)).unwrap();

    let log = obs_log();
    h.container_mut(NodeId(2))
        .unwrap()
        .add_service(Box::new(Recorder::new(
            ServiceDescriptor::builder("watch")
                .subscribe_variable("hot/v", VarQos::default())
                .build(),
            log.clone(),
        )))
        .unwrap();
    h.run_for_millis(500);
    let n = observations(&log).iter().filter(|(_, o)| matches!(o, Obs::Var(..))).count();
    assert!(n > 20, "hot-added services wire up: {n}");

    // Graceful stop of the publisher's node propagates.
    h.stop_node(NodeId(1));
    h.run_for_millis(100);
    assert!(!h.container(NodeId(2)).unwrap().directory().node_alive(NodeId(1)));
}

#[test]
fn hello_bursts_are_debounced_to_one_pending_reannounce() {
    // Regression: frames from a rediscovered node used to reset the
    // announce clock unconditionally, so a burst of Hellos (flapping
    // radio, partition heal) forced one full-catalogue broadcast *per
    // frame*. The forced re-announce is now debounced to at most one
    // immediate broadcast plus one pending flush per announce period, and
    // the steady-state periodic slot carries a digest, not the catalogue.
    use marea_core::ServiceContainer;
    use marea_presentation::Name;
    use marea_protocol::messages::Message;
    use marea_protocol::{Frame, GroupId, Micros, NodeId};
    use marea_transport::{InProcHub, Transport, TransportDestination};

    let hub = InProcHub::new();
    let transport = hub.attach(1);
    let mut probe = hub.attach(2);
    probe.join(GroupId::CONTROL.0);

    let mut cfg = ContainerConfig::new("uav", NodeId(1));
    cfg.announce_period = ProtoDuration::from_millis(200);
    let mut c = ServiceContainer::new(cfg, Box::new(transport));
    c.start(Micros(0));
    c.tick(Micros(0));
    while probe.recv().is_some() {} // drop startup traffic

    // Burst: five Hellos from the same peer inside one announce period.
    for i in 0..5u64 {
        let hello =
            Message::Hello { container: Name::new("peer").unwrap(), incarnation: 1, fec_cap: 0 };
        probe.send(TransportDestination::Node(1), hello.into_frame(NodeId(2)).encode()).unwrap();
        c.tick(Micros(1_000 * (i + 1)));
    }
    let mut in_burst = 0usize;
    while let Some((_, bytes)) = probe.recv() {
        let frame = Frame::decode(&bytes).unwrap();
        if matches!(Message::from_frame(&frame), Ok(Message::Announce { .. })) {
            in_burst += 1;
        }
    }
    assert_eq!(in_burst, 1, "only the first Hello forces an immediate re-announce");

    // The collapsed repeats flush as exactly one more full announce once
    // the period elapses; afterwards the periodic slot is digest-only.
    for ms in (10..=600).step_by(10) {
        c.tick(Micros(ms * 1_000));
    }
    let (mut full, mut digests) = (0usize, 0usize);
    while let Some((_, bytes)) = probe.recv() {
        let frame = Frame::decode(&bytes).unwrap();
        match Message::from_frame(&frame) {
            Ok(Message::Announce { .. }) => full += 1,
            Ok(Message::AnnounceDigest { .. }) => digests += 1,
            _ => {}
        }
    }
    assert_eq!(full, 1, "repeats collapse into one pending flush");
    assert!(digests >= 1, "steady-state announce slot is digest gossip");
}
