//! Shared test services: a Recorder that logs every handler invocation and
//! a couple of tiny providers.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use marea_core::{
    CallError, CallHandle, FileEvent, Micros, ProviderNotice, Service, ServiceContext,
    ServiceDescriptor, TimerId,
};
use marea_presentation::{Name, Value};

/// Everything a [`Recorder`] observes.
#[derive(Debug, Clone, PartialEq)]
#[allow(dead_code)] // variants are matched per-test
pub enum Obs {
    Started,
    Stopped,
    Var(String, Value),
    VarTimeout(String),
    Event(String, Option<Value>),
    Reply(u64, Result<Value, String>),
    File(String),
    FileData(String, u32, Bytes),
    Provider(String),
    Timer(u64),
}

/// Shared observation log.
pub type ObsLog = Arc<Mutex<Vec<(Micros, Obs)>>>;

/// Creates an empty log.
pub fn obs_log() -> ObsLog {
    Arc::new(Mutex::new(Vec::new()))
}

/// Snapshot helper.
pub fn observations(log: &ObsLog) -> Vec<(Micros, Obs)> {
    log.lock().unwrap().clone()
}

/// A service that records every handler invocation into a shared log.
/// Its descriptor is injected, so tests can subscribe it to anything.
pub struct Recorder {
    descriptor: ServiceDescriptor,
    log: ObsLog,
}

impl Recorder {
    pub fn new(descriptor: ServiceDescriptor, log: ObsLog) -> Self {
        Recorder { descriptor, log }
    }

    fn push(&self, ctx: &ServiceContext<'_>, obs: Obs) {
        self.log.lock().unwrap().push((ctx.now(), obs));
    }
}

impl Service for Recorder {
    fn descriptor(&self) -> ServiceDescriptor {
        self.descriptor.clone()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        self.push(ctx, Obs::Started);
    }

    fn on_stop(&mut self, ctx: &mut ServiceContext<'_>) {
        self.push(ctx, Obs::Stopped);
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        self.push(ctx, Obs::Var(name.to_string(), value.clone()));
    }

    fn on_variable_timeout(&mut self, ctx: &mut ServiceContext<'_>, name: &Name) {
        self.push(ctx, Obs::VarTimeout(name.to_string()));
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        self.push(ctx, Obs::Event(name.to_string(), value.cloned()));
    }

    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        self.push(ctx, Obs::Reply(handle.0 .0, result.map_err(|e| e.to_string())));
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        match event {
            FileEvent::Received { resource, revision, data } => {
                let obs = Obs::FileData(resource.to_string(), *revision, data.clone());
                self.push(ctx, obs);
            }
            other => {
                let tag = match other {
                    FileEvent::Announced { resource, .. } => format!("announced:{resource}"),
                    FileEvent::DistributionComplete { resource, .. } => {
                        format!("distributed:{resource}")
                    }
                    FileEvent::Received { .. } => unreachable!(),
                };
                self.push(ctx, Obs::File(tag));
            }
        }
    }

    fn on_provider_change(&mut self, ctx: &mut ServiceContext<'_>, notice: &ProviderNotice) {
        self.push(ctx, Obs::Provider(format!("{notice:?}")));
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, id: TimerId) {
        self.push(ctx, Obs::Timer(id.0));
    }
}

/// A closure-driven service: descriptor plus per-hook callbacks supplied by
/// the test. Only the hooks a test needs are set.
#[allow(clippy::type_complexity)]
pub struct Scripted {
    pub descriptor: ServiceDescriptor,
    pub on_start: Option<Box<dyn FnMut(&mut ServiceContext<'_>) + Send>>,
    pub on_timer: Option<Box<dyn FnMut(&mut ServiceContext<'_>, TimerId) + Send>>,
    pub on_event: Option<Box<dyn FnMut(&mut ServiceContext<'_>, &Name, Option<&Value>) + Send>>,
    pub on_call: Option<
        Box<dyn FnMut(&mut ServiceContext<'_>, &Name, &[Value]) -> Result<Value, String> + Send>,
    >,
    pub on_variable: Option<Box<dyn FnMut(&mut ServiceContext<'_>, &Name, &Value) + Send>>,
    pub on_file_event: Option<Box<dyn FnMut(&mut ServiceContext<'_>, &FileEvent) + Send>>,
    pub on_reply: Option<
        Box<dyn FnMut(&mut ServiceContext<'_>, CallHandle, Result<Value, CallError>) + Send>,
    >,
    pub on_provider_change: Option<Box<dyn FnMut(&mut ServiceContext<'_>, &ProviderNotice) + Send>>,
}

impl Scripted {
    pub fn new(descriptor: ServiceDescriptor) -> Self {
        Scripted {
            descriptor,
            on_start: None,
            on_timer: None,
            on_event: None,
            on_call: None,
            on_variable: None,
            on_file_event: None,
            on_reply: None,
            on_provider_change: None,
        }
    }
}

impl Service for Scripted {
    fn descriptor(&self) -> ServiceDescriptor {
        self.descriptor.clone()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        if let Some(f) = &mut self.on_start {
            f(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, id: TimerId) {
        if let Some(f) = &mut self.on_timer {
            f(ctx, id);
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        if let Some(f) = &mut self.on_event {
            f(ctx, name, value);
        }
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        match &mut self.on_call {
            Some(f) => f(ctx, function, args),
            None => Err("no handler".into()),
        }
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if let Some(f) = &mut self.on_variable {
            f(ctx, name, value);
        }
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        if let Some(f) = &mut self.on_file_event {
            f(ctx, event);
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        if let Some(f) = &mut self.on_reply {
            f(ctx, handle, result);
        }
    }

    fn on_provider_change(&mut self, ctx: &mut ServiceContext<'_>, notice: &ProviderNotice) {
        if let Some(f) = &mut self.on_provider_change {
            f(ctx, notice);
        }
    }
}
