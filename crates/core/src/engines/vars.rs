//! Variable primitive bookkeeping (paper §4.1).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};

use bytes::Bytes;

use marea_presentation::{DataType, Name, Value};
use marea_protocol::{Micros, NodeId, ServiceId};

use crate::qos::VarQos;

/// Publisher-side state of one declared variable.
#[derive(Debug)]
pub(crate) struct PublishedVar {
    /// Declaring local service (per-node sequence).
    pub owner_seq: u32,
    /// Declared schema.
    pub ty: DataType,
    /// Validity window in µs.
    pub validity_us: u64,
    /// Next sample sequence number.
    pub seq: u64,
    /// Last published sample (encoded payload, production stamp) — served
    /// to new subscribers as the guaranteed initial value while still
    /// valid.
    pub last: Option<(Bytes, Micros)>,
    /// Remote nodes that subscribed (bookkeeping/diagnostics only; samples
    /// go to the multicast group regardless).
    pub remote_subscribers: BTreeSet<NodeId>,
}

impl PublishedVar {
    /// `true` while the last sample is within its validity window.
    pub fn last_is_valid(&self, now: Micros) -> bool {
        match &self.last {
            Some((_, stamp)) => now.saturating_since(*stamp).as_micros() <= self.validity_us,
            None => false,
        }
    }
}

/// Subscriber-side state of one variable, shaped by the merged
/// [`VarQos`] contracts of every local subscriber.
#[derive(Debug)]
pub(crate) struct SubscribedVar {
    /// Local services subscribed (service sequences).
    pub services: Vec<u32>,
    /// Whether any subscriber asked for the guaranteed initial value.
    pub need_initial: bool,
    /// Loss deadline in nominal periods (tightest contract wins).
    pub deadline_periods: u32,
    /// History-ring capacity (deepest contract wins).
    pub history_cap: usize,
    /// The retained samples, oldest first (production stamp, decoded
    /// value) — read through
    /// [`ServiceContext::history`](crate::ServiceContext::history).
    pub history: VecDeque<(Micros, Value)>,
    /// Loss deadlines missed on this subscription.
    pub deadline_misses: u64,
    /// Stale samples dropped on this subscription.
    pub stale_drops: u64,
    /// Resolved provider, if discovery succeeded.
    pub provider: Option<ServiceId>,
    /// Expected period learned from the provider's announcement (µs).
    pub period_us: u64,
    /// Validity window learned from the announcement (µs).
    pub validity_us: u64,
    /// Sample schema learned from the announcement.
    pub ty: Option<DataType>,
    /// Last sample receive time.
    pub last_rx: Option<Micros>,
    /// Time the subscription was wired (deadline baseline before the first
    /// sample).
    pub since: Option<Micros>,
    /// Highest sample sequence seen.
    pub last_seq: Option<u64>,
    /// A timeout warning has been raised and no sample seen since.
    pub timed_out: bool,
    /// SubscribeVar was sent to the current provider.
    pub subscribe_sent: bool,
    /// This channel has a live entry on the engine's deadline heap.
    pub deadline_armed: bool,
}

impl SubscribedVar {
    pub fn new(qos: &VarQos) -> Self {
        SubscribedVar {
            services: Vec::new(),
            need_initial: qos.need_initial,
            deadline_periods: qos.deadline_periods,
            history_cap: qos.history.max(1),
            history: VecDeque::new(),
            deadline_misses: 0,
            stale_drops: 0,
            provider: None,
            period_us: 0,
            validity_us: 0,
            ty: None,
            last_rx: None,
            since: None,
            last_seq: None,
            timed_out: false,
            subscribe_sent: false,
            deadline_armed: false,
        }
    }

    /// Merges another subscriber's contract into the channel state: any
    /// initial-value request sticks, the tightest loss deadline wins, the
    /// deepest history wins.
    pub fn merge_qos(&mut self, qos: &VarQos) {
        self.need_initial |= qos.need_initial;
        self.deadline_periods = self.deadline_periods.min(qos.deadline_periods.max(1));
        self.history_cap = self.history_cap.max(qos.history);
    }

    /// Deadline used for the loss warning: `deadline_periods` nominal
    /// periods without a sample ("the service container will warn of this
    /// timeout circumstance to the affected services", §4.1).
    pub fn deadline_us(&self) -> Option<u64> {
        if self.period_us == 0 {
            None // aperiodic variables have no deadline
        } else {
            Some(self.period_us.saturating_mul(u64::from(self.deadline_periods)))
        }
    }

    /// The earliest instant at which [`SubscribedVar::deadline_missed`]
    /// can turn true (the comparison there is strict, hence the +1µs), or
    /// `None` while no deadline applies — unbound, already warned, or
    /// aperiodic.
    pub fn deadline_due(&self) -> Option<Micros> {
        if self.timed_out || self.provider.is_none() {
            return None;
        }
        let deadline = self.deadline_us()?;
        let anchor = match (self.last_rx, self.since) {
            (Some(rx), _) => rx,
            (None, Some(s)) => s,
            (None, None) => return None,
        };
        Some(Micros(anchor.as_micros().saturating_add(deadline).saturating_add(1)))
    }

    /// Checks whether the deadline has been missed at `now`.
    pub fn deadline_missed(&self, now: Micros) -> bool {
        if self.timed_out || self.provider.is_none() {
            return false;
        }
        let Some(deadline) = self.deadline_us() else { return false };
        let anchor = match (self.last_rx, self.since) {
            (Some(rx), _) => rx,
            (None, Some(s)) => s,
            (None, None) => return false,
        };
        now.saturating_since(anchor).as_micros() > deadline
    }

    /// Records a sample arrival; returns `false` when the sample must be
    /// dropped as old (sequence regression / duplicate).
    pub fn accept(&mut self, seq: u64, now: Micros) -> bool {
        if let Some(last) = self.last_seq {
            if seq <= last {
                return false;
            }
        }
        self.last_seq = Some(seq);
        self.last_rx = Some(now);
        self.timed_out = false;
        true
    }

    /// Retains an accepted sample in the history ring (oldest evicted at
    /// capacity).
    pub fn record(&mut self, stamp: Micros, value: Value) {
        while self.history.len() >= self.history_cap {
            self.history.pop_front();
        }
        self.history.push_back((stamp, value));
    }

    /// Resets provider binding (provider lost); subscription will be
    /// re-resolved against the directory.
    pub fn unbind(&mut self) {
        self.provider = None;
        self.subscribe_sent = false;
        self.ty = None;
        // Do not clear last_seq: a *new* provider instance restarts
        // numbering, so clear it after rebinding instead. The history ring
        // survives rebinds on purpose — retained samples stay readable
        // while the provider fails over.
    }

    /// Binds to a (new) provider.
    pub fn bind(
        &mut self,
        provider: ServiceId,
        period_us: u64,
        validity_us: u64,
        ty: DataType,
        now: Micros,
    ) {
        let changed = self.provider != Some(provider);
        self.provider = Some(provider);
        self.period_us = period_us;
        self.validity_us = validity_us;
        self.ty = Some(ty);
        self.since = Some(now);
        self.timed_out = false;
        if changed {
            self.last_seq = None; // new publisher numbers from scratch
        }
    }
}

/// All variable state of one container.
#[derive(Debug, Default)]
pub(crate) struct VarEngine {
    pub published: HashMap<Name, PublishedVar>,
    pub subscribed: HashMap<Name, SubscribedVar>,
    /// Samples whose value disagreed with the declared schema (see
    /// [`TypeMismatchStats::vars`](crate::stats::TypeMismatchStats)).
    pub type_mismatches: u64,
    /// Due-date heap over `(deadline_due, name)`: the per-tick deadline
    /// sweep peeks the earliest entry instead of walking every channel.
    /// At most one live entry per channel ([`SubscribedVar::deadline_armed`]);
    /// a popped entry whose channel got a sample since re-arms at the
    /// pushed-back deadline.
    deadline_heap: BinaryHeap<Reverse<(Micros, Name)>>,
}

impl VarEngine {
    /// Ensures `name`'s loss deadline is queued on the due-date heap.
    /// Call after any event that (re)starts the deadline clock: a bind or
    /// an accepted sample. Idempotent while already armed.
    pub fn arm_deadline(&mut self, name: &Name) {
        let Some(sub) = self.subscribed.get_mut(name) else { return };
        if sub.deadline_armed {
            return;
        }
        if let Some(due) = sub.deadline_due() {
            sub.deadline_armed = true;
            self.deadline_heap.push(Reverse((due, name.clone())));
        }
    }

    /// Variables whose deadline has been missed at `now` (marks them
    /// warned and counts the miss against the subscription's contract).
    pub fn sweep_deadlines(&mut self, now: Micros) -> Vec<Name> {
        let mut out = Vec::new();
        while let Some(Reverse((due, _))) = self.deadline_heap.peek() {
            if *due > now {
                break;
            }
            let Some(Reverse((_, name))) = self.deadline_heap.pop() else { break };
            let Some(sub) = self.subscribed.get_mut(&name) else { continue };
            sub.deadline_armed = false;
            if sub.deadline_missed(now) {
                sub.timed_out = true;
                sub.deadline_misses += 1;
                out.push(name);
            } else if let Some(due) = sub.deadline_due() {
                // A sample (or rebind) moved the anchor since this entry
                // was queued: re-arm at the pushed-back deadline.
                sub.deadline_armed = true;
                self.deadline_heap.push(Reverse((due, name)));
            }
        }
        out.sort();
        out
    }

    /// Total stale drops over every subscription.
    pub fn total_stale_drops(&self) -> u64 {
        self.subscribed.values().map(|s| s.stale_drops).sum()
    }

    /// Total deadline misses over every subscription.
    pub fn total_deadline_misses(&self) -> u64 {
        self.subscribed.values().map(|s| s.deadline_misses).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub() -> SubscribedVar {
        let mut s = SubscribedVar::new(&VarQos::default().with_initial());
        s.bind(ServiceId::new(NodeId(2), 1), 50_000, 200_000, DataType::F64, Micros::ZERO);
        s
    }

    #[test]
    fn sequence_regression_dropped() {
        let mut s = sub();
        assert!(s.accept(5, Micros(1)));
        assert!(!s.accept(5, Micros(2)), "duplicate");
        assert!(!s.accept(3, Micros(3)), "regression");
        assert!(s.accept(6, Micros(4)));
    }

    #[test]
    fn deadline_uses_contract_periods() {
        let mut s = sub();
        assert!(!s.deadline_missed(Micros(100_000)), "2 periods: fine");
        assert!(s.deadline_missed(Micros(200_000)), "4 periods: missed");
        s.timed_out = true;
        assert!(!s.deadline_missed(Micros(300_000)), "warn once");
        // A new sample resets the warning.
        assert!(s.accept(1, Micros(300_000)));
        assert!(!s.timed_out);

        // A tighter contract shortens the deadline.
        let mut tight = SubscribedVar::new(&VarQos::default().with_deadline_periods(1));
        tight.bind(ServiceId::new(NodeId(2), 1), 50_000, 200_000, DataType::F64, Micros::ZERO);
        assert_eq!(tight.deadline_us(), Some(50_000));
        assert!(tight.deadline_missed(Micros(60_000)), "1 period + slack: missed");
    }

    #[test]
    fn aperiodic_has_no_deadline() {
        let mut s = SubscribedVar::new(&VarQos::default());
        s.bind(ServiceId::new(NodeId(2), 1), 0, 0, DataType::Bool, Micros::ZERO);
        assert_eq!(s.deadline_us(), None);
        assert!(!s.deadline_missed(Micros::from_secs(100)));
    }

    #[test]
    fn merged_qos_takes_strictest_contract() {
        let mut s = SubscribedVar::new(&VarQos::default());
        assert!(!s.need_initial);
        s.merge_qos(&VarQos::default().with_initial().with_history(8).with_deadline_periods(2));
        assert!(s.need_initial, "any initial request sticks");
        assert_eq!(s.deadline_periods, 2, "tightest deadline wins");
        assert_eq!(s.history_cap, 8, "deepest history wins");
        s.merge_qos(&VarQos::default().with_history(2).with_deadline_periods(5));
        assert_eq!(s.deadline_periods, 2);
        assert_eq!(s.history_cap, 8);
    }

    #[test]
    fn history_ring_evicts_oldest() {
        let mut s = SubscribedVar::new(&VarQos::default().with_history(3));
        for i in 0..5u64 {
            s.record(Micros(i), Value::U64(i));
        }
        let kept: Vec<u64> = s.history.iter().filter_map(|(_, v)| v.as_u64()).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted, order preserved");
        assert_eq!(s.history.len(), 3);
    }

    #[test]
    fn rebind_resets_sequence_tracking() {
        let mut s = sub();
        s.accept(100, Micros(1));
        s.unbind();
        s.bind(ServiceId::new(NodeId(3), 1), 50_000, 200_000, DataType::F64, Micros(2));
        assert!(s.accept(1, Micros(3)), "new provider numbers from scratch");
    }

    #[test]
    fn published_validity() {
        let mut p = PublishedVar {
            owner_seq: 1,
            ty: DataType::F64,
            validity_us: 100_000,
            seq: 0,
            last: None,
            remote_subscribers: BTreeSet::new(),
        };
        assert!(!p.last_is_valid(Micros::ZERO));
        p.last = Some((Bytes::from_static(b"x"), Micros(50_000)));
        assert!(p.last_is_valid(Micros(100_000)));
        assert!(!p.last_is_valid(Micros(200_000)));
    }

    #[test]
    fn sweep_marks_counts_and_sorts() {
        let mut e = VarEngine::default();
        let mut a = sub();
        a.since = Some(Micros::ZERO);
        let mut b = sub();
        b.since = Some(Micros::ZERO);
        e.subscribed.insert(Name::new("zvar").unwrap(), a);
        e.subscribed.insert(Name::new("avar").unwrap(), b);
        e.arm_deadline(&Name::new("zvar").unwrap());
        e.arm_deadline(&Name::new("avar").unwrap());
        let warned = e.sweep_deadlines(Micros::from_secs(1));
        assert_eq!(warned.len(), 2);
        assert!(warned[0] < warned[1]);
        assert!(e.sweep_deadlines(Micros::from_secs(2)).is_empty(), "warn once");
        assert_eq!(e.total_deadline_misses(), 2, "misses counted per subscription");
    }

    #[test]
    fn deadline_heap_rearms_refreshed_channels() {
        let mut e = VarEngine::default();
        let mut a = sub();
        a.since = Some(Micros::ZERO);
        let n = Name::new("v").unwrap();
        e.subscribed.insert(n.clone(), a);
        e.arm_deadline(&n);
        assert!(e.subscribed[&n].deadline_armed);
        // A sample at 90ms makes the t=0 heap entry (due ~150ms: 3 nominal
        // periods of 50ms) stale.
        e.subscribed.get_mut(&n).unwrap().accept(1, Micros(90_000));
        assert!(e.sweep_deadlines(Micros(160_000)).is_empty(), "refreshed: no miss");
        assert!(e.subscribed[&n].deadline_armed, "stale entry re-armed itself");
        // Silent since 90ms: the re-armed entry fires (deadline 240ms).
        assert_eq!(e.sweep_deadlines(Micros(250_000)), vec![n.clone()]);
        assert!(!e.subscribed[&n].deadline_armed, "warned channels leave the heap");
    }
}
