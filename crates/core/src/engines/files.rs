//! File transfer bookkeeping (paper §4.4), wrapping the protocol-level
//! MFTP state machines with container concerns: interests, announce
//! caching, transfer-to-resource mapping and the same-node bypass.

use std::collections::HashMap;

use marea_presentation::Name;
use marea_protocol::mftp::{FileReceiver, FileSender};
use marea_protocol::{Message, Micros, NodeId, TransferId};

/// Publisher-side transfer session state.
#[derive(Debug)]
pub(crate) struct OutgoingFile {
    /// The protocol state machine.
    pub sender: FileSender,
    /// Local service owning the resource.
    pub owner_seq: u32,
    /// Last completion-query emission.
    pub last_query_at: Option<Micros>,
    /// `DistributionComplete` already delivered for the current revision.
    pub complete_notified: bool,
}

/// Subscriber-side interest in a resource.
#[derive(Debug, Default)]
pub(crate) struct FileInterest {
    /// Local services interested.
    pub services: Vec<u32>,
    /// Active receiver (None until an announce is heard).
    pub receiver: Option<FileReceiver>,
    /// Node publishing the resource (source of the announce).
    pub publisher: Option<NodeId>,
    /// Highest revision fully received.
    pub completed_revision: Option<u32>,
}

/// All file-transfer state of one container.
#[derive(Debug, Default)]
pub(crate) struct FileEngine {
    /// Resources published from this node, by name.
    pub outgoing: HashMap<Name, OutgoingFile>,
    /// Resources this node wants, by name.
    pub interests: HashMap<Name, FileInterest>,
    /// Last announce heard per resource (supports subscribe-after-announce
    /// and late join).
    pub seen_announces: HashMap<Name, (NodeId, Message)>,
    /// Transfer-id → resource-name index for chunk routing.
    pub transfer_index: HashMap<TransferId, Name>,
    /// Next transfer session id.
    pub next_transfer: u64,
    /// Publications referencing undeclared resources (see
    /// [`TypeMismatchStats::files`](crate::stats::TypeMismatchStats)).
    pub type_mismatches: u64,
}

impl FileEngine {
    /// Allocates a transfer id.
    pub fn alloc_transfer(&mut self) -> TransferId {
        self.next_transfer += 1;
        TransferId(self.next_transfer)
    }

    /// Resource name for a transfer id, if known.
    pub fn resource_of(&self, transfer: TransferId) -> Option<&Name> {
        self.transfer_index.get(&transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_ids_are_unique_and_indexed() {
        let mut e = FileEngine::default();
        let a = e.alloc_transfer();
        let b = e.alloc_transfer();
        assert_ne!(a, b);
        let name = Name::new("img").unwrap();
        e.transfer_index.insert(a, name.clone());
        assert_eq!(e.resource_of(a), Some(&name));
        assert_eq!(e.resource_of(b), None);
    }
}
