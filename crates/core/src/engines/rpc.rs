//! Remote invocation bookkeeping and argument marshalling (paper §4.3).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bytes::{Bytes, BytesMut};

use marea_encoding::{Codec, WireReader, WireWriter};
use marea_presentation::{Name, Value};
use marea_protocol::messages::FunctionSig;
use marea_protocol::{Micros, ProtoDuration, RequestId, ServiceId};

use crate::error::CallError;
use crate::service::CallPolicy;
use crate::trace::TraceId;

/// A function a local service exposes.
#[derive(Debug)]
pub(crate) struct LocalFunction {
    /// Owning local service.
    pub owner_seq: u32,
    /// Declared signature.
    pub sig: FunctionSig,
}

/// An in-flight outgoing call, carrying its resolved
/// [`CallOptions`](crate::CallOptions) contract.
#[derive(Debug)]
pub(crate) struct PendingCall {
    /// Local service awaiting the reply.
    pub caller_seq: u32,
    /// Function name (for failover re-resolution).
    pub function: Name,
    /// Decoded arguments, kept so a failover can re-marshal.
    pub args: Vec<Value>,
    /// Current target instance.
    pub target: ServiceId,
    /// Expected return type (from the provider's signature).
    pub returns: Option<marea_presentation::DataType>,
    /// Reply deadline of the current attempt.
    pub deadline: Micros,
    /// Per-attempt reply deadline from the caller's contract (container
    /// default when the caller did not override it).
    pub attempt_timeout: ProtoDuration,
    /// Providers tried so far (including current).
    pub attempts: u32,
    /// Total providers the caller's retry budget allows.
    pub max_attempts: u32,
    /// Provider selection policy.
    pub policy: CallPolicy,
    /// When the first attempt was dispatched (feeds the call-RTT
    /// histogram when the reply lands).
    pub started_at: Micros,
    /// Causal id minted at issue time, echoed by the provider's reply.
    pub trace: TraceId,
}

/// A required-function watch (paper §4.3: checked at initialization,
/// re-checked as the directory changes).
#[derive(Debug, Default)]
pub(crate) struct RequiredFn {
    /// Local services that declared the requirement.
    pub services: Vec<u32>,
    /// Whether a provider is currently known.
    pub available: bool,
    /// A first resolution check has been performed.
    pub checked: bool,
}

/// All invocation state of one container.
#[derive(Debug, Default)]
pub(crate) struct RpcEngine {
    pub functions: HashMap<Name, LocalFunction>,
    pub pending: HashMap<RequestId, PendingCall>,
    pub required: HashMap<Name, RequiredFn>,
    /// Marshalling failures against declared signatures (see
    /// [`TypeMismatchStats::calls`](crate::stats::TypeMismatchStats)).
    pub type_mismatches: u64,
    /// Transparent re-dispatches performed, total (feeds
    /// [`QosStats::retries`](crate::QosStats::retries)).
    pub retries: u64,
    /// Re-dispatches per function name (the per-subscription breakdown
    /// behind [`ServiceContainer::fn_retries`](crate::ServiceContainer::fn_retries)).
    pub retry_counts: HashMap<Name, u64>,
    /// Due-date heap over `(deadline, request)`: the per-tick timeout
    /// sweep peeks the earliest entry instead of walking every pending
    /// call. Entries go stale when a failover re-arms the call with a
    /// later deadline; the sweep re-checks against `pending` on pop.
    deadline_heap: BinaryHeap<Reverse<(Micros, RequestId)>>,
}

impl RpcEngine {
    /// Counts one transparent re-dispatch of `function`.
    pub fn count_retry(&mut self, function: &Name) {
        self.retries += 1;
        *self.retry_counts.entry(function.clone()).or_default() += 1;
    }

    /// Registers (or, after a failover, re-registers) a pending call and
    /// queues its reply deadline on the due-date heap.
    pub fn track(&mut self, id: RequestId, call: PendingCall) {
        self.deadline_heap.push(Reverse((call.deadline, id)));
        self.pending.insert(id, call);
    }

    /// Pending calls whose deadline has passed at `now`.
    pub fn expired(&mut self, now: Micros) -> Vec<RequestId> {
        let mut out: Vec<RequestId> = Vec::new();
        while let Some(&Reverse((deadline, id))) = self.deadline_heap.peek() {
            if deadline > now {
                break;
            }
            self.deadline_heap.pop();
            match self.pending.get(&id) {
                Some(call) if call.deadline > now => {
                    // Re-dispatched since this entry was queued: re-arm at
                    // the fresher deadline.
                    self.deadline_heap.push(Reverse((call.deadline, id)));
                }
                Some(_) => out.push(id),
                None => {} // reply landed (or call failed) while queued
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Pending calls currently targeting `node` (for immediate failover on
    /// node death).
    pub fn targeting_node(&self, node: marea_protocol::NodeId) -> Vec<RequestId> {
        let mut v: Vec<RequestId> =
            self.pending.iter().filter(|(_, c)| c.target.node == node).map(|(id, _)| *id).collect();
        v.sort();
        v
    }
}

/// Marshals a call argument list against a signature.
///
/// Each argument is encoded with `codec` against its declared parameter
/// type and length-prefixed, so the callee can re-slice without knowing
/// value sizes.
pub(crate) fn encode_args(
    args: &[Value],
    sig: &FunctionSig,
    codec: &dyn Codec,
) -> Result<Bytes, CallError> {
    if args.len() != sig.params.len() {
        return Err(CallError::BadArguments(format!(
            "expected {} arguments, got {}",
            sig.params.len(),
            args.len()
        )));
    }
    let mut buf = BytesMut::new();
    for (arg, ty) in args.iter().zip(&sig.params) {
        let encoded =
            codec.encode_to_vec(arg, ty).map_err(|e| CallError::BadArguments(e.to_string()))?;
        let mut w = WireWriter::new(&mut buf);
        w.put_len_prefixed(&encoded);
    }
    Ok(buf.freeze())
}

/// Inverse of [`encode_args`].
pub(crate) fn decode_args(
    payload: &[u8],
    sig: &FunctionSig,
    codec: &dyn Codec,
) -> Result<Vec<Value>, CallError> {
    let mut r = WireReader::new(payload);
    let mut args = Vec::with_capacity(sig.params.len());
    for ty in &sig.params {
        let bytes = r
            .get_len_prefixed(crate::container::MAX_ARG_BYTES)
            .map_err(|e| CallError::BadArguments(e.to_string()))?;
        let v = codec.decode(bytes, ty).map_err(|e| CallError::BadArguments(e.to_string()))?;
        args.push(v);
    }
    if !r.is_empty() {
        return Err(CallError::BadArguments("trailing bytes after arguments".into()));
    }
    Ok(args)
}

/// Marshals a return value (`None` return type ⇒ empty payload).
pub(crate) fn encode_result(
    value: &Value,
    returns: &Option<marea_presentation::DataType>,
    codec: &dyn Codec,
) -> Result<Bytes, CallError> {
    match returns {
        None => Ok(Bytes::new()),
        Some(ty) => codec
            .encode_to_vec(value, ty)
            .map(Bytes::from)
            .map_err(|e| CallError::BadArguments(e.to_string())),
    }
}

/// Inverse of [`encode_result`]; void functions yield `Value::Bool(true)`.
pub(crate) fn decode_result(
    payload: &[u8],
    returns: &Option<marea_presentation::DataType>,
    codec: &dyn Codec,
) -> Result<Value, CallError> {
    match returns {
        None => Ok(Value::Bool(true)),
        Some(ty) => codec.decode(payload, ty).map_err(|e| CallError::BadArguments(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_encoding::CompactCodec;
    use marea_presentation::DataType;
    use marea_protocol::NodeId;

    fn sig() -> FunctionSig {
        FunctionSig { params: vec![DataType::Str, DataType::U32], returns: Some(DataType::Bool) }
    }

    #[test]
    fn args_roundtrip() {
        let args = vec![Value::Str("photo-01".into()), Value::U32(3)];
        let bytes = encode_args(&args, &sig(), &CompactCodec).unwrap();
        let back = decode_args(&bytes, &sig(), &CompactCodec).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn arity_checked() {
        let err = encode_args(&[Value::U32(1)], &sig(), &CompactCodec).unwrap_err();
        assert!(matches!(err, CallError::BadArguments(_)));
    }

    #[test]
    fn type_checked() {
        let err =
            encode_args(&[Value::Bool(true), Value::U32(1)], &sig(), &CompactCodec).unwrap_err();
        assert!(matches!(err, CallError::BadArguments(_)));
    }

    #[test]
    fn result_roundtrip_and_void() {
        let bytes =
            encode_result(&Value::Bool(true), &Some(DataType::Bool), &CompactCodec).unwrap();
        assert_eq!(
            decode_result(&bytes, &Some(DataType::Bool), &CompactCodec).unwrap(),
            Value::Bool(true)
        );
        let empty = encode_result(&Value::Bool(false), &None, &CompactCodec).unwrap();
        assert!(empty.is_empty());
        assert_eq!(decode_result(&empty, &None, &CompactCodec).unwrap(), Value::Bool(true));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let args = vec![Value::Str("x".into()), Value::U32(1)];
        let mut bytes = encode_args(&args, &sig(), &CompactCodec).unwrap().to_vec();
        bytes.push(7);
        assert!(decode_args(&bytes, &sig(), &CompactCodec).is_err());
    }

    #[test]
    fn engine_expiry_and_targeting() {
        let mut e = RpcEngine::default();
        e.track(
            RequestId(1),
            PendingCall {
                caller_seq: 0,
                function: Name::new("f").unwrap(),
                args: vec![],
                target: ServiceId::new(NodeId(2), 1),
                returns: None,
                deadline: Micros(100),
                attempt_timeout: ProtoDuration::from_millis(100),
                attempts: 1,
                max_attempts: 3,
                policy: CallPolicy::Dynamic,
                started_at: Micros::ZERO,
                trace: TraceId::NONE,
            },
        );
        e.track(
            RequestId(2),
            PendingCall {
                caller_seq: 0,
                function: Name::new("g").unwrap(),
                args: vec![],
                target: ServiceId::new(NodeId(3), 1),
                returns: None,
                deadline: Micros(500),
                attempt_timeout: ProtoDuration::from_millis(500),
                attempts: 1,
                max_attempts: 3,
                policy: CallPolicy::Dynamic,
                started_at: Micros::ZERO,
                trace: TraceId::NONE,
            },
        );
        assert_eq!(e.expired(Micros(200)), vec![RequestId(1)]);
        assert_eq!(e.targeting_node(NodeId(3)), vec![RequestId(2)]);
        // A failover re-tracks the call with a later deadline: the stale
        // heap entry must not expire it early.
        let mut call = e.pending.remove(&RequestId(2)).unwrap();
        call.deadline = Micros(900);
        e.track(RequestId(2), call);
        assert!(e.expired(Micros(600)).is_empty(), "stale entry re-arms, no early expiry");
        assert_eq!(e.expired(Micros(1000)), vec![RequestId(2)]);
    }
}
