//! Event primitive bookkeeping (paper §4.2).

use std::collections::{BTreeSet, HashMap};

use marea_presentation::{DataType, Name};
use marea_protocol::{NodeId, ServiceId};

use crate::qos::EventQos;

/// Publisher-side state of one declared event channel.
#[derive(Debug)]
pub(crate) struct PublishedEvent {
    /// Declaring local service.
    pub owner_seq: u32,
    /// Payload schema (`None` = bare events).
    pub ty: Option<DataType>,
    /// Next event sequence number on this channel.
    pub seq: u64,
    /// Remote nodes with at least one subscriber; each gets a reliable
    /// copy of every event.
    pub remote_subscribers: BTreeSet<NodeId>,
}

/// One local subscriber of an event channel and its declared contract.
#[derive(Debug)]
pub(crate) struct EventSubscriber {
    /// Subscribing local service (per-node sequence).
    pub seq: u32,
    /// The declared [`EventQos`] contract.
    pub qos: EventQos,
    /// Deliveries currently queued in the scheduler for this subscriber.
    pub inbox: usize,
    /// Highest inbox depth observed.
    pub inbox_peak: usize,
    /// Deliveries dropped by the inbox bound.
    pub drops: u64,
}

impl EventSubscriber {
    pub fn new(seq: u32, qos: EventQos) -> Self {
        EventSubscriber { seq, qos, inbox: 0, inbox_peak: 0, drops: 0 }
    }
}

/// Subscriber-side state of one event channel.
#[derive(Debug)]
pub(crate) struct SubscribedEvent {
    /// Local subscribers with their contracts.
    pub subscribers: Vec<EventSubscriber>,
    /// Resolved provider.
    pub provider: Option<ServiceId>,
    /// Payload schema learned from the announcement.
    pub ty: Option<DataType>,
    /// SubscribeEvent was sent to the current provider.
    pub subscribe_sent: bool,
}

impl SubscribedEvent {
    pub fn new() -> Self {
        SubscribedEvent { subscribers: Vec::new(), provider: None, ty: None, subscribe_sent: false }
    }

    /// Subscribing service sequences (delivery fan-out list).
    pub fn service_seqs(&self) -> Vec<u32> {
        self.subscribers.iter().map(|s| s.seq).collect()
    }

    /// Marks one queued delivery for `seq` as executed (or abandoned).
    ///
    /// A service may appear more than once (duplicate declarations); the
    /// decrement goes to one of its entries that still counts queued work,
    /// so the summed inbox depth always equals the queued deliveries and
    /// can never leak upward.
    pub fn dec_inbox(&mut self, seq: u32) {
        if let Some(entry) = self.subscribers.iter_mut().find(|s| s.seq == seq && s.inbox > 0) {
            entry.inbox -= 1;
        }
    }

    /// Total inbox drops over this channel's subscribers.
    pub fn total_drops(&self) -> u64 {
        self.subscribers.iter().map(|s| s.drops).sum()
    }

    /// Highest inbox depth observed on any subscriber.
    pub fn inbox_peak(&self) -> usize {
        self.subscribers.iter().map(|s| s.inbox_peak).max().unwrap_or(0)
    }

    /// Drops the provider binding for re-resolution.
    pub fn unbind(&mut self) {
        self.provider = None;
        self.subscribe_sent = false;
        self.ty = None;
    }
}

/// All event state of one container.
#[derive(Debug, Default)]
pub(crate) struct EventEngine {
    pub published: HashMap<Name, PublishedEvent>,
    pub subscribed: HashMap<Name, SubscribedEvent>,
    /// Payloads violating the channel declaration (see
    /// [`TypeMismatchStats::events`](crate::stats::TypeMismatchStats)).
    pub type_mismatches: u64,
}

impl EventEngine {
    /// Total inbox drops over every subscription (feeds
    /// [`QosStats::queue_drops`](crate::QosStats::queue_drops)).
    pub fn total_queue_drops(&self) -> u64 {
        self.subscribed.values().map(|s| s.total_drops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_lifecycle() {
        let mut s = SubscribedEvent::new();
        assert!(s.provider.is_none());
        s.provider = Some(ServiceId::new(NodeId(1), 1));
        s.subscribe_sent = true;
        s.ty = Some(DataType::U8);
        s.unbind();
        assert!(s.provider.is_none());
        assert!(!s.subscribe_sent);
        assert!(s.ty.is_none());
    }

    #[test]
    fn inbox_accounting() {
        let mut s = SubscribedEvent::new();
        s.subscribers.push(EventSubscriber::new(1, EventQos::default().with_queue_bound(2)));
        s.subscribers.push(EventSubscriber::new(2, EventQos::default()));
        s.subscribers[0].inbox = 2;
        s.subscribers[0].inbox_peak = 2;
        s.subscribers[0].drops = 3;
        assert_eq!(s.service_seqs(), vec![1, 2]);
        assert_eq!(s.total_drops(), 3);
        assert_eq!(s.inbox_peak(), 2);
        s.dec_inbox(1);
        assert_eq!(s.subscribers[0].inbox, 1);
        s.dec_inbox(99); // unknown seq is a no-op
        s.dec_inbox(2);
        assert_eq!(s.subscribers[1].inbox, 0, "saturates at zero");
    }

    #[test]
    fn duplicate_subscriptions_cannot_leak_inbox_accounting() {
        // One service subscribed twice: each delivery increments both
        // entries and queues two tasks; the two decrements must land on
        // whichever entries still count queued work.
        let mut s = SubscribedEvent::new();
        s.subscribers.push(EventSubscriber::new(7, EventQos::default().with_queue_bound(2)));
        s.subscribers.push(EventSubscriber::new(7, EventQos::default().with_queue_bound(2)));
        for _ in 0..2 {
            s.subscribers[0].inbox += 1;
            s.subscribers[1].inbox += 1;
        }
        for _ in 0..4 {
            s.dec_inbox(7);
        }
        assert_eq!(s.subscribers[0].inbox + s.subscribers[1].inbox, 0, "fully drained");
    }
}
