//! Event primitive bookkeeping (paper §4.2).

use std::collections::{BTreeSet, HashMap};

use marea_presentation::{DataType, Name};
use marea_protocol::{NodeId, ServiceId};

/// Publisher-side state of one declared event channel.
#[derive(Debug)]
pub(crate) struct PublishedEvent {
    /// Declaring local service.
    pub owner_seq: u32,
    /// Payload schema (`None` = bare events).
    pub ty: Option<DataType>,
    /// Next event sequence number on this channel.
    pub seq: u64,
    /// Remote nodes with at least one subscriber; each gets a reliable
    /// copy of every event.
    pub remote_subscribers: BTreeSet<NodeId>,
}

/// Subscriber-side state of one event channel.
#[derive(Debug)]
pub(crate) struct SubscribedEvent {
    /// Local services subscribed.
    pub services: Vec<u32>,
    /// Resolved provider.
    pub provider: Option<ServiceId>,
    /// Payload schema learned from the announcement.
    pub ty: Option<DataType>,
    /// SubscribeEvent was sent to the current provider.
    pub subscribe_sent: bool,
}

impl SubscribedEvent {
    pub fn new() -> Self {
        SubscribedEvent { services: Vec::new(), provider: None, ty: None, subscribe_sent: false }
    }

    /// Drops the provider binding for re-resolution.
    pub fn unbind(&mut self) {
        self.provider = None;
        self.subscribe_sent = false;
        self.ty = None;
    }
}

/// All event state of one container.
#[derive(Debug, Default)]
pub(crate) struct EventEngine {
    pub published: HashMap<Name, PublishedEvent>,
    pub subscribed: HashMap<Name, SubscribedEvent>,
    /// Payloads violating the channel declaration (see
    /// [`TypeMismatchStats::events`](crate::stats::TypeMismatchStats)).
    pub type_mismatches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_lifecycle() {
        let mut s = SubscribedEvent::new();
        assert!(s.provider.is_none());
        s.provider = Some(ServiceId::new(NodeId(1), 1));
        s.subscribe_sent = true;
        s.ty = Some(DataType::U8);
        s.unbind();
        assert!(s.provider.is_none());
        assert!(!s.subscribe_sent);
        assert!(s.ty.is_none());
    }
}
