//! State engines for the four communication primitives.
//!
//! Each engine owns the bookkeeping of one primitive; the
//! [`ServiceContainer`](crate::ServiceContainer) orchestrates them —
//! engines never touch the transport or the scheduler directly, which
//! keeps them unit-testable in isolation.

pub(crate) mod events;
pub(crate) mod files;
pub(crate) mod rpc;
pub(crate) mod vars;
