//! The service programming model: what a MAREA service implements and the
//! API surface it sees.
//!
//! Paper §3: *"the services are semantic units that behave as producers of
//! data and as consumers of data coming from other services ... The services
//! do not access the network directly. All their communication is carried by
//! the service container."*
//!
//! Accordingly a service is a [`Service`] trait object with handler hooks;
//! its *only* channel to the world is the [`ServiceContext`] the container
//! passes into each hook. Context methods queue **effects** that the
//! container applies after the handler returns — a service can never
//! re-enter the middleware or touch a socket.
//!
//! Every declaration carries a typed QoS profile ([`VarQos`] /
//! [`EventQos`]) and every remote invocation carries [`CallOptions`]: the
//! contract a service states here is exactly what the container, the
//! engines and the scheduler enforce below (see the [`qos`](crate::qos)
//! module docs).

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;

use marea_presentation::{ArgsCodec, DataType, EventPayload, FnRet, Name, Value, ValueCodec};
use marea_protocol::messages::{FunctionSig, Provision};
use marea_protocol::{Micros, NodeId, ProtoDuration, RequestId};

use crate::engines::vars::SubscribedVar;
use crate::error::CallError;
use crate::ports::{EventPort, FnPort, TypedCallHandle, VarPort};
use crate::qos::{CallOptions, EventQos, VarQos};

/// Handle correlating a [`ServiceContext::call_fn`] with its later
/// [`Service::on_reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallHandle(pub RequestId);

/// Identifier of a timer created with [`ServiceContext::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Provider-selection policy for remote invocations (paper §4.3: static
/// allocation for critical services, dynamic load balancing otherwise).
///
/// Carried by [`CallOptions`] together with the deadline/retry contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CallPolicy {
    /// Pick the available provider with the lowest advertised load
    /// (falling back to lowest node id for determinism).
    #[default]
    Dynamic,
    /// Pin to a provider on the given node while it is alive; fail over
    /// dynamically if it dies.
    PreferNode(NodeId),
}

/// File-transfer notifications delivered to services.
#[derive(Debug, Clone, PartialEq)]
pub enum FileEvent {
    /// A publisher announced (a new revision of) a resource this service
    /// subscribed to.
    Announced {
        /// Resource name.
        resource: Name,
        /// Announced revision.
        revision: u32,
        /// Total size in bytes.
        size: u64,
    },
    /// A subscribed resource finished downloading.
    Received {
        /// Resource name.
        resource: Name,
        /// Completed revision.
        revision: u32,
        /// File content.
        data: Bytes,
    },
    /// Every subscriber acknowledged a resource this service published.
    DistributionComplete {
        /// Resource name.
        resource: Name,
        /// Completed revision.
        revision: u32,
        /// How many subscribers were served.
        subscribers: u32,
    },
}

/// Provider-availability notifications (name-cache maintenance made
/// visible; paper §3 *name management*).
#[derive(Debug, Clone, PartialEq)]
pub enum ProviderNotice {
    /// A required function became callable.
    FunctionAvailable(Name),
    /// A required function lost its last provider.
    FunctionUnavailable(Name),
    /// A subscribed variable gained a provider.
    VariableAvailable(Name),
    /// A subscribed variable lost its provider.
    VariableUnavailable(Name),
    /// A subscribed event channel gained a provider.
    EventAvailable(Name),
    /// A subscribed event channel lost its provider.
    EventUnavailable(Name),
}

/// A variable subscription in a [`ServiceDescriptor`]: the name plus the
/// subscriber's declared [`VarQos`] contract.
#[derive(Debug, Clone, PartialEq)]
pub struct VarSubscription {
    /// Variable name.
    pub name: Name,
    /// The declared contract (`deadline_periods`, `history` and
    /// `need_initial` are the subscriber-side fields).
    pub qos: VarQos,
}

/// An event subscription in a [`ServiceDescriptor`]: the channel name plus
/// the subscriber's declared [`EventQos`] contract.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSubscription {
    /// Channel name.
    pub name: Name,
    /// The declared contract (priority lane, inbox bound, drop policy).
    pub qos: EventQos,
}

/// Static declaration of everything a service provides and consumes.
///
/// Built with [`ServiceDescriptor::builder`]; the container uses it to
/// announce provisions, wire subscriptions and verify at initialization
/// that "all the functions they need ... are provided by one or more
/// services available in the network" (paper §4.3).
#[derive(Debug, Clone)]
pub struct ServiceDescriptor {
    pub(crate) name: Name,
    pub(crate) provides: Vec<Provision>,
    pub(crate) var_subscriptions: Vec<VarSubscription>,
    pub(crate) event_subscriptions: Vec<EventSubscription>,
    pub(crate) file_interests: Vec<Name>,
    pub(crate) required_functions: Vec<Name>,
}

impl ServiceDescriptor {
    /// Starts building a descriptor for a service called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal.
    pub fn builder(name: &str) -> ServiceDescriptorBuilder {
        ServiceDescriptorBuilder {
            inner: ServiceDescriptor {
                name: Name::new(name).expect("service name must be a valid name literal"),
                provides: Vec::new(),
                var_subscriptions: Vec::new(),
                event_subscriptions: Vec::new(),
                file_interests: Vec::new(),
                required_functions: Vec::new(),
            },
        }
    }

    /// Service name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Declared provisions.
    pub fn provides(&self) -> &[Provision] {
        &self.provides
    }

    /// Declared variable subscriptions.
    pub fn var_subscriptions(&self) -> &[VarSubscription] {
        &self.var_subscriptions
    }

    /// Declared event subscriptions.
    pub fn event_subscriptions(&self) -> &[EventSubscription] {
        &self.event_subscriptions
    }

    /// Declared file interests.
    pub fn file_interests(&self) -> &[Name] {
        &self.file_interests
    }

    /// Functions this service needs available before it can do its job.
    pub fn required_functions(&self) -> &[Name] {
        &self.required_functions
    }

    pub(crate) fn find_provision(&self, name: &str) -> Option<&Provision> {
        self.provides.iter().find(|p| p.name() == name)
    }
}

/// Builder for [`ServiceDescriptor`].
///
/// The primary API is **typed**: [`variable`](Self::variable),
/// [`event`](Self::event) and [`function`](Self::function) derive the wire
/// schema from a Rust type and hand back a port
/// ([`VarPort`]/[`EventPort`]/[`FnPort`]) the service stores and later
/// passes to the typed [`ServiceContext`] methods. Ports shared through a
/// vocabulary module (one port constructor used by producer and consumers
/// alike) are declared with the `provides_*` / `subscribe_to_*` /
/// [`requires_fn`](Self::requires_fn) methods instead. Every variable and
/// event declaration takes its QoS contract as a typed profile
/// ([`VarQos`] / [`EventQos`]); `Default` profiles reproduce the
/// historical behaviour.
///
/// The `*_dynamic` methods keep the old stringly-typed declarations
/// compiling; they skip the compile-time check, so a value/descriptor
/// disagreement is only caught at runtime (and counted in
/// [`ContainerStats::type_mismatches`](crate::ContainerStats)).
///
/// # Panics
///
/// All builder methods panic on invalid name literals *and* on invalid
/// QoS profiles (see [`QosError`](crate::QosError)) — descriptors are
/// static declarations and a bad contract is a programming error caught
/// at service registration, not a runtime condition.
#[derive(Debug, Clone)]
pub struct ServiceDescriptorBuilder {
    inner: ServiceDescriptor,
}

impl ServiceDescriptorBuilder {
    fn name(s: &str) -> Name {
        Name::new(s).expect("name must be a valid name literal")
    }

    fn checked_var_qos(name: &Name, qos: VarQos) -> VarQos {
        if let Err(e) = qos.validate() {
            panic!("invalid VarQos for `{name}`: {e}");
        }
        qos
    }

    fn checked_event_qos(name: &Name, qos: EventQos) -> EventQos {
        if let Err(e) = qos.validate() {
            panic!("invalid EventQos for `{name}`: {e}");
        }
        qos
    }

    // ---- typed declarations (the primary API) ---------------------------

    /// Declares a published variable whose schema derives from `T`,
    /// returning the typed port to publish through.
    ///
    /// ```
    /// # use marea_core::{ServiceDescriptor, VarQos};
    /// # use marea_protocol::ProtoDuration;
    /// let mut b = ServiceDescriptor::builder("beacon");
    /// let count = b.variable::<u64>(
    ///     "beacon/count",
    ///     VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)),
    /// );
    /// let descriptor = b.build();
    /// # assert_eq!(count.name(), "beacon/count");
    /// # assert_eq!(descriptor.provides().len(), 1);
    /// ```
    pub fn variable<T: ValueCodec>(&mut self, name: &str, qos: VarQos) -> VarPort<T> {
        let port = VarPort::new(name);
        self.provides_var(&port, qos);
        port
    }

    /// Declares a published event channel with payload `P` (`()` for bare
    /// channels, `Option<T>` for optional payloads), returning the typed
    /// port to emit through.
    pub fn event<P: EventPayload>(&mut self, name: &str) -> EventPort<P> {
        let port = EventPort::new(name);
        self.provides_event(&port);
        port
    }

    /// Declares a callable function with the signature derived from the
    /// argument tuple `A` and return type `R`, returning the typed port
    /// the provider uses to decode arguments and encode results.
    pub fn function<A: ArgsCodec, R: FnRet>(&mut self, name: &str) -> FnPort<A, R> {
        let port = FnPort::new(name);
        self.provides_fn(&port);
        port
    }

    /// Declares a published variable through an existing (shared) port;
    /// `qos.period` and `qos.validity` are announced on the wire.
    pub fn provides_var<T: ValueCodec>(&mut self, port: &VarPort<T>, qos: VarQos) -> &mut Self {
        let qos = Self::checked_var_qos(port.name(), qos);
        self.inner.provides.push(Provision::Variable {
            name: port.name().clone(),
            ty: port.data_type(),
            period_us: qos.period.as_micros(),
            validity_us: qos.validity.as_micros(),
        });
        self
    }

    /// Declares a published event channel through an existing port.
    pub fn provides_event<P: EventPayload>(&mut self, port: &EventPort<P>) -> &mut Self {
        self.inner
            .provides
            .push(Provision::Event { name: port.name().clone(), ty: port.payload_type() });
        self
    }

    /// Declares a callable function through an existing port.
    pub fn provides_fn<A: ArgsCodec, R: FnRet>(&mut self, port: &FnPort<A, R>) -> &mut Self {
        self.inner
            .provides
            .push(Provision::Function { name: port.name().clone(), sig: port.signature() });
        self
    }

    /// Subscribes to the variable behind a typed port under the
    /// subscriber-side contract of `qos` (`deadline_periods`, `history`,
    /// `need_initial`); incoming samples are decoded with
    /// [`VarPort::decode`].
    pub fn subscribe_to_var<T: ValueCodec>(&mut self, port: &VarPort<T>, qos: VarQos) -> &mut Self {
        let qos = Self::checked_var_qos(port.name(), qos);
        self.inner.var_subscriptions.push(VarSubscription { name: port.name().clone(), qos });
        self
    }

    /// Subscribes to the event channel behind a typed port under the
    /// contract of `qos` (priority lane, inbox bound, drop policy).
    pub fn subscribe_to_event<P: EventPayload>(
        &mut self,
        port: &EventPort<P>,
        qos: EventQos,
    ) -> &mut Self {
        let qos = Self::checked_event_qos(port.name(), qos);
        self.inner.event_subscriptions.push(EventSubscription { name: port.name().clone(), qos });
        self
    }

    /// Declares that the service needs the function behind a typed port
    /// callable somewhere in the network.
    pub fn requires_fn<A: ArgsCodec, R: FnRet>(&mut self, port: &FnPort<A, R>) -> &mut Self {
        self.inner.required_functions.push(port.name().clone());
        self
    }

    // ---- dynamic compatibility layer ------------------------------------

    /// Declares a published variable from an explicit [`DataType`].
    ///
    /// The dynamic declaration cannot check at compile time that published
    /// values match `ty`; mismatches surface only at runtime as counted
    /// [`type_mismatches`](crate::ContainerStats::type_mismatches).
    /// Migration:
    ///
    /// ```text
    /// // before                                        // after
    /// .variable_dynamic("beacon/count",                let count = b.variable::<u64>(
    ///     DataType::U64, period, validity)                 "beacon/count", VarQos::periodic(period, validity));
    /// ctx.publish("beacon/count", 7u64);               ctx.publish_to(&count, 7u64);
    /// ```
    #[deprecated(
        since = "0.2.0",
        note = "use `variable::<T>` (or `provides_var` with a shared port) and a `VarQos` profile"
    )]
    pub fn variable_dynamic(
        &mut self,
        name: &str,
        ty: DataType,
        period: ProtoDuration,
        validity: ProtoDuration,
    ) -> &mut Self {
        self.inner.provides.push(Provision::Variable {
            name: Self::name(name),
            ty,
            period_us: period.as_micros(),
            validity_us: validity.as_micros(),
        });
        self
    }

    /// Declares a published event channel from an explicit payload type.
    ///
    /// See [`variable_dynamic`](Self::variable_dynamic) for the migration
    /// pattern.
    #[deprecated(
        since = "0.2.0",
        note = "use `event::<P>` (or `provides_event` with a shared port)"
    )]
    pub fn event_dynamic(&mut self, name: &str, ty: Option<DataType>) -> &mut Self {
        self.inner.provides.push(Provision::Event { name: Self::name(name), ty });
        self
    }

    /// Declares a callable function from an explicit signature.
    ///
    /// See [`variable_dynamic`](Self::variable_dynamic) for the migration
    /// pattern.
    #[deprecated(
        since = "0.2.0",
        note = "use `function::<A, R>` (or `provides_fn` with a shared port)"
    )]
    pub fn function_dynamic(
        &mut self,
        name: &str,
        params: Vec<DataType>,
        returns: Option<DataType>,
    ) -> &mut Self {
        self.inner.provides.push(Provision::Function {
            name: Self::name(name),
            sig: FunctionSig { params, returns },
        });
        self
    }

    // ---- untyped declarations (no schema involved) ----------------------

    /// Declares a distributable file resource.
    pub fn file_resource(&mut self, name: &str) -> &mut Self {
        self.inner.provides.push(Provision::FileResource { name: Self::name(name) });
        self
    }

    /// Subscribes to a variable by name under the contract of `qos`
    /// (schema checked at runtime only; prefer
    /// [`subscribe_to_var`](Self::subscribe_to_var)).
    pub fn subscribe_variable(&mut self, name: &str, qos: VarQos) -> &mut Self {
        let name = Self::name(name);
        let qos = Self::checked_var_qos(&name, qos);
        self.inner.var_subscriptions.push(VarSubscription { name, qos });
        self
    }

    /// Subscribes to an event channel by name under the contract of `qos`
    /// (prefer [`subscribe_to_event`](Self::subscribe_to_event)).
    pub fn subscribe_event(&mut self, name: &str, qos: EventQos) -> &mut Self {
        let name = Self::name(name);
        let qos = Self::checked_event_qos(&name, qos);
        self.inner.event_subscriptions.push(EventSubscription { name, qos });
        self
    }

    /// Registers interest in a file resource.
    pub fn subscribe_file(&mut self, name: &str) -> &mut Self {
        self.inner.file_interests.push(Self::name(name));
        self
    }

    /// Declares that the service needs `name` callable somewhere in the
    /// network (prefer [`requires_fn`](Self::requires_fn)).
    pub fn requires_function(&mut self, name: &str) -> &mut Self {
        self.inner.required_functions.push(Self::name(name));
        self
    }

    /// Finishes the descriptor.
    pub fn build(&self) -> ServiceDescriptor {
        self.inner.clone()
    }
}

/// Effects queued by a [`ServiceContext`]; applied by the container after
/// the handler returns.
#[derive(Debug)]
pub(crate) enum Effect {
    Publish { name: Name, value: Value },
    Emit { name: Name, value: Option<Value> },
    Call { handle: CallHandle, function: Name, args: Vec<Value>, options: CallOptions },
    PublishFile { resource: Name, data: Bytes },
    SubscribeFile { resource: Name },
    SetTimer { id: TimerId, after: ProtoDuration, period: Option<ProtoDuration> },
    CancelTimer { id: TimerId },
    Log { line: String },
    SetDegraded { degraded: bool },
    StopSelf,
}

/// The API a service uses from inside its handlers.
///
/// All methods queue work; nothing crosses the network until the handler
/// returns. Methods referencing provisions the service did not declare are
/// reported via the container log and dropped (defensive: a service cannot
/// impersonate another's publications).
#[derive(Debug)]
pub struct ServiceContext<'a> {
    pub(crate) now: Micros,
    pub(crate) node: NodeId,
    pub(crate) service_name: &'a Name,
    pub(crate) service_seq: u32,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_request_id: &'a mut u64,
    pub(crate) next_timer_id: &'a mut u64,
    /// Subscribed-variable state, for [`history`](Self::history) reads
    /// (`None` in contexts built outside a container tick).
    pub(crate) var_state: Option<&'a HashMap<Name, SubscribedVar>>,
}

impl<'a> ServiceContext<'a> {
    /// Current time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// The node hosting this service.
    pub fn local_node(&self) -> NodeId {
        self.node
    }

    /// This service's name.
    pub fn service_name(&self) -> &Name {
        self.service_name
    }

    /// This service's instance sequence on the node.
    pub fn service_seq(&self) -> u32 {
        self.service_seq
    }

    /// Publishes a sample through a typed port (best-effort, §4.1).
    ///
    /// The value's conformance to the declared schema is guaranteed by the
    /// port's type — a mismatch is a compile error, not a runtime drop.
    pub fn publish_to<T: ValueCodec>(&mut self, port: &VarPort<T>, value: T) {
        self.effects.push(Effect::Publish { name: port.name().clone(), value: value.into_value() });
    }

    /// Emits an event through a typed port (reliable, §4.2).
    ///
    /// Bare channels take `()`; optional payloads take an `Option`.
    pub fn emit_to<P: EventPayload>(&mut self, port: &EventPort<P>, payload: P) {
        self.effects
            .push(Effect::Emit { name: port.name().clone(), value: payload.into_payload() });
    }

    /// The retained samples of a subscribed variable, oldest first, as
    /// deep as the subscription's declared
    /// [`VarQos::history`](crate::VarQos::history).
    ///
    /// Samples that do not decode as `T` are skipped (impossible when the
    /// subscription itself was declared through `port`). Outside a
    /// container — or for a variable this service never subscribed to —
    /// the history is empty.
    pub fn history<T: ValueCodec>(&self, port: &VarPort<T>) -> Vec<(Micros, T)> {
        match self.var_state.and_then(|vars| vars.get(port.name())) {
            Some(sub) => sub
                .history
                .iter()
                .filter_map(|(stamp, v)| port.decode(v).ok().map(|x| (*stamp, x)))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Starts a remote invocation through a typed port under the default
    /// [`CallOptions`] (container deadline/retry defaults, dynamic
    /// provider selection); the outcome arrives via [`Service::on_reply`]
    /// and is decoded with [`TypedCallHandle::decode`].
    pub fn call_fn<A: ArgsCodec, R: FnRet>(
        &mut self,
        port: &FnPort<A, R>,
        args: A,
    ) -> TypedCallHandle<R> {
        self.call_fn_with(port, args, CallOptions::default())
    }

    /// [`call_fn`](Self::call_fn) under an explicit caller contract:
    /// per-attempt deadline, retry budget and provider policy travel with
    /// the call and override the container defaults.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`CallOptions`] profile (zero deadline or
    /// zero retry budget) — the contract is part of the program, not a
    /// runtime input.
    pub fn call_fn_with<A: ArgsCodec, R: FnRet>(
        &mut self,
        port: &FnPort<A, R>,
        args: A,
        options: CallOptions,
    ) -> TypedCallHandle<R> {
        if let Err(e) = options.validate() {
            panic!("invalid CallOptions for `{}`: {e}", port.name());
        }
        *self.next_request_id += 1;
        let handle = CallHandle(RequestId(*self.next_request_id));
        self.effects.push(Effect::Call {
            handle,
            function: port.name().clone(),
            args: args.into_args(),
            options,
        });
        TypedCallHandle::new(handle)
    }

    /// [`call_fn`](Self::call_fn) with an explicit provider policy.
    #[deprecated(
        since = "0.2.0",
        note = "use `call_fn_with` with `CallOptions::default().with_policy(policy)`"
    )]
    pub fn call_fn_with_policy<A: ArgsCodec, R: FnRet>(
        &mut self,
        port: &FnPort<A, R>,
        args: A,
        policy: CallPolicy,
    ) -> TypedCallHandle<R> {
        self.call_fn_with(port, args, CallOptions::default().with_policy(policy))
    }

    /// Publishes a sample of a declared variable by name (best-effort,
    /// §4.1).
    ///
    /// This compat method cannot check the value against the descriptor at
    /// compile time; a disagreement is dropped at runtime and counted in
    /// [`ContainerStats::type_mismatches`](crate::ContainerStats).
    /// Migration:
    ///
    /// ```text
    /// // before                               // after (port from the builder)
    /// ctx.publish("beacon/count", count);     ctx.publish_to(&self.count_port, count);
    /// ```
    #[deprecated(since = "0.2.0", note = "use `publish_to` with a typed `VarPort`")]
    pub fn publish(&mut self, name: &str, value: impl Into<Value>) {
        if let Ok(name) = Name::new(name) {
            self.effects.push(Effect::Publish { name, value: value.into() });
        }
    }

    /// Emits an event on a declared channel by name (reliable, §4.2).
    ///
    /// See [`publish`](Self::publish) for the migration pattern.
    #[deprecated(since = "0.2.0", note = "use `emit_to` with a typed `EventPort`")]
    pub fn emit(&mut self, name: &str, value: Option<Value>) {
        if let Ok(name) = Name::new(name) {
            self.effects.push(Effect::Emit { name, value });
        }
    }

    fn call_dynamic(&mut self, function: &str, args: Vec<Value>, policy: CallPolicy) -> CallHandle {
        *self.next_request_id += 1;
        let handle = CallHandle(RequestId(*self.next_request_id));
        let options = CallOptions::default().with_policy(policy);
        match Name::new(function) {
            Ok(function) => {
                self.effects.push(Effect::Call { handle, function, args, options });
            }
            Err(_) => {
                // Invalid name: surface as an immediate NoProvider reply.
                self.effects.push(Effect::Log {
                    line: format!("call to invalid function name {function:?}"),
                });
                self.effects.push(Effect::Call {
                    handle,
                    function: Name::new("invalid").expect("literal"),
                    args,
                    options,
                });
            }
        }
        handle
    }

    /// Starts a remote invocation by name; the outcome arrives via
    /// [`Service::on_reply`] with the returned handle.
    ///
    /// The typed [`call_fn`](Self::call_fn) marshals arguments from a
    /// tuple checked against the port's signature and decodes the reply
    /// through [`TypedCallHandle::decode`].
    #[deprecated(since = "0.2.0", note = "use `call_fn` with a typed `FnPort`")]
    pub fn call(&mut self, function: &str, args: Vec<Value>) -> CallHandle {
        self.call_dynamic(function, args, CallPolicy::Dynamic)
    }

    /// [`call`](Self::call) with an explicit provider policy.
    #[deprecated(
        since = "0.2.0",
        note = "use `call_fn_with` with a typed `FnPort` and `CallOptions`"
    )]
    pub fn call_with_policy(
        &mut self,
        function: &str,
        args: Vec<Value>,
        policy: CallPolicy,
    ) -> CallHandle {
        self.call_dynamic(function, args, policy)
    }

    /// Publishes (or revises) a declared file resource to all interested
    /// nodes (§4.4). Repeated publication bumps the revision.
    pub fn publish_file(&mut self, resource: &str, data: Bytes) {
        if let Ok(resource) = Name::new(resource) {
            self.effects.push(Effect::PublishFile { resource, data });
        }
    }

    /// Registers interest in a file resource at runtime (in addition to any
    /// descriptor-declared interests).
    pub fn subscribe_file(&mut self, resource: &str) {
        if let Ok(resource) = Name::new(resource) {
            self.effects.push(Effect::SubscribeFile { resource });
        }
    }

    /// Arms a timer; fires [`Service::on_timer`] once after `after`, then
    /// every `period` if given.
    pub fn set_timer(&mut self, after: ProtoDuration, period: Option<ProtoDuration>) -> TimerId {
        *self.next_timer_id += 1;
        let id = TimerId(*self.next_timer_id);
        self.effects.push(Effect::SetTimer { id, after, period });
        id
    }

    /// Cancels a timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Appends a line to the container log (bounded ring; ground-station
    /// style services read it).
    pub fn log(&mut self, line: impl Into<String>) {
        self.effects.push(Effect::Log { line: line.into() });
    }

    /// Marks this service degraded (broadcast to the fleet) or healthy.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.effects.push(Effect::SetDegraded { degraded });
    }

    /// Asks the container to stop this service after the current handler.
    pub fn stop_self(&mut self) {
        self.effects.push(Effect::StopSelf);
    }
}

/// A MAREA service: the unit of composition of the whole architecture.
///
/// All handlers default to no-ops so implementations override only what
/// they use. Handlers run on the container's scheduler — keep them short;
/// long work should be split across timers.
#[allow(unused_variables)]
pub trait Service: Send {
    /// Static declaration of provisions and subscriptions.
    fn descriptor(&self) -> ServiceDescriptor;

    /// Called once when the container starts the service.
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {}

    /// Called once when the service stops.
    fn on_stop(&mut self, ctx: &mut ServiceContext<'_>) {}

    /// A subscribed variable sample arrived (already validity-filtered).
    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        stamp: Micros,
    ) {
    }

    /// A subscribed variable stopped arriving within its declared loss
    /// deadline ([`VarQos::deadline_periods`](crate::VarQos)).
    fn on_variable_timeout(&mut self, ctx: &mut ServiceContext<'_>, name: &Name) {}

    /// A subscribed event arrived (guaranteed delivery, in order per
    /// publisher).
    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        stamp: Micros,
    ) {
    }

    /// A declared function is being invoked.
    ///
    /// # Errors
    ///
    /// Returning `Err` delivers [`CallError::App`] to the caller.
    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        Err(format!("function `{function}` not implemented"))
    }

    /// The outcome of an earlier [`ServiceContext::call_fn`] arrived.
    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
    }

    /// A file-transfer notification arrived.
    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {}

    /// A provider-availability notification arrived.
    fn on_provider_change(&mut self, ctx: &mut ServiceContext<'_>, notice: &ProviderNotice) {}

    /// A timer armed with [`ServiceContext::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, id: TimerId) {}
}

impl fmt::Debug for dyn Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Service({})", self.descriptor().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::DropPolicy;

    fn test_ctx<'a>(
        effects: &'a mut Vec<Effect>,
        req: &'a mut u64,
        tim: &'a mut u64,
        name: &'a Name,
    ) -> ServiceContext<'a> {
        ServiceContext {
            now: Micros(5),
            node: NodeId(1),
            service_name: name,
            service_seq: 3,
            effects,
            next_request_id: req,
            next_timer_id: tim,
            var_state: None,
        }
    }

    #[test]
    fn descriptor_builder_collects_declarations() {
        let mut b = ServiceDescriptor::builder("camera");
        let status = b.variable::<u8>(
            "camera/status",
            VarQos::periodic(ProtoDuration::from_millis(100), ProtoDuration::from_millis(500)),
        );
        let taken = b.event::<u32>("camera/photo-taken");
        let prepare = b.function::<(String,), bool>("camera/prepare");
        b.file_resource("camera/image")
            .subscribe_variable("gps/position", VarQos::default().with_initial())
            .subscribe_event("mc/photo-now", EventQos::default())
            .subscribe_file("mc/flight-plan")
            .requires_function("storage/store");
        let d = b.build();
        assert_eq!(d.name(), "camera");
        assert_eq!(d.provides().len(), 4);
        assert_eq!(d.var_subscriptions().len(), 1);
        assert!(d.var_subscriptions()[0].qos.need_initial);
        assert_eq!(d.event_subscriptions().len(), 1);
        assert_eq!(d.event_subscriptions()[0].name, "mc/photo-now");
        assert_eq!(d.file_interests().len(), 1);
        assert_eq!(d.required_functions().len(), 1);
        assert!(d.find_provision("camera/prepare").is_some());
        assert!(d.find_provision("nope").is_none());
        // Ports carry the declared schemas.
        assert_eq!(status.data_type(), DataType::U8);
        assert_eq!(taken.payload_type(), Some(DataType::U32));
        let sig = prepare.signature();
        assert_eq!(sig.params, vec![DataType::Str]);
        assert_eq!(sig.returns, Some(DataType::Bool));
        match d.find_provision("camera/status") {
            Some(Provision::Variable { ty, .. }) => assert_eq!(ty, &DataType::U8),
            other => panic!("unexpected provision {other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn typed_and_dynamic_declarations_agree() {
        let mut typed = ServiceDescriptor::builder("a");
        typed.variable::<u64>(
            "v",
            VarQos::periodic(ProtoDuration::from_millis(10), ProtoDuration::from_millis(50)),
        );
        let mut dynamic = ServiceDescriptor::builder("a");
        dynamic.variable_dynamic(
            "v",
            DataType::U64,
            ProtoDuration::from_millis(10),
            ProtoDuration::from_millis(50),
        );
        assert_eq!(typed.build().provides(), dynamic.build().provides());
    }

    #[test]
    fn shared_ports_wire_both_sides() {
        let position = VarPort::<f64>::new("gps/position");
        let alert = EventPort::<u32>::new("mc/alert");
        let store = FnPort::<(String, Vec<u8>), bool>::new("storage/store");
        let mut b = ServiceDescriptor::builder("consumer");
        b.subscribe_to_var(&position, VarQos::default().with_initial().with_history(4))
            .subscribe_to_event(&alert, EventQos::bulk().with_queue_bound(16))
            .requires_fn(&store);
        let d = b.build();
        assert_eq!(d.var_subscriptions()[0].name, "gps/position");
        assert_eq!(d.var_subscriptions()[0].qos.history, 4);
        assert_eq!(d.event_subscriptions()[0].name, "mc/alert");
        assert_eq!(d.event_subscriptions()[0].qos.queue_bound, 16);
        assert_eq!(d.event_subscriptions()[0].qos.drop_policy, DropPolicy::DropOldest);
        assert_eq!(d.required_functions()[0], "storage/store");

        let mut p = ServiceDescriptor::builder("producer");
        p.provides_var(
            &position,
            VarQos::periodic(ProtoDuration::from_millis(50), ProtoDuration::from_millis(200)),
        )
        .provides_event(&alert)
        .provides_fn(&store);
        assert_eq!(p.build().provides().len(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid VarQos")]
    fn builder_rejects_zero_validity() {
        let mut b = ServiceDescriptor::builder("bad");
        b.variable::<u64>("bad/v", VarQos::default().with_validity(ProtoDuration::ZERO));
    }

    #[test]
    #[should_panic(expected = "invalid EventQos")]
    fn builder_rejects_zero_queue_bound() {
        let mut b = ServiceDescriptor::builder("bad");
        let e = EventPort::<u32>::new("bad/e");
        b.subscribe_to_event(&e, EventQos::default().with_queue_bound(0));
    }

    #[test]
    #[allow(deprecated)]
    fn context_queues_effects() {
        let name = Name::new("svc").unwrap();
        let mut effects = Vec::new();
        let mut req = 0u64;
        let mut tim = 0u64;
        let mut ctx = test_ctx(&mut effects, &mut req, &mut tim, &name);
        assert_eq!(ctx.now(), Micros(5));
        assert_eq!(ctx.local_node(), NodeId(1));
        assert_eq!(ctx.service_seq(), 3);
        assert_eq!(ctx.service_name(), "svc");
        ctx.publish("v", 1u8);
        ctx.emit("e", None);
        let h = ctx.call("f", vec![Value::Bool(true)]);
        assert_eq!(h.0, RequestId(1));
        let h2 = ctx.call("f", vec![]);
        assert_eq!(h2.0, RequestId(2));
        ctx.publish_file("r", Bytes::from_static(b"x"));
        ctx.subscribe_file("r");
        let t = ctx.set_timer(ProtoDuration::from_millis(10), None);
        ctx.cancel_timer(t);
        ctx.log("hello");
        ctx.set_degraded(true);
        ctx.stop_self();
        assert_eq!(effects.len(), 11);
    }

    #[test]
    fn typed_context_methods_queue_typed_effects() {
        let name = Name::new("svc").unwrap();
        let mut effects = Vec::new();
        let mut req = 0u64;
        let mut tim = 0u64;
        let mut ctx = test_ctx(&mut effects, &mut req, &mut tim, &name);
        let var = VarPort::<u64>::new("v");
        let bare = EventPort::<()>::new("e");
        let payload = EventPort::<u32>::new("p");
        let func = FnPort::<(String, u32), bool>::new("f");
        ctx.publish_to(&var, 9);
        ctx.emit_to(&bare, ());
        ctx.emit_to(&payload, 7);
        let handle = ctx.call_fn(&func, ("x".to_owned(), 1));
        assert_eq!(handle.handle().0, RequestId(1));
        let handle2 = ctx.call_fn_with(
            &func,
            ("y".to_owned(), 2),
            CallOptions::default()
                .with_deadline(ProtoDuration::from_millis(50))
                .with_retry_budget(1),
        );
        assert_eq!(handle2.handle().0, RequestId(2));

        match &effects[0] {
            Effect::Publish { name, value } => {
                assert_eq!(name, "v");
                assert_eq!(value, &Value::U64(9));
            }
            other => panic!("unexpected effect {other:?}"),
        }
        match &effects[1] {
            Effect::Emit { value, .. } => assert_eq!(value, &None),
            other => panic!("unexpected effect {other:?}"),
        }
        match &effects[2] {
            Effect::Emit { value, .. } => assert_eq!(value, &Some(Value::U32(7))),
            other => panic!("unexpected effect {other:?}"),
        }
        match &effects[3] {
            Effect::Call { function, args, options, .. } => {
                assert_eq!(function, "f");
                assert_eq!(args, &vec![Value::Str("x".into()), Value::U32(1)]);
                assert_eq!(options, &CallOptions::default());
            }
            other => panic!("unexpected effect {other:?}"),
        }
        match &effects[4] {
            Effect::Call { options, .. } => {
                assert_eq!(options.deadline, Some(ProtoDuration::from_millis(50)));
                assert_eq!(options.retry_budget, Some(1));
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid CallOptions")]
    fn call_fn_with_rejects_zero_retry_budget() {
        let name = Name::new("svc").unwrap();
        let mut effects = Vec::new();
        let mut req = 0u64;
        let mut tim = 0u64;
        let mut ctx = test_ctx(&mut effects, &mut req, &mut tim, &name);
        let func = FnPort::<(), bool>::new("f");
        ctx.call_fn_with(&func, (), CallOptions::default().with_retry_budget(0));
    }

    #[test]
    fn history_is_empty_outside_a_container() {
        let name = Name::new("svc").unwrap();
        let mut effects = Vec::new();
        let mut req = 0u64;
        let mut tim = 0u64;
        let ctx = test_ctx(&mut effects, &mut req, &mut tim, &name);
        let var = VarPort::<u64>::new("v");
        assert!(ctx.history(&var).is_empty());
    }

    #[test]
    fn default_on_call_errors() {
        struct Nop;
        impl Service for Nop {
            fn descriptor(&self) -> ServiceDescriptor {
                ServiceDescriptor::builder("nop").build()
            }
        }
        let mut n = Nop;
        let name = Name::new("nop").unwrap();
        let f = Name::new("f").unwrap();
        let mut effects = Vec::new();
        let (mut a, mut b) = (0u64, 0u64);
        let mut ctx = test_ctx(&mut effects, &mut a, &mut b, &name);
        assert!(n.on_call(&mut ctx, &f, &[]).is_err());
    }
}
