//! Drivers: the deterministic simulation harness and the wall-clock driver.

use std::collections::HashMap;

use marea_netsim::{NetConfig, SimNet};
use marea_protocol::{Micros, NodeId, ProtoDuration};
use marea_transport::SimLanTransport;

use crate::clock::{Clock, SystemClock};
use crate::container::{ContainerConfig, ServiceContainer};
use crate::service::Service;

/// Drives a fleet of containers over a simulated LAN on virtual time.
///
/// Every container is ticked at a fixed cadence while the network delivers
/// datagrams in between — the same seed always reproduces the same run,
/// which is what makes the integration tests and benches exact.
///
/// # Examples
///
/// ```
/// use marea_core::{ContainerConfig, SimHarness};
/// use marea_netsim::NetConfig;
/// use marea_protocol::NodeId;
///
/// let mut h = SimHarness::new(NetConfig::default());
/// h.add_container(ContainerConfig::new("fcs", NodeId(1)));
/// h.add_container(ContainerConfig::new("payload", NodeId(2)));
/// h.start_all();
/// h.run_for_millis(50);
/// assert!(h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)));
/// ```
#[derive(Debug)]
pub struct SimHarness {
    net: SimNet,
    containers: HashMap<NodeId, ServiceContainer>,
    order: Vec<NodeId>,
    tick_us: u64,
    now_us: u64,
}

impl SimHarness {
    /// Creates a harness over a fresh simulated network.
    pub fn new(net_config: NetConfig) -> Self {
        SimHarness {
            net: SimNet::new(net_config),
            containers: HashMap::new(),
            order: Vec::new(),
            tick_us: 1_000,
            now_us: 0,
        }
    }

    /// Changes the container tick cadence (default 1 ms).
    pub fn set_tick_us(&mut self, tick_us: u64) {
        self.tick_us = tick_us.max(1);
    }

    /// The underlying simulated network (for fault injection and stats).
    pub fn network(&self) -> &SimNet {
        &self.net
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        Micros(self.now_us)
    }

    /// Adds a container attached to the simulated LAN.
    pub fn add_container(&mut self, config: ContainerConfig) -> NodeId {
        let node = config.node;
        let transport = SimLanTransport::attach(&self.net, node.0);
        let container = ServiceContainer::new(config, Box::new(transport));
        self.containers.insert(node, container);
        self.order.push(node);
        node
    }

    /// Adds a service to the container on `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown or the service collides with an
    /// existing one — harness wiring errors are programming errors.
    pub fn add_service(&mut self, node: NodeId, service: Box<dyn Service>) {
        self.containers
            .get_mut(&node)
            .expect("node registered with add_container")
            .add_service(service)
            .expect("service registration");
    }

    /// Starts every container at the current virtual time.
    pub fn start_all(&mut self) {
        let now = Micros(self.now_us);
        for node in &self.order {
            self.containers.get_mut(node).expect("present").start(now);
        }
    }

    /// Immutable access to a container.
    pub fn container(&self, node: NodeId) -> Option<&ServiceContainer> {
        self.containers.get(&node)
    }

    /// Mutable access to a container.
    pub fn container_mut(&mut self, node: NodeId) -> Option<&mut ServiceContainer> {
        self.containers.get_mut(&node)
    }

    /// Crashes a node: the container disappears without a `Bye` and its
    /// network endpoint is removed (failover experiments, C6).
    pub fn crash_node(&mut self, node: NodeId) {
        self.containers.remove(&node);
        self.order.retain(|n| *n != node);
        self.net.remove_node(node.0);
    }

    /// Gracefully stops one node (emits `Bye`).
    pub fn stop_node(&mut self, node: NodeId) {
        if let Some(c) = self.containers.get_mut(&node) {
            c.stop(Micros(self.now_us));
        }
    }

    /// Advances virtual time by one tick: delivers due datagrams, then
    /// ticks every container in registration order.
    pub fn step(&mut self) {
        self.now_us += self.tick_us;
        self.net.advance_to(self.now_us);
        let now = Micros(self.now_us);
        for node in &self.order {
            if let Some(c) = self.containers.get_mut(node) {
                c.tick(now);
            }
        }
    }

    /// Runs until virtual time `t_us`.
    pub fn run_until_us(&mut self, t_us: u64) {
        while self.now_us < t_us {
            self.step();
        }
    }

    /// Runs for an additional `ms` milliseconds of virtual time.
    pub fn run_for_millis(&mut self, ms: u64) {
        let target = self.now_us + ms * 1_000;
        self.run_until_us(target);
    }

    /// Runs for an additional duration of virtual time.
    pub fn run_for(&mut self, d: ProtoDuration) {
        let target = self.now_us + d.as_micros();
        self.run_until_us(target);
    }

    /// Steps the simulation until `pred` holds or `timeout` of virtual
    /// time has elapsed; returns whether the predicate was satisfied.
    ///
    /// This is the convergence-driven alternative to open-loop
    /// [`run_for_millis`](Self::run_for_millis) waits: tests state *what*
    /// they wait for instead of padding *how long*, so they neither flake
    /// under slowed convergence nor sleep past it.
    ///
    /// ```
    /// use marea_core::{ContainerConfig, SimHarness};
    /// use marea_netsim::NetConfig;
    /// use marea_protocol::{NodeId, ProtoDuration};
    ///
    /// let mut h = SimHarness::new(NetConfig::default());
    /// h.add_container(ContainerConfig::new("a", NodeId(1)));
    /// h.add_container(ContainerConfig::new("b", NodeId(2)));
    /// h.start_all();
    /// let discovered = h.run_until(
    ///     |h| h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)),
    ///     ProtoDuration::from_secs(2),
    /// );
    /// assert!(discovered);
    /// ```
    pub fn run_until<F>(&mut self, mut pred: F, timeout: ProtoDuration) -> bool
    where
        F: FnMut(&SimHarness) -> bool,
    {
        let deadline = self.now_us + timeout.as_micros();
        loop {
            if pred(self) {
                return true;
            }
            if self.now_us >= deadline {
                return false;
            }
            self.step();
        }
    }
}

/// Drives one container against the wall clock (for the UDP transport and
/// interactive examples).
#[derive(Debug)]
pub struct RealtimeDriver {
    container: ServiceContainer,
    clock: SystemClock,
    tick: std::time::Duration,
}

impl RealtimeDriver {
    /// Wraps a container; `tick` is the polling cadence (1 ms is typical).
    pub fn new(container: ServiceContainer, tick: std::time::Duration) -> Self {
        RealtimeDriver { container, clock: SystemClock::new(), tick }
    }

    /// Starts the container at the current wall time.
    pub fn start(&mut self) {
        let now = self.clock.now();
        self.container.start(now);
    }

    /// Runs the tick loop for `duration`, sleeping between ticks.
    pub fn run_for(&mut self, duration: std::time::Duration) {
        let deadline = std::time::Instant::now() + duration;
        while std::time::Instant::now() < deadline {
            self.container.tick(self.clock.now());
            std::thread::sleep(self.tick);
        }
    }

    /// Stops the container.
    pub fn stop(&mut self) {
        let now = self.clock.now();
        self.container.stop(now);
    }

    /// Access to the wrapped container.
    pub fn container(&self) -> &ServiceContainer {
        &self.container
    }

    /// Mutable access to the wrapped container.
    pub fn container_mut(&mut self) -> &mut ServiceContainer {
        &mut self.container
    }
}
