//! Drivers: the deterministic simulation harness and the wall-clock driver.

use std::collections::HashMap;
use std::fmt;

use marea_netsim::{NetConfig, SimNet};
use marea_protocol::{Micros, NodeId, ProtoDuration};
use marea_transport::SimLanTransport;

use crate::clock::{Clock, SystemClock};
use crate::container::{ContainerConfig, ServiceContainer};
use crate::metrics::{MetricsConfig, MetricsSampler};
use crate::service::Service;
use crate::trace::{TraceEvent, TraceId, TraceKind, TraceRing};

/// Recreates a service instance for a restarted container.
///
/// [`SimHarness::restart_node`] rebuilds a crashed (or stopped) node from
/// its blueprint: the original [`ContainerConfig`] plus one factory per
/// service registered through
/// [`add_service_factory`](SimHarness::add_service_factory). Closures work
/// directly:
///
/// ```
/// use marea_core::{ContainerConfig, Service, SimHarness};
/// use marea_netsim::NetConfig;
/// use marea_protocol::NodeId;
/// # struct Noop;
/// # impl Service for Noop {
/// #     fn descriptor(&self) -> marea_core::ServiceDescriptor {
/// #         marea_core::ServiceDescriptor::builder("noop").build()
/// #     }
/// # }
///
/// let mut h = SimHarness::new(NetConfig::default());
/// h.add_container(ContainerConfig::new("fcs", NodeId(1)));
/// h.add_service_factory(NodeId(1), || Box::new(Noop) as Box<dyn Service>);
/// h.start_all();
/// h.crash_node(NodeId(1));
/// assert!(h.restart_node(NodeId(1)), "rebuilt from the blueprint");
/// ```
pub trait ServiceFactory: Send {
    /// Builds a fresh service instance.
    fn create(&self) -> Box<dyn Service>;
}

impl<F> ServiceFactory for F
where
    F: Fn() -> Box<dyn Service> + Send,
{
    fn create(&self) -> Box<dyn Service> {
        self()
    }
}

/// Per-node clock-skew state: a piecewise-linear local clock that drifts
/// against virtual time by `ppm` parts per million from `base_real` on.
#[derive(Debug, Clone, Copy)]
struct Skew {
    base_real: u64,
    base_local: u64,
    ppm: i64,
}

impl Skew {
    fn local(&self, now_us: u64) -> u64 {
        let delta = now_us.saturating_sub(self.base_real) as i128;
        let drift = delta * self.ppm as i128 / 1_000_000;
        let local = self.base_local as i128 + delta + drift;
        local.max(0) as u64
    }
}

/// Drives a fleet of containers over a simulated LAN on virtual time.
///
/// Every container is ticked at a fixed cadence while the network delivers
/// datagrams in between — the same seed always reproduces the same run,
/// which is what makes the integration tests and benches exact.
///
/// # Examples
///
/// ```
/// use marea_core::{ContainerConfig, SimHarness};
/// use marea_netsim::NetConfig;
/// use marea_protocol::NodeId;
///
/// let mut h = SimHarness::new(NetConfig::default());
/// h.add_container(ContainerConfig::new("fcs", NodeId(1)));
/// h.add_container(ContainerConfig::new("payload", NodeId(2)));
/// h.start_all();
/// h.run_for_millis(50);
/// assert!(h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)));
/// ```
pub struct SimHarness {
    net: SimNet,
    containers: HashMap<NodeId, ServiceContainer>,
    order: Vec<NodeId>,
    /// Restart blueprints: the config every container was created with.
    configs: HashMap<NodeId, ContainerConfig>,
    /// Restart blueprints: service factories per node (only services added
    /// through [`SimHarness::add_service_factory`] survive a restart).
    factories: HashMap<NodeId, Vec<Box<dyn ServiceFactory>>>,
    /// Lives per node: the incarnation the *next* restart announces.
    incarnations: HashMap<NodeId, u64>,
    /// Per-node clock skew (chaos: drifting avionics clocks).
    skews: HashMap<NodeId, Skew>,
    /// Black boxes of crashed nodes: the flight-recorder ring survives the
    /// container teardown and is re-adopted on restart.
    stashed_rings: HashMap<NodeId, TraceRing>,
    /// Periodic counter sampler ([`enable_metrics`](Self::enable_metrics));
    /// `None` (the default) costs one branch per step.
    metrics: Option<MetricsSampler>,
    tick_us: u64,
    now_us: u64,
}

impl fmt::Debug for SimHarness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimHarness")
            .field("now_us", &self.now_us)
            .field("tick_us", &self.tick_us)
            .field("nodes", &self.order)
            .finish_non_exhaustive()
    }
}

impl SimHarness {
    /// Creates a harness over a fresh simulated network.
    pub fn new(net_config: NetConfig) -> Self {
        SimHarness {
            net: SimNet::new(net_config),
            containers: HashMap::new(),
            order: Vec::new(),
            configs: HashMap::new(),
            factories: HashMap::new(),
            incarnations: HashMap::new(),
            skews: HashMap::new(),
            stashed_rings: HashMap::new(),
            metrics: None,
            tick_us: 1_000,
            now_us: 0,
        }
    }

    /// Changes the container tick cadence (default 1 ms).
    pub fn set_tick_us(&mut self, tick_us: u64) {
        self.tick_us = tick_us.max(1);
    }

    /// The underlying simulated network (for fault injection and stats).
    pub fn network(&self) -> &SimNet {
        &self.net
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        Micros(self.now_us)
    }

    /// Adds a container attached to the simulated LAN. The config is kept
    /// as the node's restart blueprint (see
    /// [`restart_node`](Self::restart_node)).
    pub fn add_container(&mut self, config: ContainerConfig) -> NodeId {
        let node = config.node;
        let transport = SimLanTransport::attach(&self.net, node.0);
        let container = ServiceContainer::new(config.clone(), Box::new(transport));
        self.configs.insert(node, config);
        self.incarnations.entry(node).or_insert(1);
        self.containers.insert(node, container);
        self.order.push(node);
        node
    }

    /// Adds a service to the container on `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is unknown or the service collides with an
    /// existing one — harness wiring errors are programming errors.
    pub fn add_service(&mut self, node: NodeId, service: Box<dyn Service>) {
        self.containers
            .get_mut(&node)
            .expect("node registered with add_container")
            .add_service(service)
            .expect("service registration");
    }

    /// Adds a service *and* remembers how to rebuild it: the factory is
    /// invoked once now and again on every
    /// [`restart_node`](Self::restart_node). Services added with the plain
    /// [`add_service`](Self::add_service) do not come back after a restart.
    ///
    /// # Panics
    ///
    /// Panics like [`add_service`](Self::add_service) on wiring errors.
    pub fn add_service_factory<F>(&mut self, node: NodeId, factory: F)
    where
        F: ServiceFactory + 'static,
    {
        self.add_service(node, factory.create());
        self.factories.entry(node).or_default().push(Box::new(factory));
    }

    /// Starts every container at the current virtual time.
    pub fn start_all(&mut self) {
        for i in 0..self.order.len() {
            let node = self.order[i];
            let now = Micros(self.local_time(node));
            self.containers.get_mut(&node).expect("present").start(now);
        }
    }

    /// Live container nodes, in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.containers.keys().copied().collect();
        v.sort();
        v
    }

    /// Installs (or changes) a clock skew on `node`: its container is
    /// ticked with a local clock drifting `ppm` parts-per-million against
    /// virtual time from this moment on. The local clock stays monotonic
    /// across changes for any `ppm > -1_000_000`.
    pub fn set_clock_skew_ppm(&mut self, node: NodeId, ppm: i64) {
        let base_local = self.local_time(node);
        self.skews.insert(node, Skew { base_real: self.now_us, base_local, ppm });
    }

    /// The local (possibly skewed) clock of `node` at the current virtual
    /// time.
    pub fn local_time(&self, node: NodeId) -> u64 {
        match self.skews.get(&node) {
            Some(s) => s.local(self.now_us),
            None => self.now_us,
        }
    }

    /// Immutable access to a container.
    pub fn container(&self, node: NodeId) -> Option<&ServiceContainer> {
        self.containers.get(&node)
    }

    /// The flight-recorder ring of `node`: the live container's, or the
    /// stashed black box if the node is currently crashed.
    pub fn trace_ring(&self, node: NodeId) -> Option<&TraceRing> {
        match self.containers.get(&node) {
            Some(c) => Some(c.trace_ring()),
            None => self.stashed_rings.get(&node),
        }
    }

    /// Every known node's flight-recorder ring (live or stashed), in node
    /// order — the input [`assemble_chain`](crate::trace::assemble_chain)
    /// expects.
    pub fn trace_rings(&self) -> Vec<(NodeId, &TraceRing)> {
        let mut nodes: Vec<NodeId> = self.configs.keys().copied().collect();
        nodes.sort();
        nodes.into_iter().filter_map(|n| self.trace_ring(n).map(|r| (n, r))).collect()
    }

    /// The cross-node causal chain of `trace`, assembled over every ring.
    pub fn trace_chain(&self, trace: TraceId) -> Vec<(NodeId, TraceEvent)> {
        crate::trace::assemble_chain(&self.trace_rings(), trace)
    }

    /// Mutable access to a container.
    pub fn container_mut(&mut self, node: NodeId) -> Option<&mut ServiceContainer> {
        self.containers.get_mut(&node)
    }

    /// Crashes a node: the container disappears without a `Bye` and its
    /// network endpoint is removed (failover experiments, C6) — a crashed
    /// box must stop receiving, not accumulate an unread inbox. The
    /// restart blueprint survives, so [`restart_node`](Self::restart_node)
    /// can bring the node back later.
    pub fn crash_node(&mut self, node: NodeId) {
        if let Some(mut container) = self.containers.remove(&node) {
            if self.configs.get(&node).is_some_and(|c| c.trace.enabled) {
                let incarnation = container.incarnation();
                let mut ring = container.take_trace_ring();
                ring.push(TraceEvent {
                    at: Micros(self.local_time(node)),
                    incarnation,
                    kind: TraceKind::NodeCrash,
                    trace: TraceId::NONE,
                    peer: None,
                    seq: 0,
                    name: None,
                });
                if let Some(older) = self.stashed_rings.remove(&node) {
                    ring.adopt(older);
                }
                self.stashed_rings.insert(node, ring);
            }
        }
        self.order.retain(|n| *n != node);
        self.net.remove_node(node.0);
    }

    /// Rebuilds a node from its blueprint: re-attaches the network socket,
    /// recreates the container with a bumped incarnation, re-registers
    /// every factory-built service and starts it — which re-announces the
    /// catalogue so peers purge the previous life and re-converge.
    ///
    /// Returns `false` when the node was never added through
    /// [`add_container`](Self::add_container). A still-running container
    /// is crashed first (abrupt restart, no `Bye`).
    pub fn restart_node(&mut self, node: NodeId) -> bool {
        let Some(config) = self.configs.get(&node).cloned() else {
            return false;
        };
        if self.containers.contains_key(&node) {
            self.crash_node(node);
        }
        let incarnation = {
            let life = self.incarnations.entry(node).or_insert(1);
            *life += 1;
            *life
        };
        // Socket rebind: `SimNet::socket` re-registers the removed node
        // with a fresh, empty inbox.
        let transport = SimLanTransport::attach(&self.net, node.0);
        let tracing = config.trace;
        let restart_at = Micros(self.local_time(node));
        let mut container = ServiceContainer::new(config, Box::new(transport));
        container.set_incarnation(incarnation);
        if tracing.enabled {
            // Black-box continuity: the previous lives' tail (if any) plus
            // a restart marker precede everything the new life records.
            let mut older = self
                .stashed_rings
                .remove(&node)
                .unwrap_or_else(|| TraceRing::new(tracing.capacity));
            older.push(TraceEvent {
                at: restart_at,
                incarnation,
                kind: TraceKind::NodeRestart,
                trace: TraceId::NONE,
                peer: None,
                seq: 0,
                name: None,
            });
            container.adopt_trace_ring(older);
        }
        if let Some(factories) = self.factories.get(&node) {
            for factory in factories {
                container.add_service(factory.create()).expect("factory service registration");
            }
        }
        container.start(restart_at);
        self.containers.insert(node, container);
        self.order.push(node);
        true
    }

    /// Gracefully stops one node (emits `Bye`) and detaches it from the
    /// network — a stopped box must not keep accumulating datagrams.
    pub fn stop_node(&mut self, node: NodeId) {
        let now = Micros(self.local_time(node));
        if let Some(c) = self.containers.get_mut(&node) {
            c.stop(now);
            self.net.remove_node(node.0);
        }
    }

    /// Turns on the periodic metrics sampler: from now on, every time
    /// `config.period` of virtual time elapses, one [`MetricsFrame`]
    /// per container and one [`LinkFrame`] per active link are appended
    /// to the bounded timeline (read back through
    /// [`metrics`](Self::metrics)). Replaces any earlier sampler.
    ///
    /// [`MetricsFrame`]: crate::metrics::MetricsFrame
    /// [`LinkFrame`]: crate::metrics::LinkFrame
    pub fn enable_metrics(&mut self, config: MetricsConfig) {
        self.metrics = Some(MetricsSampler::new(config, Micros(self.now_us)));
    }

    /// The metrics timeline, if sampling is enabled.
    pub fn metrics(&self) -> Option<&MetricsSampler> {
        self.metrics.as_ref()
    }

    /// Stops sampling and takes the timeline out of the harness.
    pub fn take_metrics(&mut self) -> Option<MetricsSampler> {
        self.metrics.take()
    }

    /// Advances virtual time by one tick: delivers due datagrams, then
    /// ticks every container in registration order (each at its own —
    /// possibly skewed — local clock), then samples the metrics
    /// timeline if one is enabled and due.
    pub fn step(&mut self) {
        self.now_us += self.tick_us;
        self.net.advance_to(self.now_us);
        for i in 0..self.order.len() {
            let node = self.order[i];
            let now = Micros(self.local_time(node));
            if let Some(c) = self.containers.get_mut(&node) {
                c.tick(now);
            }
        }
        if let Some(sampler) = self.metrics.as_mut() {
            if sampler.due(Micros(self.now_us)) {
                sampler.sample_fleet(Micros(self.now_us), &self.containers, &self.net);
            }
        }
    }

    /// Runs until virtual time `t_us`.
    pub fn run_until_us(&mut self, t_us: u64) {
        while self.now_us < t_us {
            self.step();
        }
    }

    /// Runs for an additional `ms` milliseconds of virtual time.
    pub fn run_for_millis(&mut self, ms: u64) {
        let target = self.now_us + ms * 1_000;
        self.run_until_us(target);
    }

    /// Runs for an additional duration of virtual time.
    pub fn run_for(&mut self, d: ProtoDuration) {
        let target = self.now_us + d.as_micros();
        self.run_until_us(target);
    }

    /// Steps the simulation until `pred` holds or `timeout` of virtual
    /// time has elapsed; returns whether the predicate was satisfied.
    ///
    /// This is the convergence-driven alternative to open-loop
    /// [`run_for_millis`](Self::run_for_millis) waits: tests state *what*
    /// they wait for instead of padding *how long*, so they neither flake
    /// under slowed convergence nor sleep past it.
    ///
    /// ```
    /// use marea_core::{ContainerConfig, SimHarness};
    /// use marea_netsim::NetConfig;
    /// use marea_protocol::{NodeId, ProtoDuration};
    ///
    /// let mut h = SimHarness::new(NetConfig::default());
    /// h.add_container(ContainerConfig::new("a", NodeId(1)));
    /// h.add_container(ContainerConfig::new("b", NodeId(2)));
    /// h.start_all();
    /// let discovered = h.run_until(
    ///     |h| h.container(NodeId(1)).unwrap().directory().node_alive(NodeId(2)),
    ///     ProtoDuration::from_secs(2),
    /// );
    /// assert!(discovered);
    /// ```
    pub fn run_until<F>(&mut self, mut pred: F, timeout: ProtoDuration) -> bool
    where
        F: FnMut(&SimHarness) -> bool,
    {
        let deadline = self.now_us + timeout.as_micros();
        loop {
            if pred(self) {
                return true;
            }
            if self.now_us >= deadline {
                return false;
            }
            self.step();
        }
    }
}

/// Drives one container against the wall clock (for the UDP transport and
/// interactive examples).
#[derive(Debug)]
pub struct RealtimeDriver {
    container: ServiceContainer,
    clock: SystemClock,
    tick: std::time::Duration,
}

impl RealtimeDriver {
    /// Wraps a container; `tick` is the polling cadence (1 ms is typical).
    pub fn new(container: ServiceContainer, tick: std::time::Duration) -> Self {
        RealtimeDriver { container, clock: SystemClock::new(), tick }
    }

    /// Starts the container at the current wall time.
    pub fn start(&mut self) {
        let now = self.clock.now();
        self.container.start(now);
    }

    /// Runs the tick loop for `duration`, sleeping between ticks.
    pub fn run_for(&mut self, duration: std::time::Duration) {
        // marea-lint: allow(D2): RealtimeDriver is the wall-clock driver; sim paths never run this
        let deadline = std::time::Instant::now() + duration;
        // marea-lint: allow(D2): RealtimeDriver is the wall-clock driver; sim paths never run this
        while std::time::Instant::now() < deadline {
            self.container.tick(self.clock.now());
            // marea-lint: allow(D2): paces the wall-clock tick loop of the real-time driver
            std::thread::sleep(self.tick);
        }
    }

    /// Stops the container.
    pub fn stop(&mut self) {
        let now = self.clock.now();
        self.container.stop(now);
    }

    /// Access to the wrapped container.
    pub fn container(&self) -> &ServiceContainer {
        &self.container
    }

    /// Mutable access to the wrapped container.
    pub fn container_mut(&mut self) -> &mut ServiceContainer {
        &mut self.container
    }
}
