//! Core-layer error types.

use std::error::Error;
use std::fmt;

use marea_presentation::{Name, TypeMismatch};

/// Error raised by container-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainerError {
    /// A service with the same name is already hosted here.
    DuplicateService(Name),
    /// A provision name is already provided by another local service.
    DuplicateProvision(Name),
    /// The container was asked to operate before `start` or after `stop`.
    NotRunning,
    /// An effect referenced a provision the acting service never declared.
    UndeclaredProvision(Name),
    /// A published value did not conform to the declared schema.
    SchemaViolation(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::DuplicateService(n) => write!(f, "service `{n}` already hosted"),
            ContainerError::DuplicateProvision(n) => {
                write!(f, "provision `{n}` already provided locally")
            }
            ContainerError::NotRunning => write!(f, "container is not running"),
            ContainerError::UndeclaredProvision(n) => {
                write!(f, "provision `{n}` was not declared by this service")
            }
            ContainerError::SchemaViolation(e) => write!(f, "schema violation: {e}"),
        }
    }
}

impl Error for ContainerError {}

/// Why a remote invocation concluded without a normal return value.
///
/// Delivered to the calling service through
/// [`Service::on_reply`](crate::Service::on_reply).
#[derive(Debug, Clone, PartialEq)]
pub enum CallError {
    /// No provider for the function is currently known.
    NoProvider,
    /// The callee raised an application-level error.
    App(String),
    /// The target existed but reported no such function.
    NoSuchFunction,
    /// The target service is not available (stopped/failed).
    ServiceUnavailable,
    /// No reply within the deadline, after exhausting redundant providers.
    Timeout,
    /// Arguments did not match the declared signature.
    BadArguments(String),
    /// The reply value did not match the return schema the typed port
    /// declared (surfaced by
    /// [`TypedCallHandle::decode`](crate::TypedCallHandle::decode)).
    TypeMismatch(TypeMismatch),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::NoProvider => write!(f, "no provider for function"),
            CallError::App(e) => write!(f, "application error: {e}"),
            CallError::NoSuchFunction => write!(f, "no such function at provider"),
            CallError::ServiceUnavailable => write!(f, "provider service unavailable"),
            CallError::Timeout => write!(f, "call timed out"),
            CallError::BadArguments(e) => write!(f, "bad arguments: {e}"),
            CallError::TypeMismatch(e) => write!(f, "reply {e}"),
        }
    }
}

impl Error for CallError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let n = Name::new("gps").unwrap();
        assert_eq!(ContainerError::DuplicateService(n).to_string(), "service `gps` already hosted");
        assert_eq!(CallError::Timeout.to_string(), "call timed out");
    }
}
