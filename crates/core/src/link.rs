//! Per-peer reliable channels: the container-to-container substrate for
//! events and remote invocations.
//!
//! One [`ReliableLink`] exists per remote node a container exchanges
//! reliable traffic with. It owns an ARQ sender/receiver pair, queues
//! messages while the window is full, and batches acknowledgements (one ack
//! per tick with new data, mirroring how the paper's "specific
//! retransmission mechanism in the application layer" avoids per-packet ack
//! overhead).

use std::collections::{BTreeMap, VecDeque};

use bytes::Bytes;

use marea_protocol::arq::{ArqConfig, ArqReceiver, ArqSender, ArqStats};
use marea_protocol::fec::{FecRate, FecReceiver, FecRxStats, FecSender, FecTxStats};
use marea_protocol::{Message, Micros, NodeId, ProtoDuration};

/// Partial FEC groups older than this are flushed (parity emitted) so
/// sparse reliable traffic still gets repair shards with bounded delay.
const FEC_FLUSH_AFTER: ProtoDuration = ProtoDuration(5_000);

/// The FEC endpoint of one link: coder pair plus the flush timer.
///
/// The receiver half is always live (shards decode statelessly), the
/// sender half only wraps once a peer capability above `Off` has been
/// negotiated.
#[derive(Debug)]
struct LinkFec {
    tx: FecSender,
    rx: FecReceiver,
    group_opened_at: Option<Micros>,
}

/// Reliable, ordered, exactly-once message channel to one peer node.
#[derive(Debug)]
pub struct ReliableLink {
    peer: NodeId,
    tx: ArqSender,
    rx: ArqReceiver,
    backlog: VecDeque<Bytes>,
    ack_due: bool,
    fec: LinkFec,
    /// ARQ seqs retransmitted since the last [`ReliableLink::take_retransmits`]
    /// drain (flight-recorder observation, not protocol state).
    retx_log: Vec<u64>,
    /// First-retransmission time per still-unacked ARQ seq; ordered map so
    /// the ack sweep below is deterministic.
    retx_pending: BTreeMap<u64, Micros>,
    /// Completed first-retransmit→ACK recovery durations (µs) since the
    /// last [`ReliableLink::take_recoveries`] drain.
    recovery_log: Vec<u64>,
}

impl ReliableLink {
    /// Creates the link to `peer`. FEC starts at [`FecRate::Off`] until
    /// [`ReliableLink::negotiate_fec`] learns the peer's capability.
    pub fn new(peer: NodeId, config: ArqConfig) -> Self {
        ReliableLink {
            peer,
            tx: ArqSender::new(0, config),
            rx: ArqReceiver::new(0, 256),
            backlog: VecDeque::new(),
            ack_due: false,
            fec: LinkFec {
                tx: FecSender::new(0, FecRate::Off),
                rx: FecReceiver::new(),
                group_opened_at: None,
            },
            retx_log: Vec::new(),
            retx_pending: BTreeMap::new(),
            recovery_log: Vec::new(),
        }
    }

    /// The remote node.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Applies the negotiated FEC ceiling (the weaker of both ends'
    /// advertised capabilities). Idempotent; raising or lowering the cap
    /// rebuilds the sender's controller but keeps group ids monotonic so
    /// the peer's decoder ring stays coherent.
    pub fn negotiate_fec(&mut self, cap: FecRate) {
        if self.fec.tx.cap() == cap {
            return;
        }
        self.fec.tx.set_cap(cap);
        self.fec.group_opened_at = None;
    }

    /// The code rate currently in force on the send side.
    pub fn fec_rate(&self) -> FecRate {
        self.fec.tx.rate()
    }

    /// Sender-side FEC counters.
    pub fn fec_tx_stats(&self) -> FecTxStats {
        self.fec.tx.stats()
    }

    /// Receiver-side FEC counters.
    pub fn fec_rx_stats(&self) -> FecRxStats {
        self.fec.rx.stats()
    }

    /// Queues a tagged message payload for reliable delivery; returns wire
    /// messages ready to send now (possibly none if the window is full).
    pub fn send(&mut self, payload: Bytes, now: Micros) -> Vec<Message> {
        self.backlog.push_back(payload);
        let out = self.drain_backlog(now);
        self.code_out(out, now)
    }

    fn drain_backlog(&mut self, now: Micros) -> Vec<Message> {
        let mut out = Vec::new();
        while self.tx.can_send() {
            let Some(p) = self.backlog.pop_front() else { break };
            out.push(self.tx.send(p, now).expect("can_send checked"));
        }
        out
    }

    /// Routes freshly produced ARQ wire messages through the FEC sender:
    /// `RelData` (first transmissions *and* retransmissions) become data
    /// shards, everything else passes through bare.
    fn code_out(&mut self, msgs: Vec<Message>, now: Micros) -> Vec<Message> {
        if self.fec.tx.rate() == FecRate::Off {
            return msgs;
        }
        let mut out = Vec::with_capacity(msgs.len() + 1);
        for m in msgs {
            match m {
                data @ Message::RelData { .. } => {
                    let had_open = self.fec.tx.has_open_group();
                    self.fec.tx.wrap(data, &mut out);
                    if !had_open && self.fec.tx.has_open_group() {
                        self.fec.group_opened_at = Some(now);
                    } else if !self.fec.tx.has_open_group() {
                        self.fec.group_opened_at = None;
                    }
                }
                other => out.push(other),
            }
        }
        out
    }

    /// Processes an incoming `FecShard`; returns the tagged inner wire
    /// messages now available — the shard's own payload when it is a
    /// fresh data shard, plus anything parity recovery rebuilt.
    pub fn on_fec_shard(
        &mut self,
        group: u64,
        index: u8,
        k: u8,
        r: u8,
        payload: &Bytes,
    ) -> Vec<Bytes> {
        let mut inner = Vec::new();
        self.fec.rx.on_shard(group, index, k, r, payload, &mut inner);
        inner
    }

    /// Processes an incoming `RelData`; returns payloads now deliverable in
    /// order.
    pub fn on_data(&mut self, seq: u64, payload: Bytes) -> Vec<Bytes> {
        self.ack_due = true;
        self.rx.on_data(seq, payload)
    }

    /// Processes an incoming `RelAck` (with its piggybacked FEC loss
    /// report, which drives the adaptive code-rate controller).
    pub fn on_ack(
        &mut self,
        cumulative: u64,
        sack: u64,
        loss_permille: u16,
        now: Micros,
    ) -> Vec<Message> {
        self.fec.tx.on_loss_report(loss_permille);
        self.tx.on_ack(cumulative, sack);
        // Retransmitted seqs the cumulative ack just covered have
        // recovered: close their first-retransmit→ACK timing.
        let acked: Vec<u64> = self.retx_pending.range(..cumulative).map(|(s, _)| *s).collect();
        for seq in acked {
            if let Some(first) = self.retx_pending.remove(&seq) {
                self.recovery_log.push(now.saturating_since(first).as_micros());
            }
        }
        // Window may have opened.
        let out = self.drain_backlog(now);
        self.code_out(out, now)
    }

    /// Tick: retransmissions due, failures, at most one pending ack, and
    /// the FEC flush of any partial group past its age budget.
    ///
    /// Returns `(wire_messages, failed_payload_count)`.
    pub fn poll(&mut self, now: Micros) -> (Vec<Message>, Vec<u64>) {
        let (fresh, failed) = self.tx.poll(now);
        // Everything the ARQ sender re-emits from poll is a retransmission
        // (first transmissions leave through `send`): log them for the
        // flight recorder and start the recovery clock on first retransmit.
        for m in &fresh {
            if let Message::RelData { seq, .. } = m {
                self.retx_log.push(*seq);
                self.retx_pending.entry(*seq).or_insert(now);
            }
        }
        for seq in &failed {
            self.retx_pending.remove(seq);
        }
        let mut out = Vec::new();
        out.extend(self.code_out(fresh, now));
        let drained = self.drain_backlog(now);
        out.extend(self.code_out(drained, now));
        if let Some(opened) = self.fec.group_opened_at {
            if now.saturating_since(opened) >= FEC_FLUSH_AFTER {
                self.fec.tx.flush(&mut out);
                self.fec.group_opened_at = None;
            }
        }
        if self.ack_due {
            self.ack_due = false;
            out.push(self.rx.make_ack_with_loss(self.fec.rx.loss_permille()));
        }
        (out, failed)
    }

    /// Sender counters (for the C1/C3 benches).
    pub fn stats(&self) -> ArqStats {
        self.tx.stats()
    }

    /// Messages waiting for a window slot.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Messages in flight awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.tx.inflight_len()
    }

    /// `true` when nothing is queued, in flight, or awaiting ack emission.
    pub fn is_quiescent(&self) -> bool {
        self.backlog.is_empty() && self.tx.inflight_len() == 0 && !self.ack_due
    }

    /// `true` while [`ReliableLink::poll`] could still produce output:
    /// traffic queued, in flight, or awaiting ack emission — or a partial
    /// FEC group whose age-triggered parity flush is pending. A link that
    /// does not need polling can be left out of the per-tick poll sweep
    /// entirely; every input that re-activates it (send, data, ack)
    /// re-registers it with the container's active set.
    pub fn needs_poll(&self) -> bool {
        !self.is_quiescent() || self.fec.group_opened_at.is_some()
    }

    /// Drains the ARQ seqs retransmitted since the last call (the
    /// container turns these into `rel_retransmit` trace events).
    pub fn take_retransmits(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.retx_log)
    }

    /// Drains completed first-retransmit→ACK recovery durations in µs
    /// (the container feeds these to the RTO-recovery histogram).
    pub fn take_recoveries(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.recovery_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_protocol::ProtoDuration;

    fn link(peer: u32) -> ReliableLink {
        ReliableLink::new(
            NodeId(peer),
            ArqConfig {
                window: 4,
                initial_rto: ProtoDuration::from_millis(10),
                max_rto: ProtoDuration::from_millis(100),
                max_attempts: 5,
            },
        )
    }

    #[test]
    fn backlog_drains_as_window_opens() {
        let mut l = link(2);
        let mut sent = Vec::new();
        for i in 0..6u8 {
            sent.extend(l.send(Bytes::from(vec![i]), Micros::ZERO));
        }
        assert_eq!(sent.len(), 4, "window of 4");
        assert_eq!(l.backlog_len(), 2);
        // Ack the first two: backlog drains.
        let more = l.on_ack(2, 0, 0, Micros(1));
        assert_eq!(more.len(), 2);
        assert_eq!(l.backlog_len(), 0);
    }

    #[test]
    fn ack_emitted_once_per_poll_after_data() {
        let mut l = link(2);
        let delivered = l.on_data(0, Bytes::from_static(b"x"));
        assert_eq!(delivered.len(), 1);
        let (out, _) = l.poll(Micros(1));
        assert!(out.iter().any(|m| matches!(m, Message::RelAck { .. })));
        let (out2, _) = l.poll(Micros(2));
        assert!(!out2.iter().any(|m| matches!(m, Message::RelAck { .. })), "no duplicate ack");
    }

    #[test]
    fn quiescence() {
        let mut l = link(2);
        assert!(l.is_quiescent());
        l.send(Bytes::from_static(b"x"), Micros::ZERO);
        assert!(!l.is_quiescent());
        l.on_ack(1, 0, 0, Micros(1));
        assert!(l.is_quiescent());
    }

    #[test]
    fn needs_poll_tracks_open_fec_group() {
        let mut l = link(2);
        assert!(!l.needs_poll(), "fresh link: nothing to poll");
        l.negotiate_fec(FecRate::Medium);
        l.send(Bytes::from_static(b"solo"), Micros::ZERO);
        l.on_ack(1, 0, 0, Micros(1));
        assert!(l.is_quiescent(), "nothing queued or in flight");
        assert!(l.needs_poll(), "open partial FEC group still needs the age flush");
        let (out, _) = l.poll(Micros(10_000));
        assert!(out.iter().any(|m| matches!(m, Message::FecShard { .. })));
        assert!(!l.needs_poll(), "flushed: the link may leave the poll sweep");
    }

    #[test]
    fn without_negotiation_the_wire_stays_bare() {
        let mut l = link(2);
        let out = l.send(Bytes::from_static(b"x"), Micros::ZERO);
        assert!(out.iter().all(|m| matches!(m, Message::RelData { .. })));
        assert_eq!(l.fec_rate(), FecRate::Off);
    }

    #[test]
    fn negotiated_link_wraps_reldata_into_shards() {
        let mut l = link(2);
        l.negotiate_fec(FecRate::Medium);
        // The controller starts at the Light floor (8,1); a loss report
        // above 20‰ tightens it to the Medium cap's (4,1) geometry.
        l.on_ack(0, 0, 50, Micros::ZERO);
        assert_eq!(l.fec_rate(), FecRate::Medium);
        let mut out = Vec::new();
        for i in 0..4u8 {
            out.extend(l.send(Bytes::from(vec![i]), Micros::ZERO));
        }
        let data = out
            .iter()
            .filter(|m| matches!(m, Message::FecShard { index, .. } if index & 0x80 == 0))
            .count();
        let parity = out
            .iter()
            .filter(|m| matches!(m, Message::FecShard { index, .. } if index & 0x80 != 0))
            .count();
        assert_eq!(data, 4, "every RelData coded: {out:?}");
        assert_eq!(parity, 1, "Medium closes the (4,1) group with one parity shard");
        assert_eq!(l.fec_tx_stats().data_shards, 4);
    }

    #[test]
    fn partial_group_flushes_after_the_age_budget() {
        let mut l = link(2);
        l.negotiate_fec(FecRate::Medium);
        let out = l.send(Bytes::from_static(b"solo"), Micros::ZERO);
        assert_eq!(out.len(), 1, "one data shard, group still open");
        let (early, _) = l.poll(Micros(1_000));
        assert!(
            !early
                .iter()
                .any(|m| matches!(m, Message::FecShard { index, .. } if index & 0x80 != 0)),
            "no parity before the flush budget: {early:?}"
        );
        let (late, _) = l.poll(Micros(10_000));
        assert!(
            late.iter().any(|m| matches!(m, Message::FecShard { index, .. } if index & 0x80 != 0)),
            "aged partial group must flush parity: {late:?}"
        );
    }

    #[test]
    fn erased_shard_is_rebuilt_and_delivered_in_order() {
        let mut a = link(2);
        let mut b = link(1);
        a.negotiate_fec(FecRate::Medium);
        b.negotiate_fec(FecRate::Medium);
        a.on_ack(0, 0, 50, Micros::ZERO); // tighten Light → Medium (4,1)
        let mut wire = Vec::new();
        for i in 0..4u8 {
            wire.extend(a.send(Bytes::from(vec![i; 3]), Micros::ZERO));
        }
        assert_eq!(wire.len(), 5);
        // Erase the third data shard; b must still deliver all four in order.
        let mut delivered = Vec::new();
        for (i, m) in wire.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let Message::FecShard { group, index, k, r, payload, .. } = m else {
                panic!("coded wire expected: {m:?}");
            };
            for inner in b.on_fec_shard(*group, *index, *k, *r, payload) {
                let Ok(Message::RelData { seq, payload, .. }) = Message::decode_tagged(&inner)
                else {
                    panic!("inner must be RelData");
                };
                delivered.extend(b.on_data(seq, payload));
            }
        }
        assert_eq!(delivered.len(), 4, "erasure repaired without any retransmit");
        assert_eq!(b.fec_rx_stats().recovered, 1);
        for (i, p) in delivered.iter().enumerate() {
            assert_eq!(p.as_ref(), &[i as u8; 3]);
        }
    }

    #[test]
    fn retransmits_are_observed_and_recovery_timed() {
        let mut l = link(2);
        l.send(Bytes::from_static(b"x"), Micros::ZERO);
        assert!(l.take_retransmits().is_empty(), "first transmission is not a retransmit");
        // Past the 10 ms RTO the frame is retransmitted.
        let (out, _) = l.poll(Micros(20_000));
        assert!(out.iter().any(|m| matches!(m, Message::RelData { .. })));
        assert_eq!(l.take_retransmits(), vec![0]);
        assert!(l.take_recoveries().is_empty(), "not yet acked");
        // The ack closes the first-retransmit→ACK recovery timing.
        l.on_ack(1, 0, 0, Micros(25_000));
        assert_eq!(l.take_recoveries(), vec![5_000]);
        assert!(l.take_recoveries().is_empty(), "drained");
    }

    #[test]
    fn acks_carry_the_receiver_loss_estimate() {
        let mut l = link(2);
        l.negotiate_fec(FecRate::Medium);
        let delivered = l.on_data(0, Bytes::from_static(b"x"));
        assert_eq!(delivered.len(), 1);
        let (out, _) = l.poll(Micros(1));
        let ack = out.iter().find(|m| matches!(m, Message::RelAck { .. }));
        assert!(
            matches!(ack, Some(Message::RelAck { loss_permille: 0, .. })),
            "clean link reports 0 loss: {ack:?}"
        );
    }
}
