//! Per-peer reliable channels: the container-to-container substrate for
//! events and remote invocations.
//!
//! One [`ReliableLink`] exists per remote node a container exchanges
//! reliable traffic with. It owns an ARQ sender/receiver pair, queues
//! messages while the window is full, and batches acknowledgements (one ack
//! per tick with new data, mirroring how the paper's "specific
//! retransmission mechanism in the application layer" avoids per-packet ack
//! overhead).

use std::collections::VecDeque;

use bytes::Bytes;

use marea_protocol::arq::{ArqConfig, ArqReceiver, ArqSender, ArqStats};
use marea_protocol::{Message, Micros, NodeId};

/// Reliable, ordered, exactly-once message channel to one peer node.
#[derive(Debug)]
pub struct ReliableLink {
    peer: NodeId,
    tx: ArqSender,
    rx: ArqReceiver,
    backlog: VecDeque<Bytes>,
    ack_due: bool,
}

impl ReliableLink {
    /// Creates the link to `peer`.
    pub fn new(peer: NodeId, config: ArqConfig) -> Self {
        ReliableLink {
            peer,
            tx: ArqSender::new(0, config),
            rx: ArqReceiver::new(0, 256),
            backlog: VecDeque::new(),
            ack_due: false,
        }
    }

    /// The remote node.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Queues a tagged message payload for reliable delivery; returns wire
    /// messages ready to send now (possibly none if the window is full).
    pub fn send(&mut self, payload: Bytes, now: Micros) -> Vec<Message> {
        self.backlog.push_back(payload);
        self.drain_backlog(now)
    }

    fn drain_backlog(&mut self, now: Micros) -> Vec<Message> {
        let mut out = Vec::new();
        while self.tx.can_send() {
            let Some(p) = self.backlog.pop_front() else { break };
            out.push(self.tx.send(p, now).expect("can_send checked"));
        }
        out
    }

    /// Processes an incoming `RelData`; returns payloads now deliverable in
    /// order.
    pub fn on_data(&mut self, seq: u64, payload: Bytes) -> Vec<Bytes> {
        self.ack_due = true;
        self.rx.on_data(seq, payload)
    }

    /// Processes an incoming `RelAck`.
    pub fn on_ack(&mut self, cumulative: u64, sack: u64, now: Micros) -> Vec<Message> {
        self.tx.on_ack(cumulative, sack);
        // Window may have opened.
        self.drain_backlog(now)
    }

    /// Tick: retransmissions due, failures, and at most one pending ack.
    ///
    /// Returns `(wire_messages, failed_payload_count)`.
    pub fn poll(&mut self, now: Micros) -> (Vec<Message>, Vec<u64>) {
        let (mut out, failed) = self.tx.poll(now);
        out.extend(self.drain_backlog(now));
        if self.ack_due {
            self.ack_due = false;
            out.push(self.rx.make_ack());
        }
        (out, failed)
    }

    /// Sender counters (for the C1/C3 benches).
    pub fn stats(&self) -> ArqStats {
        self.tx.stats()
    }

    /// Messages waiting for a window slot.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Messages in flight awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.tx.inflight_len()
    }

    /// `true` when nothing is queued, in flight, or awaiting ack emission.
    pub fn is_quiescent(&self) -> bool {
        self.backlog.is_empty() && self.tx.inflight_len() == 0 && !self.ack_due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_protocol::ProtoDuration;

    fn link(peer: u32) -> ReliableLink {
        ReliableLink::new(
            NodeId(peer),
            ArqConfig {
                window: 4,
                initial_rto: ProtoDuration::from_millis(10),
                max_rto: ProtoDuration::from_millis(100),
                max_attempts: 5,
            },
        )
    }

    #[test]
    fn backlog_drains_as_window_opens() {
        let mut l = link(2);
        let mut sent = Vec::new();
        for i in 0..6u8 {
            sent.extend(l.send(Bytes::from(vec![i]), Micros::ZERO));
        }
        assert_eq!(sent.len(), 4, "window of 4");
        assert_eq!(l.backlog_len(), 2);
        // Ack the first two: backlog drains.
        let more = l.on_ack(2, 0, Micros(1));
        assert_eq!(more.len(), 2);
        assert_eq!(l.backlog_len(), 0);
    }

    #[test]
    fn ack_emitted_once_per_poll_after_data() {
        let mut l = link(2);
        let delivered = l.on_data(0, Bytes::from_static(b"x"));
        assert_eq!(delivered.len(), 1);
        let (out, _) = l.poll(Micros(1));
        assert!(out.iter().any(|m| matches!(m, Message::RelAck { .. })));
        let (out2, _) = l.poll(Micros(2));
        assert!(!out2.iter().any(|m| matches!(m, Message::RelAck { .. })), "no duplicate ack");
    }

    #[test]
    fn quiescence() {
        let mut l = link(2);
        assert!(l.is_quiescent());
        l.send(Bytes::from_static(b"x"), Micros::ZERO);
        assert!(!l.is_quiescent());
        l.on_ack(1, 0, Micros(1));
        assert!(l.is_quiescent());
    }
}
