//! Typed service ports: compile-time-checked handles to declared
//! provisions and subscriptions.
//!
//! The paper's container promises that services interact only through a
//! validated API surface (§3). The dynamic [`ServiceContext::publish`]
//! string API validates at *runtime*; ports move that check to *compile
//! time*: a port is created from (or together with) the descriptor
//! declaration, carries the provision's [`Name`] and its Rust payload
//! type, and is the only thing the typed context methods accept. A service
//! holding a `VarPort<u64>` cannot publish an `f64` — the program does not
//! compile.
//!
//! Ports are plain data (name + phantom type): cheap to clone, freely
//! shareable between the producer and consumer sides of a contract (see
//! `marea-services`' `names` module for a shared mission vocabulary built
//! this way).
//!
//! [`ServiceContext::publish`]: crate::ServiceContext::publish

use std::fmt;
use std::marker::PhantomData;

use marea_presentation::{
    ArgsCodec, DataType, EventPayload, FnRet, Name, TypeMismatch, Value, ValueCodec,
};
use marea_protocol::messages::FunctionSig;

use crate::error::CallError;
use crate::service::CallHandle;

fn port_name(name: &str) -> Name {
    Name::new(name).expect("port name must be a valid name literal")
}

/// Typed handle to a published (or subscribed) variable of schema `T`.
pub struct VarPort<T: ValueCodec> {
    name: Name,
    _marker: PhantomData<fn() -> T>,
}

impl<T: ValueCodec> VarPort<T> {
    /// Creates a port for variable `name` with the schema of `T`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal — ports are static
    /// declarations.
    pub fn new(name: &str) -> Self {
        VarPort { name: port_name(name), _marker: PhantomData }
    }

    /// The variable name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The declared schema (derived from `T`).
    pub fn data_type(&self) -> DataType {
        T::data_type()
    }

    /// `true` when `name` refers to this port's variable — the typed guard
    /// for [`Service::on_variable`](crate::Service::on_variable).
    pub fn matches(&self, name: &Name) -> bool {
        &self.name == name
    }

    /// Decodes an incoming sample, surfacing a structured
    /// [`TypeMismatch`] instead of silently dropping on disagreement.
    pub fn decode(&self, value: &Value) -> Result<T, TypeMismatch> {
        T::from_value(value)
    }
}

impl<T: ValueCodec> Clone for VarPort<T> {
    fn clone(&self) -> Self {
        VarPort { name: self.name.clone(), _marker: PhantomData }
    }
}

impl<T: ValueCodec> fmt::Debug for VarPort<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarPort<{}>({})", std::any::type_name::<T>(), self.name)
    }
}

/// Typed handle to an event channel with payload `P`.
///
/// `P` may be any [`ValueCodec`] type (mandatory payload), `()` (bare
/// channel) or `Option<T>` (optional payload).
pub struct EventPort<P: EventPayload> {
    name: Name,
    _marker: PhantomData<fn() -> P>,
}

impl<P: EventPayload> EventPort<P> {
    /// Creates a port for event channel `name` with the payload schema of
    /// `P`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal.
    pub fn new(name: &str) -> Self {
        EventPort { name: port_name(name), _marker: PhantomData }
    }

    /// The channel name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The declared payload schema (`None` = bare channel).
    pub fn payload_type(&self) -> Option<DataType> {
        P::payload_type()
    }

    /// `true` when `name` refers to this port's channel.
    pub fn matches(&self, name: &Name) -> bool {
        &self.name == name
    }

    /// Decodes an incoming payload, surfacing a structured
    /// [`TypeMismatch`] instead of silently dropping on disagreement.
    pub fn decode(&self, value: Option<&Value>) -> Result<P, TypeMismatch> {
        P::from_payload(value)
    }
}

impl<P: EventPayload> Clone for EventPort<P> {
    fn clone(&self) -> Self {
        EventPort { name: self.name.clone(), _marker: PhantomData }
    }
}

impl<P: EventPayload> fmt::Debug for EventPort<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventPort<{}>({})", std::any::type_name::<P>(), self.name)
    }
}

/// Typed handle to a remote function taking the argument pack `A` and
/// returning `R`.
///
/// `A` is a tuple of codec types (arity 0–6); `R` is a codec type or `()`
/// for void functions.
pub struct FnPort<A: ArgsCodec, R: FnRet> {
    name: Name,
    _marker: PhantomData<fn(A) -> R>,
}

impl<A: ArgsCodec, R: FnRet> FnPort<A, R> {
    /// Creates a port for function `name` with the signature derived from
    /// `A` and `R`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal.
    pub fn new(name: &str) -> Self {
        FnPort { name: port_name(name), _marker: PhantomData }
    }

    /// The function name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The declared wire signature (derived from `A` and `R`).
    pub fn signature(&self) -> FunctionSig {
        FunctionSig { params: A::arg_types(), returns: R::return_type() }
    }

    /// `true` when `name` refers to this port's function — the typed guard
    /// for [`Service::on_call`](crate::Service::on_call).
    pub fn matches(&self, name: &Name) -> bool {
        &self.name == name
    }

    /// Decodes an incoming argument list on the provider side.
    pub fn decode_args(&self, args: &[Value]) -> Result<A, TypeMismatch> {
        A::from_args(args)
    }

    /// Encodes a provider-side return value.
    pub fn encode_ret(&self, ret: R) -> Value {
        ret.into_return()
    }
}

impl<A: ArgsCodec, R: FnRet> Clone for FnPort<A, R> {
    fn clone(&self) -> Self {
        FnPort { name: self.name.clone(), _marker: PhantomData }
    }
}

impl<A: ArgsCodec, R: FnRet> fmt::Debug for FnPort<A, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnPort({})", self.name)
    }
}

/// Correlates a typed [`ServiceContext::call_fn`] with its later
/// [`Service::on_reply`], remembering the expected return type.
///
/// [`ServiceContext::call_fn`]: crate::ServiceContext::call_fn
/// [`Service::on_reply`]: crate::Service::on_reply
pub struct TypedCallHandle<R: FnRet> {
    handle: CallHandle,
    _marker: PhantomData<fn() -> R>,
}

impl<R: FnRet> TypedCallHandle<R> {
    pub(crate) fn new(handle: CallHandle) -> Self {
        TypedCallHandle { handle, _marker: PhantomData }
    }

    /// The underlying untyped handle.
    pub fn handle(&self) -> CallHandle {
        self.handle
    }

    /// `true` when `handle` is the reply correlation for this call.
    pub fn matches(&self, handle: CallHandle) -> bool {
        self.handle == handle
    }

    /// Decodes a reply delivered to
    /// [`Service::on_reply`](crate::Service::on_reply): call failures pass
    /// through, and a reply value that disagrees with the declared return
    /// schema becomes [`CallError::TypeMismatch`] instead of being
    /// silently misread.
    pub fn decode(&self, result: Result<Value, CallError>) -> Result<R, CallError> {
        let value = result?;
        R::from_return(&value).map_err(CallError::TypeMismatch)
    }
}

impl<R: FnRet> Clone for TypedCallHandle<R> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<R: FnRet> Copy for TypedCallHandle<R> {}

impl<R: FnRet> fmt::Debug for TypedCallHandle<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypedCallHandle({:?})", self.handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_presentation::DataType;
    use marea_protocol::RequestId;

    #[test]
    fn var_port_carries_schema() {
        let p = VarPort::<u64>::new("beacon/count");
        assert_eq!(p.name(), "beacon/count");
        assert_eq!(p.data_type(), DataType::U64);
        assert_eq!(p.decode(&Value::U64(9)).unwrap(), 9);
        let err = p.decode(&Value::F64(1.0)).unwrap_err();
        assert_eq!(err.expected(), Some(&DataType::U64));
        let n = Name::new("beacon/count").unwrap();
        assert!(p.matches(&n));
    }

    #[test]
    fn event_port_payload_kinds() {
        let bare = EventPort::<()>::new("gps/fix-lost");
        assert_eq!(bare.payload_type(), None);
        bare.decode(None).unwrap();

        let typed = EventPort::<u32>::new("mc/photo-request");
        assert_eq!(typed.payload_type(), Some(DataType::U32));
        assert_eq!(typed.decode(Some(&Value::U32(2))).unwrap(), 2);
        assert!(typed.decode(None).is_err());

        let optional = EventPort::<Option<u32>>::new("mc/progress");
        assert_eq!(optional.decode(None).unwrap(), None);
    }

    #[test]
    fn fn_port_signature_and_args() {
        let p = FnPort::<(String, u32), bool>::new("camera/prepare");
        let sig = p.signature();
        assert_eq!(sig.params, vec![DataType::Str, DataType::U32]);
        assert_eq!(sig.returns, Some(DataType::Bool));
        let args = vec![Value::Str("m".into()), Value::U32(1)];
        assert_eq!(p.decode_args(&args).unwrap(), ("m".to_owned(), 1));
        assert_eq!(p.encode_ret(true), Value::Bool(true));
    }

    #[test]
    fn typed_handle_decodes_and_flags_mismatch() {
        let h = TypedCallHandle::<bool>::new(CallHandle(RequestId(7)));
        assert!(h.matches(CallHandle(RequestId(7))));
        assert!(!h.matches(CallHandle(RequestId(8))));
        assert!(h.decode(Ok(Value::Bool(true))).unwrap());
        assert!(matches!(h.decode(Err(CallError::Timeout)), Err(CallError::Timeout)));
        assert!(matches!(h.decode(Ok(Value::U8(1))), Err(CallError::TypeMismatch(_))));
    }
}
