//! # marea-core — the MAREA service container and communication primitives
//!
//! This crate is the reproduction of the paper's primary contribution
//! (López et al., *A Middleware Architecture for Unmanned Aircraft
//! Avionics*, Middleware 2007): a per-node **service container** that hosts
//! *services* and gives them exactly four communication primitives —
//!
//! * **variables** — best-effort periodic pub/sub with validity and
//!   guaranteed-initial-value QoS (§4.1);
//! * **events** — reliable pub/sub over an application-layer ARQ (§4.2);
//! * **remote invocation** — point-to-point calls with static/dynamic
//!   provider binding, load balancing and transparent failover (§4.3);
//! * **file transmission** — MFTP-style reliable multicast bulk transfer
//!   with revisions, late join and a same-node bypass (§4.4);
//!
//! plus the container duties of §3: *service management* (lifecycle, panic
//! watchdog, status broadcasting), *name management* (the
//! [`Directory`] proxy cache with failure invalidation), *network
//! management* (services never touch the transport) and *resource
//! management* (bounded per-tick execution budgets, bounded queues).
//!
//! Services implement the [`Service`] trait and interact only through
//! [`ServiceContext`]; the container is driven by
//! [`ServiceContainer::tick`] from either the deterministic
//! [`SimHarness`] or the wall-clock [`RealtimeDriver`].
//!
//! ## Quickstart
//!
//! ```
//! use marea_core::{ContainerConfig, Service, ServiceContext, ServiceDescriptor, SimHarness};
//! use marea_netsim::NetConfig;
//! use marea_presentation::{DataType, Name, Value};
//! use marea_protocol::{Micros, NodeId, ProtoDuration};
//!
//! struct Beacon;
//! impl Service for Beacon {
//!     fn descriptor(&self) -> ServiceDescriptor {
//!         ServiceDescriptor::builder("beacon")
//!             .variable("beacon/count", DataType::U64,
//!                 ProtoDuration::from_millis(10), ProtoDuration::from_millis(100))
//!             .build()
//!     }
//!     fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
//!         ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
//!     }
//!     fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: marea_core::TimerId) {
//!         ctx.publish("beacon/count", ctx.now().as_micros());
//!     }
//! }
//!
//! let mut h = SimHarness::new(NetConfig::default());
//! h.add_container(ContainerConfig::new("node-a", NodeId(1)));
//! h.add_service(NodeId(1), Box::new(Beacon));
//! h.start_all();
//! h.run_for_millis(100);
//! assert!(h.container(NodeId(1)).unwrap().stats().vars_published >= 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod container;
mod directory;
mod engines;
mod error;
mod harness;
mod link;
mod scheduler;
mod service;
mod stats;

pub use clock::{Clock, ManualClock, SystemClock};
pub use container::{ContainerConfig, ServiceContainer, VarDistribution};
pub use directory::{Directory, NodeInfo, ProviderInfo};
pub use error::{CallError, ContainerError};
pub use harness::{RealtimeDriver, SimHarness};
pub use link::ReliableLink;
pub use scheduler::{
    FifoScheduler, Priority, PriorityScheduler, Scheduler, SchedulerKind, Task, TaskPayload,
};
pub use service::{
    CallHandle, CallPolicy, FileEvent, ProviderNotice, Service, ServiceContext, ServiceDescriptor,
    ServiceDescriptorBuilder, TimerId, VarSubscription,
};
pub use stats::ContainerStats;

// Re-exports that appear in this crate's public API, for downstream
// convenience.
pub use marea_protocol::messages::{FunctionSig, Provision, ServiceState};
pub use marea_protocol::{Micros, NodeId, ProtoDuration, RequestId, ServiceId};
