//! # marea-core — the MAREA service container and communication primitives
//!
//! This crate is the reproduction of the paper's primary contribution
//! (López et al., *A Middleware Architecture for Unmanned Aircraft
//! Avionics*, Middleware 2007): a per-node **service container** that hosts
//! *services* and gives them exactly four communication primitives —
//!
//! * **variables** — best-effort periodic pub/sub with validity and
//!   guaranteed-initial-value QoS (§4.1);
//! * **events** — reliable pub/sub over an application-layer ARQ (§4.2);
//! * **remote invocation** — point-to-point calls with static/dynamic
//!   provider binding, load balancing and transparent failover (§4.3);
//! * **file transmission** — MFTP-style reliable multicast bulk transfer
//!   with revisions, late join and a same-node bypass (§4.4);
//!
//! plus the container duties of §3: *service management* (lifecycle, panic
//! watchdog, status broadcasting), *name management* (the
//! [`Directory`] proxy cache with failure invalidation), *network
//! management* (services never touch the transport) and *resource
//! management* (bounded per-tick execution budgets, bounded queues).
//!
//! Services implement the [`Service`] trait and interact only through
//! [`ServiceContext`]; the container is driven by
//! [`ServiceContainer::tick`] from either the deterministic
//! [`SimHarness`] or the wall-clock [`RealtimeDriver`].
//!
//! Declarations and interactions are **typed**: the descriptor builder
//! derives each provision's wire schema from a Rust type and returns a
//! *port* ([`VarPort`], [`EventPort`], [`FnPort`]) that the service stores
//! and publishes/emits/calls through — a payload that disagrees with the
//! declared schema is a compile error, not a runtime drop. Every
//! declaration also carries its **QoS contract** as a typed profile
//! ([`VarQos`], [`EventQos`], [`CallOptions`]); the [`qos`] module
//! documents what each field makes the container enforce.
//!
//! ## Quickstart
//!
//! ```
//! use marea_core::{
//!     ContainerConfig, Service, ServiceContext, ServiceDescriptor, SimHarness, VarPort, VarQos,
//! };
//! use marea_netsim::NetConfig;
//! use marea_protocol::{NodeId, ProtoDuration};
//!
//! struct Beacon {
//!     count: VarPort<u64>,
//! }
//!
//! impl Beacon {
//!     fn new() -> Self {
//!         // Ports are plain data; build them once and share them with
//!         // the descriptor.
//!         Beacon { count: VarPort::new("beacon/count") }
//!     }
//! }
//!
//! impl Service for Beacon {
//!     fn descriptor(&self) -> ServiceDescriptor {
//!         ServiceDescriptor::builder("beacon")
//!             .provides_var(&self.count, VarQos::periodic(
//!                 ProtoDuration::from_millis(10), ProtoDuration::from_millis(100)))
//!             .build()
//!     }
//!     fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
//!         ctx.set_timer(ProtoDuration::from_millis(10), Some(ProtoDuration::from_millis(10)));
//!     }
//!     fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: marea_core::TimerId) {
//!         // `publish_to` only accepts u64 — the port's declared schema.
//!         ctx.publish_to(&self.count, ctx.now().as_micros());
//!     }
//! }
//!
//! let mut h = SimHarness::new(NetConfig::default());
//! h.add_container(ContainerConfig::new("node-a", NodeId(1)));
//! h.add_service(NodeId(1), Box::new(Beacon::new()));
//! h.start_all();
//! h.run_for_millis(100);
//! let stats = h.container(NodeId(1)).unwrap().stats();
//! assert!(stats.vars_published >= 5);
//! assert_eq!(stats.type_mismatches.total(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod container;
mod directory;
mod engines;
mod error;
mod harness;
mod link;
pub mod metrics;
mod ports;
pub mod qos;
pub mod scenario;
mod scheduler;
mod service;
mod stats;
pub mod sweep;
pub mod trace;

pub use clock::{Clock, ManualClock, SystemClock};
pub use container::{ContainerConfig, ServiceContainer, VarDistribution};
pub use directory::{Directory, NodeInfo, ProviderInfo};
pub use error::{CallError, ContainerError};
pub use harness::{RealtimeDriver, ServiceFactory, SimHarness};
pub use link::ReliableLink;
pub use metrics::{LatencySummary, LinkFrame, MetricsConfig, MetricsFrame, MetricsSampler};
pub use ports::{EventPort, FnPort, TypedCallHandle, VarPort};
pub use qos::{CallOptions, DropPolicy, EventQos, QosError, VarQos};
pub use scheduler::{
    FifoScheduler, Priority, PriorityScheduler, Scheduler, SchedulerKind, Task, TaskPayload,
};
pub use service::{
    CallHandle, CallPolicy, EventSubscription, FileEvent, ProviderNotice, Service, ServiceContext,
    ServiceDescriptor, ServiceDescriptorBuilder, TimerId, VarSubscription,
};
pub use stats::{
    ContainerStats, EventSubscriptionStats, FecStats, QosStats, TypeMismatchStats, VarChannelView,
    VarSubscriptionStats,
};
pub use trace::{LatencyHistogram, TraceConfig, TraceEvent, TraceId, TraceKind, TraceRing};

// Re-exports that appear in this crate's public API, for downstream
// convenience.
pub use marea_presentation::{
    ArgsCodec, ArgsSchema, EventPayload, FnRet, FromArgs, FromValue, HasDataType, IntoArgs,
    IntoValue, TypeMismatch, ValueCodec,
};
pub use marea_protocol::messages::{FunctionSig, Provision, ServiceState};
pub use marea_protocol::{Micros, NodeId, ProtoDuration, RequestId, ServiceId};
