//! Time sources for driving containers.
//!
//! The container itself is clock-free (`tick(now)`), so "what time is it"
//! lives behind [`Clock`] only in the drivers: the simulation harness uses
//! the network's virtual clock, the real-time driver uses the OS monotonic
//! clock, and tests can use a manually advanced one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use marea_protocol::Micros;

/// A monotonic microsecond clock.
pub trait Clock: Send + std::fmt::Debug {
    /// Current time.
    fn now(&self) -> Micros;
}

/// OS monotonic clock, microseconds since construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose zero is now.
    pub fn new() -> Self {
        // marea-lint: allow(D2): SystemClock *is* the real-time boundary; drivers opt in explicitly
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Micros {
        Micros(self.epoch.elapsed().as_micros() as u64)
    }
}

/// Manually advanced clock for unit tests.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock to `t` (never backwards).
    pub fn set(&self, t: Micros) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Micros {
        Micros(self.now.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_forward_only() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Micros(0));
        c.set(Micros(100));
        c.set(Micros(50));
        assert_eq!(c.now(), Micros(100));
        c.advance_us(5);
        assert_eq!(c.now(), Micros(105));
    }

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
