//! Container counters, read by tests, the ground station and the benches.

use crate::trace::LatencyHistogram;

/// Cumulative counters of one service container.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerStats {
    /// `tick` invocations.
    pub ticks: u64,
    /// Frames received from the transport.
    pub frames_in: u64,
    /// Frames handed to the transport.
    pub frames_out: u64,
    /// Frame bytes handed to the transport.
    pub bytes_out: u64,
    /// Handler invocations executed.
    pub tasks_executed: u64,
    /// Peak scheduler queue length observed.
    pub queue_peak: usize,
    /// Variable samples published by local services.
    pub vars_published: u64,
    /// Variable samples delivered to local handlers.
    pub var_samples_delivered: u64,
    /// Samples dropped because their validity window had expired.
    pub stale_samples_dropped: u64,
    /// Samples dropped as duplicates / out-of-date sequence numbers.
    pub old_samples_dropped: u64,
    /// Variable deadline warnings raised.
    pub var_timeouts: u64,
    /// Events published by local services.
    pub events_published: u64,
    /// Events delivered to local handlers.
    pub events_delivered: u64,
    /// Sum of event delivery latencies in µs (production stamp → handler).
    pub event_latency_sum_us: u64,
    /// Maximum event delivery latency in µs.
    pub event_latency_max_us: u64,
    /// Remote invocations started by local services.
    pub calls_made: u64,
    /// Invocations executed on behalf of callers.
    pub calls_served: u64,
    /// Calls transparently redirected to a redundant provider.
    pub call_failovers: u64,
    /// Calls that ended in an error delivered to the caller.
    pub call_errors: u64,
    /// File publications (including revisions).
    pub files_published: u64,
    /// File receptions completed over the network.
    pub files_received: u64,
    /// File deliveries satisfied by the same-node bypass (paper §4.4: "the
    /// transfer is bypassed by the container as direct access to the
    /// resource").
    pub file_bypass_deliveries: u64,
    /// Services that panicked and were marked failed by the watchdog.
    pub services_failed: u64,
    /// Typed-contract violations detected by the four engines.
    ///
    /// The typed port API makes these unrepresentable at compile time; a
    /// non-zero counter means a service is still using the dynamic compat
    /// methods with a value that disagrees with its descriptor, or a peer
    /// node announced one schema and sent another.
    pub type_mismatches: TypeMismatchStats,
    /// QoS-contract enforcement actions, aggregated over every
    /// subscription and call (per-subscription breakdowns are read through
    /// [`ServiceContainer::var_qos_stats`] /
    /// [`event_qos_stats`](crate::ServiceContainer::event_qos_stats) /
    /// [`fn_retries`](crate::ServiceContainer::fn_retries)).
    ///
    /// [`ServiceContainer::var_qos_stats`]: crate::ServiceContainer::var_qos_stats
    pub qos: QosStats,
    /// Forward-error-correction activity below the reliable channel.
    ///
    /// Counted per event as shards cross the container boundary (links are
    /// dropped when their peer dies, so these outlive individual links).
    pub fec: FecStats,
    /// Publish→handler latency distribution of delivered variable samples
    /// (log2-µs buckets; empty when tracing is disabled).
    pub publish_to_deliver: LatencyHistogram,
    /// Emit→handler latency distribution of delivered reliable events
    /// (empty when tracing is disabled).
    pub event_to_deliver: LatencyHistogram,
    /// Remote invocation round-trip distribution (issue → reply at the
    /// caller; empty when tracing is disabled).
    pub call_rtt: LatencyHistogram,
    /// First-retransmission→ACK recovery distribution on reliable links
    /// (empty when tracing is disabled).
    pub rto_recovery: LatencyHistogram,
}

/// FEC-layer counters aggregated over every reliable link, alive or dead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FecStats {
    /// Data shards sent (reliable-channel frames wrapped for coding).
    pub data_shards_out: u64,
    /// Parity shards sent (pure overhead buying retransmit-free repair).
    pub parity_shards_out: u64,
    /// Shards received (data and parity).
    pub shards_in: u64,
    /// Erased frames rebuilt from parity without a retransmission RTT.
    pub recovered: u64,
    /// Strongest code rate negotiated on any live link this tick
    /// ([`FecRate`](marea_protocol::fec::FecRate) wire tag; 0 = all off).
    pub negotiated_rate_max: u8,
}

/// Aggregate counters of QoS-contract enforcement (see
/// [`VarQos`](crate::VarQos) / [`EventQos`](crate::EventQos) /
/// [`CallOptions`](crate::CallOptions)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QosStats {
    /// Variable loss deadlines missed (`deadline_periods` × the nominal
    /// period elapsed without a sample).
    pub deadline_misses: u64,
    /// Variable samples dropped because they outlived their declared
    /// validity window in transit.
    pub stale_drops: u64,
    /// Event deliveries dropped by bounded inboxes (both
    /// [`DropOldest`](crate::DropPolicy::DropOldest) retractions and
    /// [`DropNewest`](crate::DropPolicy::DropNewest) refusals).
    pub queue_drops: u64,
    /// Remote invocations transparently re-dispatched to another provider
    /// (deadline expiry, provider refusal or provider death).
    pub retries: u64,
}

impl QosStats {
    /// Sum over all enforcement counters.
    pub fn total(&self) -> u64 {
        self.deadline_misses + self.stale_drops + self.queue_drops + self.retries
    }
}

/// QoS counters of one subscribed variable — the channel state a
/// container keeps for all its local subscribers of that name (read via
/// [`ServiceContainer::var_qos_stats`](crate::ServiceContainer::var_qos_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarSubscriptionStats {
    /// Loss deadlines missed on this subscription.
    pub deadline_misses: u64,
    /// Stale samples dropped on this subscription.
    pub stale_drops: u64,
    /// Samples currently retained in the history ring.
    pub history_len: usize,
}

/// Freshness snapshot of one subscribed variable channel (read via
/// [`ServiceContainer::var_channels`](crate::ServiceContainer::var_channels)),
/// the observability surface the chaos invariants check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarChannelView {
    /// A provider is currently resolved for the channel.
    pub bound: bool,
    /// Nominal publication period learned from the announcement (µs; 0 =
    /// aperiodic).
    pub period_us: u64,
    /// Validity window learned from the announcement (µs; 0 = unbounded).
    pub validity_us: u64,
    /// Loss-warning deadline from the merged subscriber contract
    /// (`deadline_periods` × nominal period, µs); `None` for aperiodic
    /// channels, which have no deadline.
    pub deadline_us: Option<u64>,
    /// Receive time of the last accepted sample (the *subscribing node's*
    /// local clock — compare against it, not global virtual time).
    pub last_rx: Option<crate::Micros>,
    /// Production stamp of the newest retained sample.
    pub last_stamp: Option<crate::Micros>,
    /// A loss-deadline warning is outstanding (raised, no sample since).
    pub timed_out: bool,
}

/// Per-channel QoS counters of one subscribed event channel (read via
/// [`ServiceContainer::event_qos_stats`](crate::ServiceContainer::event_qos_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventSubscriptionStats {
    /// Deliveries dropped by bounded inboxes, summed over the channel's
    /// local subscribers.
    pub queue_drops: u64,
    /// Highest queued-delivery depth observed on any one subscriber.
    pub inbox_peak: usize,
}

/// Per-engine counters of descriptor/value disagreements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeMismatchStats {
    /// Variable samples whose value violated the declared schema (publish
    /// side) or failed to decode against the announced schema (subscribe
    /// side).
    pub vars: u64,
    /// Event payloads violating the channel declaration: wrong schema,
    /// payload on a bare channel, or undecodable incoming payload.
    pub events: u64,
    /// Invocation marshalling failures: arguments or results that
    /// disagree with the declared signature.
    pub calls: u64,
    /// File publications referencing a resource the service never
    /// declared (the file engine's form of contract violation — file
    /// content itself is opaque).
    pub files: u64,
}

impl TypeMismatchStats {
    /// Sum over all four engines.
    pub fn total(&self) -> u64 {
        self.vars + self.events + self.calls + self.files
    }
}

impl ContainerStats {
    /// Mean event delivery latency in µs, if any events were delivered.
    pub fn event_latency_mean_us(&self) -> Option<f64> {
        if self.events_delivered == 0 {
            None
        } else {
            Some(self.event_latency_sum_us as f64 / self.events_delivered as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_total_sums_all_counters() {
        let q = QosStats { deadline_misses: 1, stale_drops: 2, queue_drops: 3, retries: 4 };
        assert_eq!(q.total(), 10);
        assert_eq!(QosStats::default().total(), 0);
    }

    #[test]
    fn latency_mean() {
        let mut s = ContainerStats::default();
        assert_eq!(s.event_latency_mean_us(), None);
        s.events_delivered = 4;
        s.event_latency_sum_us = 100;
        assert_eq!(s.event_latency_mean_us(), Some(25.0));
    }
}
