//! Failure detection and name-management maintenance: heartbeat-timeout
//! sweeps, subscription (re)binding against the directory, variable loss
//! deadlines and call timeout/failover handling.

use super::*;

impl ServiceContainer {
    // ---- failure detection & maintenance ----------------------------------

    pub(super) fn detect_failures(&mut self, now: Micros) {
        let dead = self.directory.expire(now, self.config.node_timeout);
        for node in dead {
            if node == self.config.node {
                self.directory.apply_heartbeat(
                    self.config.node,
                    self.incarnation,
                    self.load_permille(),
                    self.config.fec.advertised_cap().wire_tag(),
                    now,
                );
                continue;
            }
            self.handle_node_death(node, now);
        }
    }

    pub(super) fn handle_node_death(&mut self, node: NodeId, now: Micros) {
        self.log_line(now, format!("node {node} declared dead; purging name cache"));
        self.subs_dirty = true;
        if self.links.remove(&node).is_some() {
            self.active_links.remove(&node);
            self.tracer.record(now, TraceKind::LinkDown, TraceId::NONE, Some(node), 0, None);
        }
        self.tracer.record(now, TraceKind::DirExpire, TraceId::NONE, Some(node), 0, None);
        // Variable/event subscriptions bound to the dead node are *not*
        // unbound here: the directory purge makes their resolution fail,
        // and maintain_subscriptions turns that into the unbind + the
        // "provider lost" notice (one transition, one notification).
        for id in self.rpc.targeting_node(node) {
            self.failover_call(id, now);
        }
        // marea-lint: allow(D1): order-independent in-place reset of receive wiring; nothing sends here
        for interest in self.files.interests.values_mut() {
            if interest.publisher == Some(node) {
                interest.receiver = None;
                interest.publisher = None;
            }
        }
        self.files.seen_announces.retain(|_, (src, _)| *src != node);
    }

    pub(super) fn maintain_subscriptions(&mut self, now: Micros) {
        // Every sweep below walks a HashMap but may send subscription
        // wiring or enqueue notices, so each walk goes through
        // `sweep::sorted_keys_into` to keep runs seed-reproducible (lint
        // D1); one scratch buffer serves all four walks.
        let mut names = std::mem::take(&mut self.sweep_scratch);
        // Variables.
        sorted_keys_into(&self.vars.subscribed, &mut names);
        for name in names.drain(..) {
            let resolution = self.directory.resolve_variable(name.as_str()).map(|p| {
                let (period, validity, ty) = match &p.provision {
                    Provision::Variable { period_us, validity_us, ty, .. } => {
                        (*period_us, *validity_us, ty.clone())
                    }
                    _ => unreachable!("resolve_variable filters kind"),
                };
                (p.service, period, validity, ty)
            });
            enum Act {
                Bind { provider: ServiceId, need_initial: bool, services: Vec<u32>, fresh: bool },
                Lost { services: Vec<u32> },
                None,
            }
            let Some(sub) = self.vars.subscribed.get_mut(&name) else { continue };
            let act = match resolution {
                Some((provider, period, validity, ty)) => {
                    if sub.provider != Some(provider) || !sub.subscribe_sent {
                        let fresh = sub.provider.is_none();
                        sub.bind(provider, period, validity, ty, now);
                        sub.subscribe_sent = true;
                        Act::Bind {
                            provider,
                            need_initial: sub.need_initial,
                            services: sub.services.clone(),
                            fresh,
                        }
                    } else {
                        Act::None
                    }
                }
                None => {
                    if sub.subscribe_sent || sub.provider.is_some() {
                        sub.unbind();
                        sub.subscribe_sent = false;
                        // Only notify on the transition away from bound.
                        Act::Lost { services: sub.services.clone() }
                    } else {
                        Act::None
                    }
                }
            };
            match act {
                Act::Bind { provider, need_initial, services, fresh } => {
                    self.vars.arm_deadline(&name);
                    if provider.node != self.config.node {
                        if self.config.var_distribution == VarDistribution::Multicast {
                            self.transport.join(var_group(&name).0);
                        }
                        // Subscription wiring is control-plane critical:
                        // it rides the reliable channel so a lost datagram
                        // cannot silently orphan the subscription.
                        let msg = Message::SubscribeVar {
                            name: name.clone(),
                            subscriber: self.config.node,
                            need_initial,
                        };
                        self.send_reliable(provider.node, &msg, now);
                    }
                    if fresh {
                        for svc in services {
                            self.push_task(
                                Priority::CALL,
                                svc,
                                TaskPayload::Provider(ProviderNotice::VariableAvailable(
                                    name.clone(),
                                )),
                            );
                        }
                    }
                }
                Act::Lost { services } => {
                    for svc in services {
                        self.push_task(
                            Priority::CALL,
                            svc,
                            TaskPayload::Provider(ProviderNotice::VariableUnavailable(
                                name.clone(),
                            )),
                        );
                    }
                }
                Act::None => {}
            }
        }
        // Events.
        sorted_keys_into(&self.events.subscribed, &mut names);
        for name in names.drain(..) {
            let resolution = self.directory.resolve_event(name.as_str()).map(|p| {
                let ty = match &p.provision {
                    Provision::Event { ty, .. } => ty.clone(),
                    _ => unreachable!("resolve_event filters kind"),
                };
                (p.service, ty)
            });
            enum Act {
                Bind { provider: ServiceId, services: Vec<u32>, fresh: bool },
                Lost { services: Vec<u32> },
                None,
            }
            let Some(sub) = self.events.subscribed.get_mut(&name) else { continue };
            let act = match resolution {
                Some((provider, ty)) => {
                    if sub.provider != Some(provider) || !sub.subscribe_sent {
                        let fresh = sub.provider.is_none();
                        sub.provider = Some(provider);
                        sub.ty = ty;
                        sub.subscribe_sent = true;
                        Act::Bind { provider, services: sub.service_seqs(), fresh }
                    } else {
                        Act::None
                    }
                }
                None => {
                    if sub.subscribe_sent || sub.provider.is_some() {
                        sub.unbind();
                        Act::Lost { services: sub.service_seqs() }
                    } else {
                        Act::None
                    }
                }
            };
            match act {
                Act::Bind { provider, services, fresh } => {
                    if provider.node != self.config.node {
                        let msg = Message::SubscribeEvent {
                            name: name.clone(),
                            subscriber: self.config.node,
                        };
                        self.send_reliable(provider.node, &msg, now);
                    }
                    if fresh {
                        for svc in services {
                            self.push_task(
                                Priority::CALL,
                                svc,
                                TaskPayload::Provider(ProviderNotice::EventAvailable(name.clone())),
                            );
                        }
                    }
                }
                Act::Lost { services } => {
                    for svc in services {
                        self.push_task(
                            Priority::CALL,
                            svc,
                            TaskPayload::Provider(ProviderNotice::EventUnavailable(name.clone())),
                        );
                    }
                }
                Act::None => {}
            }
        }
        // Required functions ("during middleware initialization, the
        // services check that all the functions they need ... are
        // provided", §4.3).
        sorted_keys_into(&self.rpc.required, &mut names);
        for name in names.drain(..) {
            let available =
                self.directory.resolve_function(name.as_str(), CallPolicy::Dynamic, None).is_some();
            let Some(req) = self.rpc.required.get_mut(&name) else { continue };
            let action = {
                let first_check = !req.checked;
                req.checked = true;
                if available != req.available || (first_check && !available) {
                    req.available = available;
                    Some(req.services.clone())
                } else {
                    None
                }
            };
            if let Some(services) = action {
                let notice = if available {
                    ProviderNotice::FunctionAvailable(name.clone())
                } else {
                    ProviderNotice::FunctionUnavailable(name.clone())
                };
                if !available {
                    self.log_line(now, format!("required function `{name}` has no provider"));
                }
                for svc in services {
                    self.push_task(Priority::CALL, svc, TaskPayload::Provider(notice.clone()));
                }
            }
        }
        // File interests that heard an announce before subscribing.
        sorted_keys_into(&self.files.interests, &mut names);
        for resource in names.drain(..) {
            let waiting = self
                .files
                .interests
                .get(&resource)
                .is_some_and(|i| i.receiver.is_none() && !i.services.is_empty());
            if !waiting {
                continue;
            }
            if self.files.outgoing.contains_key(&resource) {
                continue; // local publisher: bypass path handles delivery
            }
            if let Some((src, announce)) = self.files.seen_announces.get(&resource).cloned() {
                if self.directory.node_alive(src) {
                    self.handle_file_announce(src, announce, now);
                }
            }
        }
        self.sweep_scratch = names;
    }

    pub(super) fn sweep_variable_deadlines(&mut self, now: Micros) {
        for name in self.vars.sweep_deadlines(now) {
            self.stats.var_timeouts += 1;
            self.tracer.record(now, TraceKind::VarTimeout, TraceId::NONE, None, 0, Some(&name));
            let services = self.vars.subscribed[&name].services.clone();
            for svc in services {
                self.push_task(
                    Priority::VARIABLE,
                    svc,
                    TaskPayload::VariableTimeout { name: name.clone() },
                );
            }
        }
    }

    pub(super) fn sweep_call_timeouts(&mut self, now: Micros) {
        for id in self.rpc.expired(now) {
            self.failover_call(id, now);
        }
    }

    /// Re-resolves a pending call to a redundant provider, or fails it.
    ///
    /// Paper §4.3: "Upon service failure, if another service is
    /// implementing the same functionality, the middleware will detect the
    /// situation and redirect requests to the redundant service."
    pub(super) fn failover_call(&mut self, id: RequestId, now: Micros) {
        let Some(mut call) = self.rpc.pending.remove(&id) else { return };
        if call.attempts >= call.max_attempts {
            // The caller's retry budget is exhausted (CallOptions
            // contract; container default when unspecified).
            self.stats.call_errors += 1;
            self.push_task(
                Priority::CALL,
                call.caller_seq,
                TaskPayload::DeliverReply { request: id, result: Err(CallError::Timeout) },
            );
            return;
        }
        let next = self
            .directory
            .resolve_function(call.function.as_str(), call.policy, Some(call.target))
            .map(|p| (p.service, p.provision.clone()));
        match next {
            Some((target, Provision::Function { sig, .. })) => {
                call.attempts += 1;
                call.target = target;
                call.returns = sig.returns.clone();
                call.deadline = now + call.attempt_timeout;
                self.stats.call_failovers += 1;
                self.rpc.count_retry(&call.function);
                self.tracer.record(
                    now,
                    TraceKind::CallRetry,
                    call.trace,
                    Some(target.node),
                    id.0,
                    Some(&call.function),
                );
                let codec = self.codecs.default_codec().clone();
                match encode_args(&call.args, &sig, codec.as_ref()) {
                    Ok(payload) => {
                        self.log_line(
                            now,
                            format!("call {id} redirected to redundant provider {target}"),
                        );
                        self.dispatch_call(id, &call, payload, now);
                        self.rpc.track(id, call);
                    }
                    Err(e) => {
                        self.rpc.type_mismatches += 1;
                        self.stats.call_errors += 1;
                        self.push_task(
                            Priority::CALL,
                            call.caller_seq,
                            TaskPayload::DeliverReply { request: id, result: Err(e) },
                        );
                    }
                }
            }
            _ => {
                // "If no service provides the requested function the
                // middleware will warn the system."
                self.stats.call_errors += 1;
                self.log_line(now, format!("call {id} failed: no remaining provider"));
                self.push_task(
                    Priority::CALL,
                    call.caller_seq,
                    TaskPayload::DeliverReply {
                        request: id,
                        result: Err(CallError::ServiceUnavailable),
                    },
                );
            }
        }
    }

    pub(super) fn dispatch_call(
        &mut self,
        id: RequestId,
        call: &PendingCall,
        payload: Bytes,
        now: Micros,
    ) {
        if call.target.node == self.config.node {
            // In-container invocation: no network, straight to the
            // scheduler (Fig. 2 local path).
            self.push_task(
                Priority::CALL,
                call.target.seq,
                TaskPayload::ExecuteCall {
                    request: id,
                    caller: self.config.node,
                    function: call.function.clone(),
                    args: call.args.clone(),
                    trace: call.trace,
                },
            );
        } else {
            let msg = Message::CallRequest {
                request: id,
                function: call.function.clone(),
                target_seq: call.target.seq,
                trace: call.trace.wire(),
                codec: self.codecs.default_id().0,
                payload,
            };
            self.send_reliable(call.target.node, &msg, now);
        }
    }
}
