//! Frame input and per-tick pumps: transport drain, message dispatch,
//! reliable-link polling and file-transfer pumping.

use marea_protocol::messages::announce_hash;

use super::*;

impl ServiceContainer {
    // ---- frame input -----------------------------------------------------

    pub(super) fn pump_transport(&mut self, now: Micros) {
        while let Some((_, frame_bytes)) = self.transport.recv() {
            self.stats.frames_in += 1;
            let Ok(frame) = Frame::decode(&frame_bytes) else {
                continue; // corrupt frames are dropped (CRC)
            };
            let src = frame.header().src;
            if src == self.config.node {
                continue;
            }
            let Ok(msg) = Message::from_frame(&frame) else {
                continue;
            };
            self.handle_message(src, msg, now);
        }
    }

    pub(super) fn handle_message(&mut self, src: NodeId, msg: Message, now: Micros) {
        match msg {
            Message::Hello { container, incarnation, fec_cap } => {
                self.directory.apply_hello(src, container, incarnation, fec_cap, now);
                // A Hello can upgrade (or downgrade) the code rate of an
                // already-established link: renegotiate in place.
                let negotiated = self.fec_cap_for(src);
                if let Some(link) = self.links.get_mut(&src) {
                    link.negotiate_fec(negotiated);
                }
                self.subs_dirty = true;
                self.request_reannounce(now);
            }
            Message::Heartbeat { incarnation, load_permille, fec_cap, .. } => {
                let prior = self.directory.node(src).map(|n| n.incarnation);
                self.directory.apply_heartbeat(src, incarnation, load_permille, fec_cap, now);
                // The refreshed capability may upgrade a link negotiated
                // before the peer's Hello was seen (late attach, lossy
                // bring-up): renegotiate in place, exactly as `Hello` does.
                let negotiated = self.fec_cap_for(src);
                if let Some(link) = self.links.get_mut(&src) {
                    link.negotiate_fec(negotiated);
                }
                if prior != Some(incarnation) {
                    // Unknown node or incarnation change: availability may
                    // have shifted; plain refresh heartbeats don't re-plan.
                    self.subs_dirty = true;
                }
                if prior.is_none() {
                    // A node we have no catalogue for (its Hello/Announce was
                    // lost): introduce ourselves unicast — which makes it
                    // reply with its catalogue — and hand it ours the same
                    // way. Both legs are unicast so a partition heal cannot
                    // storm the control group with full-catalogue broadcasts.
                    let hello = Message::Hello {
                        container: self.config.name.clone(),
                        incarnation: self.incarnation,
                        fec_cap: self.config.fec.advertised_cap().wire_tag(),
                    };
                    self.send_message(TransportDestination::Node(src.0), &hello);
                    let entries = self.announce_entries();
                    let ann = Message::Announce { incarnation: self.incarnation, entries };
                    self.send_message(TransportDestination::Node(src.0), &ann);
                }
            }
            Message::Bye => {
                self.directory.apply_bye(src);
                self.handle_node_death(src, now);
            }
            Message::Announce { incarnation, entries } => {
                self.tracer.record(
                    now,
                    TraceKind::DirAnnounce,
                    TraceId::NONE,
                    Some(src),
                    entries.len() as u64,
                    None,
                );
                self.directory.apply_announce(src, &entries, now);
                let hash = announce_hash(incarnation, &entries);
                self.directory.set_catalogue_digest(src, hash, entries.len() as u32);
                self.subs_dirty = true;
            }
            Message::AnnounceDigest { incarnation, entry_count, catalogue_hash } => {
                if self.directory.catalogue_matches(src, incarnation, entry_count, catalogue_hash) {
                    self.directory.touch(src, now);
                } else {
                    // Our copy of the peer's catalogue disagrees (or we never
                    // applied one): pull the full catalogue unicast.
                    self.send_message(TransportDestination::Node(src.0), &Message::AnnounceRequest);
                }
            }
            Message::AnnounceRequest => {
                let entries = self.announce_entries();
                let msg = Message::Announce { incarnation: self.incarnation, entries };
                self.send_message(TransportDestination::Node(src.0), &msg);
            }
            Message::ServiceStatus { service_seq, state, .. } => {
                self.directory.apply_status(src, service_seq, state);
                self.subs_dirty = true;
                if !state.is_available() {
                    let failed = ServiceId::new(src, service_seq);
                    let affected: Vec<RequestId> = sorted_keys(&self.rpc.pending)
                        .into_iter()
                        .filter(|id| self.rpc.pending[id].target == failed)
                        .collect();
                    for id in affected {
                        self.failover_call(id, now);
                    }
                }
            }
            Message::SubscribeVar { name, subscriber, need_initial } => {
                self.handle_subscribe_var(name, subscriber, need_initial, now);
            }
            Message::UnsubscribeVar { name, subscriber } => {
                if let Some(pv) = self.vars.published.get_mut(&name) {
                    pv.remote_subscribers.remove(&subscriber);
                }
            }
            Message::SubscribeEvent { name, subscriber } => {
                if let Some(pe) = self.events.published.get_mut(&name) {
                    pe.remote_subscribers.insert(subscriber);
                }
            }
            Message::UnsubscribeEvent { name, subscriber } => {
                if let Some(pe) = self.events.published.get_mut(&name) {
                    pe.remote_subscribers.remove(&subscriber);
                }
            }
            Message::VarSample { name, seq, stamp_us, validity_us, trace, codec, payload } => {
                self.handle_var_sample(
                    name,
                    seq,
                    stamp_us,
                    validity_us,
                    TraceId::from_wire(src, trace),
                    codec,
                    payload,
                    now,
                );
            }
            Message::RelData { seq, payload, .. } => {
                let fec = self.fec_cap_for(src);
                let fresh_link = !self.links.contains_key(&src);
                let deliverables = {
                    let link = self.links.entry(src).or_insert_with(|| {
                        let mut l = ReliableLink::new(src, self.config.arq);
                        l.negotiate_fec(fec);
                        l
                    });
                    link.on_data(seq, payload)
                };
                if fresh_link {
                    self.tracer.record(now, TraceKind::LinkUp, TraceId::NONE, Some(src), 0, None);
                }
                self.active_links.insert(src);
                for inner in deliverables {
                    if let Ok(inner_msg) = Message::decode_tagged(&inner) {
                        self.handle_message(src, inner_msg, now);
                    }
                }
            }
            Message::RelAck { cumulative, sack, loss_permille, .. } => {
                let (out, recovered) = match self.links.get_mut(&src) {
                    Some(link) => {
                        self.active_links.insert(src);
                        let out = link.on_ack(cumulative, sack, loss_permille, now);
                        (out, link.take_recoveries())
                    }
                    None => (Vec::new(), Vec::new()),
                };
                for us in recovered {
                    self.tracer.record_rto_recovery(us);
                }
                self.send_link_messages(src, out);
            }
            Message::FecShard { group, index, k, r, payload, .. } => {
                // With FEC on, the first message of a reliable conversation
                // arrives as a shard, so this must create the link exactly
                // like the `RelData` arm does.
                let fec = self.fec_cap_for(src);
                let fresh_link = !self.links.contains_key(&src);
                let (recovered, repair_delta) = {
                    let link = self.links.entry(src).or_insert_with(|| {
                        let mut l = ReliableLink::new(src, self.config.arq);
                        l.negotiate_fec(fec);
                        l
                    });
                    let before = link.fec_rx_stats().recovered;
                    let inners = link.on_fec_shard(group, index, k, r, &payload);
                    let delta = link.fec_rx_stats().recovered - before;
                    self.stats.fec.shards_in += 1;
                    self.stats.fec.recovered += delta;
                    (inners, delta)
                };
                if fresh_link {
                    self.tracer.record(now, TraceKind::LinkUp, TraceId::NONE, Some(src), 0, None);
                }
                self.active_links.insert(src);
                if repair_delta > 0 {
                    self.tracer.record(
                        now,
                        TraceKind::FecRecover,
                        TraceId::NONE,
                        Some(src),
                        repair_delta,
                        None,
                    );
                }
                for inner in recovered {
                    if let Ok(inner_msg) = Message::decode_tagged(&inner) {
                        self.handle_message(src, inner_msg, now);
                    }
                }
            }
            Message::EventData { name, seq, stamp_us, trace, codec, payload } => {
                let trace = TraceId::from_wire(src, trace);
                self.handle_event_data(name, seq, stamp_us, trace, codec, payload, now);
            }
            Message::CallRequest { request, function, target_seq, trace, codec, payload } => {
                self.handle_call_request(
                    src,
                    request,
                    function,
                    target_seq,
                    TraceId::from_wire(src, trace),
                    codec,
                    payload,
                    now,
                );
            }
            Message::CallReply { request, status, trace, codec, payload } => {
                // A reply's trace was minted by the caller — us — so the
                // implied origin is this node, not the frame's src.
                let trace = TraceId::from_wire(self.config.node, trace);
                self.handle_call_reply(request, status, trace, codec, payload, now);
            }
            Message::FileAnnounce { .. } => {
                self.subs_dirty = true;
                self.handle_file_announce(src, msg, now);
            }
            Message::FileSubscribe { transfer, subscriber } => {
                if let Some(name) = self.files.resource_of(transfer).cloned() {
                    if let Some(out) = self.files.outgoing.get_mut(&name) {
                        out.sender.on_subscribe(subscriber);
                        out.complete_notified = false;
                    }
                }
            }
            Message::FileChunk { transfer, revision, index, payload } => {
                self.handle_file_chunk(transfer, revision, index, payload, now);
            }
            Message::FileQuery { transfer, revision } => {
                let response = self
                    .files
                    .resource_of(transfer)
                    .and_then(|name| self.files.interests.get(name))
                    .and_then(|interest| interest.receiver.as_ref())
                    .and_then(|rx| rx.on_query(revision));
                if let Some(response) = response {
                    self.send_reliable(src, &response, now);
                }
            }
            Message::FileAck { transfer, revision, subscriber } => {
                if let Some(name) = self.files.resource_of(transfer).cloned() {
                    if let Some(out) = self.files.outgoing.get_mut(&name) {
                        out.sender.on_ack(subscriber, revision);
                    }
                    self.notify_distribution_complete(&name);
                }
            }
            Message::FileNack { transfer, revision, subscriber, runs } => {
                if let Some(name) = self.files.resource_of(transfer).cloned() {
                    if let Some(out) = self.files.outgoing.get_mut(&name) {
                        let _ = out.sender.on_nack(subscriber, revision, &runs);
                        out.complete_notified = false;
                    }
                }
            }
            Message::FileCancel { transfer } => {
                if let Some(name) = self.files.resource_of(transfer).cloned() {
                    if let Some(interest) = self.files.interests.get_mut(&name) {
                        interest.receiver = None;
                        interest.publisher = None;
                        self.subs_dirty = true;
                    }
                }
            }
            Message::Fragment { msg_id, index, count, payload } => {
                if let Ok(Some(full)) =
                    self.reassembler.offer(src, msg_id, index, count, payload, now)
                {
                    if let Ok(inner) = Message::decode_tagged(&full) {
                        self.handle_message(src, inner, now);
                    }
                }
            }
        }
    }

    pub(super) fn handle_subscribe_var(
        &mut self,
        name: Name,
        subscriber: NodeId,
        need_initial: bool,
        now: Micros,
    ) {
        let initial = {
            let Some(pv) = self.vars.published.get_mut(&name) else { return };
            pv.remote_subscribers.insert(subscriber);
            match pv.last.clone() {
                Some((payload, stamp)) if need_initial && pv.last_is_valid(now) => {
                    Some((payload, stamp, pv.seq, pv.validity_us))
                }
                _ => None,
            }
        };
        if let Some((payload, stamp, seq, validity_us)) = initial {
            // The resend gets a fresh causal id: it is this container
            // re-publishing the retained sample towards one subscriber.
            let trace = self.tracer.mint();
            self.tracer.record(
                now,
                TraceKind::VarPublish,
                trace,
                Some(subscriber),
                seq,
                Some(&name),
            );
            let msg = Message::VarSample {
                name,
                seq,
                stamp_us: stamp.as_micros(),
                validity_us,
                trace: trace.wire(),
                codec: self.codecs.default_id().0,
                payload,
            };
            // The initial exact value is *guaranteed* (§4.1), so unlike the
            // periodic samples it travels on the reliable channel.
            self.send_reliable(subscriber, &msg, now);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_var_sample(
        &mut self,
        name: Name,
        seq: u64,
        stamp_us: u64,
        validity_us: u64,
        trace: TraceId,
        codec: u8,
        payload: Bytes,
        now: Micros,
    ) {
        let peer = if trace.is_none() { None } else { Some(trace.origin()) };
        let decoded = {
            let Some(sub) = self.vars.subscribed.get_mut(&name) else { return };
            // Validity QoS: drop samples past their window (paper §4.1).
            if validity_us > 0 && now.saturating_since(Micros(stamp_us)).as_micros() > validity_us {
                self.stats.stale_samples_dropped += 1;
                sub.stale_drops += 1;
                self.tracer.record(now, TraceKind::VarStaleDrop, trace, peer, seq, Some(&name));
                return;
            }
            if !sub.accept(seq, now) {
                self.stats.old_samples_dropped += 1;
                self.tracer.record(now, TraceKind::VarOldDrop, trace, peer, seq, Some(&name));
                return;
            }
            let value = match (&sub.ty, CodecId(codec)) {
                (Some(ty), id) => match self.codecs.get(id) {
                    Some(c) => c.decode(&payload, ty).ok(),
                    None => None,
                },
                (None, CodecId(1)) => {
                    SelfDescribingCodec::decode_any(&payload).ok().map(|(_, v)| v)
                }
                _ => None,
            };
            value.map(|v| {
                sub.record(Micros(stamp_us), v.clone());
                (v, sub.services.clone())
            })
        };
        let Some((value, services)) = decoded else {
            // The sample passed filtering but its payload does not decode
            // against the announced schema: a publisher/subscriber
            // contract violation, not a transport problem.
            self.vars.type_mismatches += 1;
            self.log_line(now, format!("sample of `{name}` violates announced schema; dropped"));
            return;
        };
        self.vars.arm_deadline(&name);
        for svc in services {
            self.push_task(
                Priority::VARIABLE,
                svc,
                TaskPayload::DeliverVariable {
                    name: name.clone(),
                    value: value.clone(),
                    stamp: Micros(stamp_us),
                    seq,
                    trace,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_event_data(
        &mut self,
        name: Name,
        seq: u64,
        stamp_us: u64,
        trace: TraceId,
        codec: u8,
        payload: Bytes,
        now: Micros,
    ) {
        let decoded = {
            let Some(sub) = self.events.subscribed.get(&name) else { return };
            let value = if payload.is_empty() {
                None
            } else {
                match (&sub.ty, CodecId(codec)) {
                    (Some(ty), id) => self.codecs.get(id).and_then(|c| c.decode(&payload, ty).ok()),
                    (None, CodecId(1)) => {
                        SelfDescribingCodec::decode_any(&payload).ok().map(|(_, v)| v)
                    }
                    _ => None,
                }
            };
            (value, !sub.subscribers.is_empty())
        };
        let (value, any_subscriber) = decoded;
        if value.is_none() && !payload.is_empty() {
            // A payload arrived but does not decode against the announced
            // schema; the event is still delivered bare so subscribers see
            // the occurrence, and the disagreement is counted.
            self.events.type_mismatches += 1;
            self.log_line(now, format!("event `{name}` payload violates announced schema"));
        }
        if any_subscriber {
            self.push_event_deliveries(&name, value, seq, Micros(stamp_us), trace, now);
        }
    }

    /// Fans one event out to the local subscribers under their declared
    /// [`EventQos`](crate::EventQos) contracts: each subscription's
    /// deliveries ride its own priority lane, and bounded inboxes apply
    /// their drop policy when full.
    pub(super) fn push_event_deliveries(
        &mut self,
        name: &Name,
        value: Option<Value>,
        seq: u64,
        stamp: Micros,
        trace: TraceId,
        now: Micros,
    ) {
        enum Admission {
            Push,
            ReplaceOldest,
            Refuse,
        }
        let decisions: Vec<(u32, Priority, Admission)> = {
            let Some(sub) = self.events.subscribed.get_mut(name) else { return };
            sub.subscribers
                .iter_mut()
                .map(|entry| {
                    let admission = if entry.inbox >= entry.qos.queue_bound {
                        entry.drops += 1;
                        match entry.qos.drop_policy {
                            DropPolicy::DropOldest => Admission::ReplaceOldest,
                            DropPolicy::DropNewest => Admission::Refuse,
                        }
                    } else {
                        entry.inbox += 1;
                        entry.inbox_peak = entry.inbox_peak.max(entry.inbox);
                        Admission::Push
                    };
                    (entry.seq, entry.qos.priority, admission)
                })
                .collect()
        };
        for (svc, priority, admission) in decisions {
            match admission {
                Admission::Refuse => {
                    self.tracer.record(now, TraceKind::EventDrop, trace, None, seq, Some(name));
                    continue;
                }
                Admission::ReplaceOldest => {
                    self.tracer.record(now, TraceKind::EventDrop, trace, None, seq, Some(name));
                    // Retract this subscription's stalest queued delivery to
                    // admit the fresh one; the inbox depth is unchanged
                    // (one out, one in). If nothing was queued despite the
                    // accounting (cannot happen: inboxes are decremented
                    // exactly when deliveries leave the queue), the push
                    // below still keeps the depth within one of the bound.
                    let _ = self.scheduler.remove_matching(&mut |t| {
                        t.service_seq == svc
                            && matches!(&t.payload,
                                TaskPayload::DeliverEvent { name: n, .. } if n == name)
                    });
                }
                Admission::Push => {}
            }
            self.push_task(
                priority,
                svc,
                TaskPayload::DeliverEvent {
                    name: name.clone(),
                    value: value.clone(),
                    seq,
                    stamp,
                    trace,
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn handle_call_request(
        &mut self,
        caller: NodeId,
        request: RequestId,
        function: Name,
        target_seq: u32,
        trace: TraceId,
        codec: u8,
        payload: Bytes,
        now: Micros,
    ) {
        enum Outcome {
            Execute(Vec<Value>),
            Refuse(CallStatus),
        }
        let outcome = {
            match self.rpc.functions.get(&function) {
                None => Outcome::Refuse(CallStatus::NoSuchFunction),
                Some(func) => {
                    let available = self
                        .slots
                        .get((target_seq as usize).wrapping_sub(1))
                        .map(|s| s.state.is_available() || s.state == ServiceState::Starting)
                        .unwrap_or(false);
                    if func.owner_seq != target_seq || !available {
                        Outcome::Refuse(CallStatus::ServiceUnavailable)
                    } else {
                        match self.codecs.get(CodecId(codec)) {
                            Some(c) => match decode_args(&payload, &func.sig, c.as_ref()) {
                                Ok(args) => Outcome::Execute(args),
                                Err(_) => {
                                    self.rpc.type_mismatches += 1;
                                    Outcome::Refuse(CallStatus::AppError)
                                }
                            },
                            None => Outcome::Refuse(CallStatus::AppError),
                        }
                    }
                }
            }
        };
        match outcome {
            Outcome::Execute(args) => {
                self.push_task(
                    Priority::CALL,
                    target_seq,
                    TaskPayload::ExecuteCall { request, caller, function, args, trace },
                );
            }
            Outcome::Refuse(status) => {
                let m = Message::CallReply {
                    request,
                    status,
                    trace: trace.wire(),
                    codec,
                    payload: Bytes::new(),
                };
                self.send_reliable(caller, &m, now);
            }
        }
    }

    pub(super) fn handle_call_reply(
        &mut self,
        request: RequestId,
        status: CallStatus,
        trace: TraceId,
        codec: u8,
        payload: Bytes,
        now: Micros,
    ) {
        let Some(call) = self.rpc.pending.remove(&request) else { return };
        // Prefer the wire echo; calls issued before tracing was enabled
        // fall back to the locally stored id.
        let trace = if trace.is_none() { call.trace } else { trace };
        let result = match status {
            CallStatus::Ok => match self.codecs.get(CodecId(codec)) {
                Some(c) => {
                    let decoded = decode_result(&payload, &call.returns, c.as_ref());
                    if decoded.is_err() {
                        self.rpc.type_mismatches += 1;
                    }
                    decoded
                }
                None => Err(CallError::BadArguments("unknown codec".into())),
            },
            CallStatus::AppError => {
                Err(CallError::App(String::from_utf8_lossy(&payload).into_owned()))
            }
            CallStatus::NoSuchFunction => Err(CallError::NoSuchFunction),
            CallStatus::ServiceUnavailable | CallStatus::Timeout => {
                // Provider-side refusal: try another provider before giving
                // up (degraded-mode continuation, §4.3).
                self.rpc.track(request, call);
                self.failover_call(request, now);
                return;
            }
        };
        if result.is_err() {
            self.stats.call_errors += 1;
        }
        self.tracer.record_call_rtt(now.saturating_since(call.started_at).as_micros());
        self.tracer.record(
            now,
            TraceKind::CallReply,
            trace,
            Some(call.target.node),
            request.0,
            Some(&call.function),
        );
        self.push_task(
            Priority::CALL,
            call.caller_seq,
            TaskPayload::DeliverReply { request, result },
        );
    }

    pub(super) fn handle_file_announce(&mut self, src: NodeId, msg: Message, now: Micros) {
        let Message::FileAnnounce { transfer, ref resource, revision, size, .. } = msg else {
            return;
        };
        if self.files.outgoing.contains_key(resource) {
            // A remote publisher announced a resource this node already
            // publishes: two writers behind one name violates the resource
            // contract, the same class of disagreement the other engines
            // count as type mismatches.
            self.files.type_mismatches += 1;
            self.log_line(
                now,
                format!("remote announce for locally published resource `{resource}` ignored"),
            );
            return;
        }
        self.files.transfer_index.insert(transfer, resource.clone());
        self.files.seen_announces.insert(resource.clone(), (src, msg.clone()));

        enum Wire {
            Fresh,
            Resubscribe,
            Nothing,
        }
        let (wire, services) = {
            let Some(interest) = self.files.interests.get_mut(resource) else { return };
            if interest.services.is_empty() || interest.completed_revision == Some(revision) {
                return;
            }
            match &mut interest.receiver {
                Some(rx) => match rx.on_announce(&msg) {
                    Ok(AnnounceOutcome::Restarted) => {
                        interest.publisher = Some(src);
                        (Wire::Resubscribe, interest.services.clone())
                    }
                    _ => (Wire::Nothing, Vec::new()),
                },
                None => {
                    match FileReceiver::from_announce(
                        &msg,
                        self.config.node,
                        RevisionPolicy::Restart,
                    ) {
                        Ok((rx, _sub)) => {
                            interest.receiver = Some(rx);
                            interest.publisher = Some(src);
                            (Wire::Fresh, interest.services.clone())
                        }
                        Err(_) => (Wire::Nothing, Vec::new()),
                    }
                }
            }
        };
        match wire {
            Wire::Fresh => {
                self.transport.join(file_group(resource).0);
                let sub = Message::FileSubscribe { transfer, subscriber: self.config.node };
                self.send_reliable(src, &sub, now);
            }
            Wire::Resubscribe => {
                let sub = Message::FileSubscribe { transfer, subscriber: self.config.node };
                self.send_reliable(src, &sub, now);
            }
            Wire::Nothing => {}
        }
        let resource = resource.clone();
        for svc in services {
            self.push_task(
                Priority::FILE,
                svc,
                TaskPayload::File(FileEvent::Announced {
                    resource: resource.clone(),
                    revision,
                    size,
                }),
            );
        }
    }

    pub(super) fn handle_file_chunk(
        &mut self,
        transfer: TransferId,
        revision: u32,
        index: u32,
        payload: Bytes,
        now: Micros,
    ) {
        let completion = {
            let Some(name) = self.files.resource_of(transfer).cloned() else { return };
            let Some(interest) = self.files.interests.get_mut(&name) else { return };
            let Some(mut rx) = interest.receiver.take() else { return };
            if rx.on_chunk(revision, index, &payload) {
                let data = rx.into_data();
                interest.completed_revision = Some(revision);
                Some((name, data, interest.services.clone(), interest.publisher))
            } else {
                interest.receiver = Some(rx);
                None
            }
        };
        let Some((name, data, services, publisher)) = completion else { return };
        self.stats.files_received += 1;
        for svc in services {
            self.push_task(
                Priority::FILE,
                svc,
                TaskPayload::File(FileEvent::Received {
                    resource: name.clone(),
                    revision,
                    data: data.clone(),
                }),
            );
        }
        if let Some(publisher) = publisher {
            let ack = Message::FileAck { transfer, revision, subscriber: self.config.node };
            self.send_reliable(publisher, &ack, now);
        }
    }

    pub(super) fn poll_links(&mut self, now: Micros) {
        // Only links with in-flight or unflushed state are polled: a
        // quiescent link's poll is a no-op, so skipping it is
        // output-equivalent and keeps the sweep O(active) instead of
        // O(peers) at fleet scale. `active_links` is a BTreeSet, so the
        // per-peer send order stays sorted — it decides how the simulated
        // network's RNG stream maps onto datagrams (same seed ⇒ same
        // trace).
        let mut polled = std::mem::take(&mut self.link_scratch);
        polled.clear();
        polled.extend(self.active_links.iter().copied());
        for peer in polled.drain(..) {
            let Some(link) = self.links.get_mut(&peer) else {
                self.active_links.remove(&peer);
                continue;
            };
            let (out, failed) = link.poll(now);
            let retransmits = link.take_retransmits();
            if !link.needs_poll() {
                self.active_links.remove(&peer);
            }
            for seq in retransmits {
                self.tracer.record(
                    now,
                    TraceKind::RelRetransmit,
                    TraceId::NONE,
                    Some(peer),
                    seq,
                    None,
                );
            }
            self.send_link_messages(peer, out);
            if !failed.is_empty() {
                self.log_line(
                    now,
                    format!("reliable delivery to {peer} abandoned for {} messages", failed.len()),
                );
            }
        }
        self.link_scratch = polled;
        // Links die with their peers, so the max is re-derived each sweep
        // rather than tracked incrementally. This gauge walk sends nothing.
        let mut rate_max = 0u8;
        // marea-lint: allow(D1): max over link gauges is order-independent; nothing sends here
        for link in self.links.values() {
            let tag = link.fec_rate().wire_tag();
            if tag > rate_max {
                rate_max = tag;
            }
        }
        self.stats.fec.negotiated_rate_max = rate_max;
    }

    pub(super) fn pump_files(&mut self, now: Micros) {
        // Stable send order (determinism); scratch buffer avoids a fresh
        // Vec allocation every tick.
        let mut resources = std::mem::take(&mut self.sweep_scratch);
        sorted_keys_into(&self.files.outgoing, &mut resources);
        for resource in resources.drain(..) {
            let group = file_group(&resource);
            let mut to_control: Vec<Message> = Vec::new();
            let mut to_group: Vec<Message> = Vec::new();
            {
                let Some(out) = self.files.outgoing.get_mut(&resource) else { continue };
                if out.sender.is_complete() {
                    continue;
                }
                if out.sender.has_pending_chunks() {
                    to_group = out.sender.next_chunks(self.config.file_burst);
                } else {
                    let due = out
                        .last_query_at
                        .map(|t| now.saturating_since(t) >= self.config.file_query_interval)
                        .unwrap_or(true);
                    if due {
                        out.last_query_at = Some(now);
                        // Re-announce with each query round so late joiners
                        // can subscribe mid-transfer (§4.4 phase overlap).
                        to_control.push(out.sender.announce());
                        to_group.push(out.sender.query());
                    }
                }
            }
            for m in to_control {
                self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &m);
            }
            for m in to_group {
                self.send_message(TransportDestination::Group(group.0), &m);
            }
            self.notify_distribution_complete(&resource);
        }
        self.sweep_scratch = resources;
    }

    pub(super) fn notify_distribution_complete(&mut self, resource: &Name) {
        let pending = {
            let Some(out) = self.files.outgoing.get_mut(resource) else { return };
            if out.sender.is_complete() && !out.complete_notified {
                out.complete_notified = true;
                Some((out.owner_seq, out.sender.revision(), out.sender.stats().completed))
            } else {
                None
            }
        };
        if let Some((owner, revision, subscribers)) = pending {
            self.push_task(
                Priority::FILE,
                owner,
                TaskPayload::File(FileEvent::DistributionComplete {
                    resource: resource.clone(),
                    revision,
                    subscribers,
                }),
            );
        }
    }
}
