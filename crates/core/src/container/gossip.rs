//! Periodic control-plane output: heartbeats and the catalogue gossip
//! (full `Announce` broadcasts, compact `AnnounceDigest` summaries, and
//! the debounced forced re-announce path).

use marea_protocol::messages::announce_hash;

use super::*;

impl ServiceContainer {
    pub(super) fn emit_periodics(&mut self, now: Micros) {
        let hb_due = self
            .last_heartbeat
            .map(|t| now.saturating_since(t) >= self.config.heartbeat_period)
            .unwrap_or(true);
        if hb_due {
            self.last_heartbeat = Some(now);
            let msg = Message::Heartbeat {
                incarnation: self.incarnation,
                uptime_us: now.saturating_since(self.started_at).as_micros(),
                load_permille: self.load_permille(),
                fec_cap: self.config.fec.advertised_cap().wire_tag(),
            };
            self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &msg);
        }
        let flush_forced = self.reannounce_pending
            && self
                .last_forced_reannounce
                .map(|t| now.saturating_since(t) >= self.config.announce_period)
                .unwrap_or(true);
        let ann_due = self
            .last_announce
            .map(|t| now.saturating_since(t) >= self.config.announce_period)
            .unwrap_or(true);
        if flush_forced {
            self.reannounce_pending = false;
            self.last_forced_reannounce = Some(now);
            self.broadcast_announce(now);
        } else if ann_due {
            self.emit_catalogue_periodic(now);
        }
    }

    /// A peer signalled it lacks our catalogue (its `Hello`, typically).
    /// The first trigger re-broadcasts the full catalogue immediately so
    /// discovery converges fast; repeats inside one announce period
    /// collapse into a single pending re-announce that `emit_periodics`
    /// flushes at the next period boundary — a burst of `Hello`s can no
    /// longer flood the control group with full-catalogue broadcasts.
    pub(super) fn request_reannounce(&mut self, now: Micros) {
        let allowed = self
            .last_forced_reannounce
            .map(|t| now.saturating_since(t) >= self.config.announce_period)
            .unwrap_or(true);
        if allowed {
            self.last_forced_reannounce = Some(now);
            self.reannounce_pending = false;
            self.broadcast_announce(now);
        } else {
            self.reannounce_pending = true;
        }
    }

    /// The periodic announce slot: the full catalogue when it changed
    /// since the last broadcast, otherwise the compact `AnnounceDigest`
    /// summary. Receivers whose stored digest disagrees pull the full
    /// catalogue unicast with `AnnounceRequest` (delta-on-mismatch), so
    /// the steady-state control plane carries digests, not catalogues.
    fn emit_catalogue_periodic(&mut self, now: Micros) {
        let entries = self.announce_entries();
        let digest = (announce_hash(self.incarnation, &entries), entries.len() as u32);
        if self.last_announce_digest == Some(digest) {
            self.last_announce = Some(now);
            let msg = Message::AnnounceDigest {
                incarnation: self.incarnation,
                entry_count: digest.1,
                catalogue_hash: digest.0,
            };
            self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &msg);
        } else {
            self.broadcast_announce(now);
        }
    }

    pub(super) fn broadcast_announce(&mut self, now: Micros) {
        self.last_announce = Some(now);
        let entries = self.announce_entries();
        self.directory.apply_announce(self.config.node, &entries, now);
        let digest = (announce_hash(self.incarnation, &entries), entries.len() as u32);
        self.directory.set_catalogue_digest(self.config.node, digest.0, digest.1);
        self.last_announce_digest = Some(digest);
        let msg = Message::Announce { incarnation: self.incarnation, entries };
        self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &msg);
    }

    pub(super) fn announce_entries(&self) -> Vec<AnnounceEntry> {
        self.slots
            .iter()
            .map(|s| AnnounceEntry {
                service_seq: s.seq,
                name: s.descriptor.name().clone(),
                state: s.state,
                provides: s.descriptor.provides().to_vec(),
            })
            .collect()
    }
}
