//! The pluggable handler scheduler.
//!
//! Paper §6: *"our implementation also [has] a pluggable scheduler that
//! queues and arranges event/variable handlers and service calls execution
//! ... current scheduler implementation is basically a simple thread pool
//! with fixed priorities for each named primitive"*.
//!
//! MAREA's deterministic container executes handler invocations cooperatively
//! inside `tick`, bounded by a per-tick budget; the *scheduling policy* —
//! which queued invocation runs next — is what this module makes pluggable.
//! [`PriorityScheduler`] implements the paper's fixed priorities per
//! primitive; [`FifoScheduler`] is the ablation baseline for experiment C5
//! (soft real-time behaviour under load).

use std::collections::VecDeque;
use std::fmt;

use bytes::Bytes;

use marea_presentation::{Name, Value};
use marea_protocol::{Micros, NodeId, RequestId};

use crate::error::CallError;
use crate::service::{FileEvent, ProviderNotice, TimerId};
use crate::trace::TraceId;

/// Fixed handler priority; lower value runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// Lifecycle transitions (start/stop) — always first.
    pub const LIFECYCLE: Priority = Priority(0);
    /// Event deliveries ("reservation of time slots ... will ensure this
    /// critical constraint", §4.2).
    pub const EVENT: Priority = Priority(1);
    /// Remote invocation executions and replies.
    pub const CALL: Priority = Priority(2);
    /// Timer expirations.
    pub const TIMER: Priority = Priority(3);
    /// Variable sample deliveries (loss-tolerant, lowest urgency of the
    /// messaging primitives).
    pub const VARIABLE: Priority = Priority(4);
    /// File transfer progress/completion notifications.
    pub const FILE: Priority = Priority(5);
    /// Background work that must never crowd out any primitive — the lane
    /// event subscriptions opt into via
    /// [`EventQos::bulk`](crate::EventQos::bulk).
    pub const BULK: Priority = Priority(6);
}

/// One queued handler invocation.
#[derive(Debug)]
pub struct Task {
    /// Scheduling class.
    pub priority: Priority,
    /// Admission order, used as FIFO tie-break within a priority.
    pub enqueued_seq: u64,
    /// Target service instance (per-node sequence).
    pub service_seq: u32,
    /// What to run.
    pub payload: TaskPayload,
}

/// The handler to invoke.
#[derive(Debug)]
pub enum TaskPayload {
    /// Run `on_start`.
    Start,
    /// Run `on_stop`.
    Stop,
    /// Deliver a variable sample.
    DeliverVariable {
        /// Variable name.
        name: Name,
        /// Decoded sample.
        value: Value,
        /// Publisher's production stamp.
        stamp: Micros,
        /// Sample sequence number.
        seq: u64,
        /// Causal id threaded from the publisher (flight recorder).
        trace: TraceId,
    },
    /// Warn that a variable stopped arriving (validity/deadline QoS).
    VariableTimeout {
        /// Variable name.
        name: Name,
    },
    /// Deliver an event.
    DeliverEvent {
        /// Event name.
        name: Name,
        /// Decoded payload (None for bare events).
        value: Option<Value>,
        /// Event sequence number on its channel.
        seq: u64,
        /// Publisher's production stamp.
        stamp: Micros,
        /// Causal id threaded from the emitter (flight recorder).
        trace: TraceId,
    },
    /// Execute a remotely invoked function.
    ExecuteCall {
        /// Correlation id to reply with.
        request: RequestId,
        /// Caller node (local node = in-container call).
        caller: NodeId,
        /// Function name.
        function: Name,
        /// Decoded arguments.
        args: Vec<Value>,
        /// Causal id from the caller's request, echoed in the reply.
        trace: TraceId,
    },
    /// Deliver a remote invocation outcome to the caller.
    DeliverReply {
        /// The handle returned by `call`.
        request: RequestId,
        /// Outcome.
        result: Result<Value, CallError>,
    },
    /// Deliver a file-transfer notification.
    File(FileEvent),
    /// Deliver a provider-availability notification.
    Provider(ProviderNotice),
    /// Run a timer handler.
    Timer {
        /// The timer that fired.
        id: TimerId,
    },
    /// Deliver raw bytes of a completed same-node file bypass (kept as a
    /// separate variant so the bypass path is observable in tests).
    FileBypass {
        /// Resource name.
        resource: Name,
        /// Revision delivered.
        revision: u32,
        /// File content.
        data: Bytes,
    },
}

/// A pluggable task queue.
///
/// Implementations must be deterministic: identical push sequences produce
/// identical pop sequences.
pub trait Scheduler: Send + fmt::Debug {
    /// Admits a task.
    fn push(&mut self, task: Task);

    /// Removes the next task to run.
    fn pop(&mut self) -> Option<Task>;

    /// Removes and returns the *oldest* queued task matching `pred`
    /// (lowest admission order), or `None` when nothing matches.
    ///
    /// The container uses this to enforce
    /// [`DropPolicy::DropOldest`](crate::DropPolicy::DropOldest) on
    /// bounded event inboxes: the stalest queued delivery of an
    /// overflowing subscription is retracted to admit the fresh one.
    fn remove_matching(&mut self, pred: &mut dyn FnMut(&Task) -> bool) -> Option<Task>;

    /// Queued task count.
    fn len(&self) -> usize;

    /// `true` when no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed-priority scheduler (the paper's policy): lower [`Priority`] first,
/// FIFO within a priority.
#[derive(Debug, Default)]
pub struct PriorityScheduler {
    // One FIFO lane per priority keeps pop O(#priorities) and strictly
    // deterministic.
    lanes: Vec<(Priority, VecDeque<Task>)>,
    len: usize,
}

impl PriorityScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        PriorityScheduler::default()
    }
}

impl Scheduler for PriorityScheduler {
    fn push(&mut self, task: Task) {
        let pos = self.lanes.iter().position(|(p, _)| *p == task.priority);
        match pos {
            Some(i) => self.lanes[i].1.push_back(task),
            None => {
                self.lanes.push((task.priority, VecDeque::from([task])));
                self.lanes.sort_by_key(|(p, _)| *p);
            }
        }
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Task> {
        for (_, lane) in self.lanes.iter_mut() {
            if let Some(t) = lane.pop_front() {
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }

    fn remove_matching(&mut self, pred: &mut dyn FnMut(&Task) -> bool) -> Option<Task> {
        // Within a lane tasks are FIFO, so the first match per lane is that
        // lane's oldest; the globally oldest is the one with the lowest
        // admission sequence across lanes.
        let mut best: Option<(usize, usize, u64)> = None;
        for (li, (_, lane)) in self.lanes.iter().enumerate() {
            if let Some((i, t)) = lane.iter().enumerate().find(|(_, t)| pred(t)) {
                if best.is_none_or(|(_, _, seq)| t.enqueued_seq < seq) {
                    best = Some((li, i, t.enqueued_seq));
                }
            }
        }
        let (li, i, _) = best?;
        self.len -= 1;
        self.lanes[li].1.remove(i)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// First-in-first-out scheduler, ignoring priorities — the ablation
/// baseline for experiment C5.
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<Task>,
}

impl FifoScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        FifoScheduler::default()
    }
}

impl Scheduler for FifoScheduler {
    fn push(&mut self, task: Task) {
        self.queue.push_back(task);
    }

    fn pop(&mut self) -> Option<Task> {
        self.queue.pop_front()
    }

    fn remove_matching(&mut self, pred: &mut dyn FnMut(&Task) -> bool) -> Option<Task> {
        let i = self.queue.iter().position(pred)?;
        self.queue.remove(i)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Which built-in scheduler a container uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Fixed priorities per primitive (paper §6).
    #[default]
    Priority,
    /// Plain FIFO (ablation baseline).
    Fifo,
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Priority => Box::new(PriorityScheduler::new()),
            SchedulerKind::Fifo => Box::new(FifoScheduler::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(priority: Priority, seq: u64) -> Task {
        Task {
            priority,
            enqueued_seq: seq,
            service_seq: 0,
            payload: TaskPayload::Timer { id: TimerId(seq) },
        }
    }

    #[test]
    fn priority_scheduler_orders_by_priority_then_fifo() {
        let mut s = PriorityScheduler::new();
        s.push(task(Priority::VARIABLE, 1));
        s.push(task(Priority::EVENT, 2));
        s.push(task(Priority::VARIABLE, 3));
        s.push(task(Priority::EVENT, 4));
        s.push(task(Priority::LIFECYCLE, 5));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|t| t.enqueued_seq).collect();
        assert_eq!(order, vec![5, 2, 4, 1, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_scheduler_ignores_priority() {
        let mut s = FifoScheduler::new();
        s.push(task(Priority::VARIABLE, 1));
        s.push(task(Priority::EVENT, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|t| t.enqueued_seq).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut s = PriorityScheduler::new();
        assert_eq!(s.len(), 0);
        s.push(task(Priority::CALL, 1));
        s.push(task(Priority::FILE, 2));
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_matching_takes_the_oldest_match() {
        let mut s = PriorityScheduler::new();
        s.push(task(Priority::EVENT, 1));
        s.push(task(Priority::BULK, 2));
        s.push(task(Priority::BULK, 3));
        // Oldest BULK task is seq 2, even though EVENT pops first.
        let t = s.remove_matching(&mut |t| t.priority == Priority::BULK).unwrap();
        assert_eq!(t.enqueued_seq, 2);
        assert_eq!(s.len(), 2);
        assert!(s.remove_matching(&mut |t| t.priority == Priority::FILE).is_none());
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|t| t.enqueued_seq).collect();
        assert_eq!(order, vec![1, 3]);

        let mut f = FifoScheduler::new();
        f.push(task(Priority::EVENT, 1));
        f.push(task(Priority::EVENT, 2));
        let t = f.remove_matching(&mut |_| true).unwrap();
        assert_eq!(t.enqueued_seq, 1, "fifo: front is oldest");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn kind_builds_both() {
        assert!(format!("{:?}", SchedulerKind::Priority.build()).contains("Priority"));
        assert!(format!("{:?}", SchedulerKind::Fifo.build()).contains("Fifo"));
    }

    #[test]
    fn priority_constants_are_ordered() {
        assert!(Priority::LIFECYCLE < Priority::EVENT);
        assert!(Priority::EVENT < Priority::CALL);
        assert!(Priority::CALL < Priority::TIMER);
        assert!(Priority::TIMER < Priority::VARIABLE);
        assert!(Priority::VARIABLE < Priority::FILE);
        assert!(Priority::FILE < Priority::BULK);
    }
}
