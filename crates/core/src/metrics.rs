//! Deterministic metrics timeline — periodic counter sampling on the
//! sim clock.
//!
//! The flight recorder ([`crate::trace`]) answers *"what happened to
//! this one message"*; this module answers *"how did the system trend
//! over the run"*. A [`MetricsSampler`] owned by the
//! [`SimHarness`](crate::SimHarness) fires on a configurable
//! **sim-clock** period and snapshots every container's
//! [`ContainerStats`] (QoS, FEC and latency histograms included) plus
//! the netsim's per-link delivery counters into a bounded in-memory
//! timeline of [`MetricsFrame`] / [`LinkFrame`] rows.
//!
//! Determinism rules (the reason BENCH_*.json files can be byte-diffed
//! in CI):
//!
//! * sampling is driven by virtual time only — no wall-clock reads
//!   (lint rule D2 covers this file like any other);
//! * the sample path allocates no strings and performs integer
//!   arithmetic only (lint rule O1's scope includes this file; its
//!   matchers cover the `fn sample_*` bodies and the frame literals);
//! * nodes are visited in sorted `NodeId` order and links in sorted
//!   `(src, dst)` order, so the same seed reproduces the same timeline
//!   byte for byte;
//! * rendering ([`MetricsSampler::to_jsonl`] / [`to_json`]) happens at
//!   dump time, never at sample time, and formats integers only.
//!
//! Each frame carries **deltas** since the previous sample of the same
//! node (counters restart from zero after a node restart: deltas
//! saturate at zero rather than underflow) and the p50/p99/p999 bounds
//! of the latency observed **within the sample window** (bucket-wise
//! histogram difference). The timeline is bounded: once `capacity`
//! frames are held, the oldest are evicted and counted.
//!
//! [`to_json`]: MetricsSampler::to_json

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;

use marea_netsim::SimNet;
use marea_protocol::{Micros, NodeId, ProtoDuration};

use crate::container::ServiceContainer;
use crate::stats::ContainerStats;
use crate::trace::LatencyHistogram;

/// Configuration of the [`MetricsSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Sim-clock sampling period.
    pub period: ProtoDuration,
    /// Maximum node frames (and, independently, link frames) retained;
    /// older rows are evicted and counted once the bound is reached.
    pub capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { period: ProtoDuration::from_millis(100), capacity: 4096 }
    }
}

impl MetricsConfig {
    /// Config with the given sampling period and the default bound.
    pub fn with_period(period: ProtoDuration) -> Self {
        MetricsConfig { period, ..Self::default() }
    }
}

/// Count and log2-bucket quantile bounds of the latency observed in one
/// sample window (`None` quantiles when the window saw no samples).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded in the window.
    pub count: u64,
    /// Upper bound of the window's 50th percentile, µs.
    pub p50_us: Option<u64>,
    /// Upper bound of the window's 99th percentile, µs.
    pub p99_us: Option<u64>,
    /// Upper bound of the window's 99.9th percentile, µs.
    pub p999_us: Option<u64>,
}

impl LatencySummary {
    /// Summarizes a histogram (typically a window delta).
    pub fn of(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            p50_us: h.p50_us(),
            p99_us: h.p99_us(),
            p999_us: h.p999_us(),
        }
    }

    /// Summarizes the samples recorded between two cumulative snapshots.
    pub fn of_window(now: &LatencyHistogram, prev: &LatencyHistogram) -> Self {
        Self::of(&now.saturating_diff(prev))
    }
}

/// One node's activity in one sample window: counter deltas since the
/// node's previous sample plus windowed latency quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsFrame {
    /// Virtual time of the sample (global harness clock).
    pub at: Micros,
    /// Monotone sample index (1-based; shared by every node's frame of
    /// the same sampling instant).
    pub sample: u64,
    /// Node the frame describes.
    pub node: NodeId,
    /// Frames received from the transport.
    pub frames_in: u64,
    /// Frames handed to the transport.
    pub frames_out: u64,
    /// Frame bytes handed to the transport.
    pub bytes_out: u64,
    /// Handler invocations executed.
    pub tasks_executed: u64,
    /// Variable samples published.
    pub vars_published: u64,
    /// Variable samples delivered to local handlers.
    pub var_samples_delivered: u64,
    /// Events published.
    pub events_published: u64,
    /// Events delivered to local handlers.
    pub events_delivered: u64,
    /// Remote invocations started.
    pub calls_made: u64,
    /// Invocations executed on behalf of callers.
    pub calls_served: u64,
    /// File publications (including revisions).
    pub files_published: u64,
    /// File receptions completed over the network.
    pub files_received: u64,
    /// QoS: variable loss deadlines missed.
    pub deadline_misses: u64,
    /// QoS: stale variable samples dropped.
    pub stale_drops: u64,
    /// QoS: event deliveries dropped by bounded inboxes.
    pub queue_drops: u64,
    /// QoS: invocations re-dispatched to another provider.
    pub retries: u64,
    /// FEC: data shards sent.
    pub fec_data_shards_out: u64,
    /// FEC: parity shards sent.
    pub fec_parity_shards_out: u64,
    /// FEC: shards received.
    pub fec_shards_in: u64,
    /// FEC: erased frames rebuilt from parity.
    pub fec_recovered: u64,
    /// Publish→deliver latency observed in this window.
    pub var_latency: LatencySummary,
    /// Event production→handler latency observed in this window.
    pub event_latency: LatencySummary,
    /// Call round-trip latency observed in this window.
    pub call_rtt: LatencySummary,
}

/// One link's delivery activity in one sample window (emitted only for
/// links that attempted at least one datagram in the window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFrame {
    /// Virtual time of the sample.
    pub at: Micros,
    /// Monotone sample index (matches the node frames of the instant).
    pub sample: u64,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Datagrams attempted on the link in the window.
    pub attempts: u64,
    /// Datagrams lost on the link in the window.
    pub lost: u64,
}

/// Bounded, allocation-disciplined timeline of periodic counter samples.
///
/// Owned by the harness (see
/// [`SimHarness::enable_metrics`](crate::SimHarness::enable_metrics));
/// [`sample_fleet`](MetricsSampler::sample_fleet) is invoked from
/// `SimHarness::step` whenever the period elapses.
#[derive(Debug)]
pub struct MetricsSampler {
    period_us: u64,
    next_due_us: u64,
    sample: u64,
    capacity: usize,
    frames: VecDeque<MetricsFrame>,
    links: VecDeque<LinkFrame>,
    evicted_frames: u64,
    evicted_links: u64,
    last: BTreeMap<NodeId, ContainerStats>,
    last_links: BTreeMap<(u32, u32), (u64, u64)>,
    scratch_nodes: Vec<NodeId>,
}

impl MetricsSampler {
    /// Creates a sampler whose first sample is due one period after
    /// `now` (the harness clock at enable time).
    pub fn new(config: MetricsConfig, now: Micros) -> Self {
        let period_us = config.period.as_micros().max(1);
        MetricsSampler {
            period_us,
            next_due_us: now.0.saturating_add(period_us),
            sample: 0,
            capacity: config.capacity.max(1),
            frames: VecDeque::with_capacity(config.capacity.clamp(1, 4096)),
            links: VecDeque::with_capacity(config.capacity.clamp(1, 4096)),
            evicted_frames: 0,
            evicted_links: 0,
            last: BTreeMap::new(),
            last_links: BTreeMap::new(),
            scratch_nodes: Vec::with_capacity(64),
        }
    }

    /// True when the period has elapsed and the harness should sample.
    pub fn due(&self, now: Micros) -> bool {
        now.0 >= self.next_due_us
    }

    /// Sampling period in µs.
    pub fn period_us(&self) -> u64 {
        self.period_us
    }

    /// Samples every container and every active link once.
    ///
    /// This is the hot path the O1 lint rule guards: no string
    /// allocation, no wall-clock reads, integer math only. The only
    /// heap activity is amortized growth of the pre-sized frame
    /// buffers and the per-node last-snapshot map (first sample of a
    /// node only).
    pub fn sample_fleet(
        &mut self,
        at: Micros,
        containers: &HashMap<NodeId, ServiceContainer>,
        net: &SimNet,
    ) {
        self.sample += 1;
        while self.next_due_us <= at.0 {
            self.next_due_us += self.period_us;
        }
        let mut nodes = std::mem::take(&mut self.scratch_nodes);
        nodes.clear();
        nodes.extend(containers.keys().copied());
        nodes.sort_unstable();
        for &node in &nodes {
            if let Some(container) = containers.get(&node) {
                let stats = container.stats();
                self.sample_node(at, node, &stats);
            }
        }
        self.scratch_nodes = nodes;
        let sample = self.sample;
        net.with_stats(|s| {
            for (&(src, dst), observed) in &s.per_link {
                let (prev_attempts, prev_lost) =
                    self.last_links.get(&(src, dst)).copied().unwrap_or((0, 0));
                let attempts = observed.attempts.saturating_sub(prev_attempts);
                let lost = observed.lost.saturating_sub(prev_lost);
                self.last_links.insert((src, dst), (observed.attempts, observed.lost));
                if attempts == 0 && lost == 0 {
                    continue;
                }
                if self.links.len() >= self.capacity {
                    self.links.pop_front();
                    self.evicted_links += 1;
                }
                self.links.push_back(LinkFrame { at, sample, src, dst, attempts, lost });
            }
        });
    }

    /// Folds one node's cumulative stats into a delta frame.
    fn sample_node(&mut self, at: Micros, node: NodeId, stats: &ContainerStats) {
        let prev = self.last.get(&node).copied().unwrap_or_default();
        let d = |now: u64, before: u64| now.saturating_sub(before);
        let frame = MetricsFrame {
            at,
            sample: self.sample,
            node,
            frames_in: d(stats.frames_in, prev.frames_in),
            frames_out: d(stats.frames_out, prev.frames_out),
            bytes_out: d(stats.bytes_out, prev.bytes_out),
            tasks_executed: d(stats.tasks_executed, prev.tasks_executed),
            vars_published: d(stats.vars_published, prev.vars_published),
            var_samples_delivered: d(stats.var_samples_delivered, prev.var_samples_delivered),
            events_published: d(stats.events_published, prev.events_published),
            events_delivered: d(stats.events_delivered, prev.events_delivered),
            calls_made: d(stats.calls_made, prev.calls_made),
            calls_served: d(stats.calls_served, prev.calls_served),
            files_published: d(stats.files_published, prev.files_published),
            files_received: d(stats.files_received, prev.files_received),
            deadline_misses: d(stats.qos.deadline_misses, prev.qos.deadline_misses),
            stale_drops: d(stats.qos.stale_drops, prev.qos.stale_drops),
            queue_drops: d(stats.qos.queue_drops, prev.qos.queue_drops),
            retries: d(stats.qos.retries, prev.qos.retries),
            fec_data_shards_out: d(stats.fec.data_shards_out, prev.fec.data_shards_out),
            fec_parity_shards_out: d(stats.fec.parity_shards_out, prev.fec.parity_shards_out),
            fec_shards_in: d(stats.fec.shards_in, prev.fec.shards_in),
            fec_recovered: d(stats.fec.recovered, prev.fec.recovered),
            var_latency: LatencySummary::of_window(
                &stats.publish_to_deliver,
                &prev.publish_to_deliver,
            ),
            event_latency: LatencySummary::of_window(
                &stats.event_to_deliver,
                &prev.event_to_deliver,
            ),
            call_rtt: LatencySummary::of_window(&stats.call_rtt, &prev.call_rtt),
        };
        if self.frames.len() >= self.capacity {
            self.frames.pop_front();
            self.evicted_frames += 1;
        }
        self.frames.push_back(frame);
        self.last.insert(node, *stats);
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.sample
    }

    /// Retained node frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &MetricsFrame> {
        self.frames.iter()
    }

    /// Retained link frames, oldest first.
    pub fn link_frames(&self) -> impl Iterator<Item = &LinkFrame> {
        self.links.iter()
    }

    /// Node frames evicted by the capacity bound.
    pub fn evicted_frames(&self) -> u64 {
        self.evicted_frames
    }

    /// Link frames evicted by the capacity bound.
    pub fn evicted_links(&self) -> u64 {
        self.evicted_links
    }

    /// Renders the timeline as JSONL: one `kind:"node"` object per node
    /// frame, one `kind:"link"` object per link frame, and a trailing
    /// `kind:"summary"` line. Byte-deterministic for a given timeline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.frames.len() * 256 + self.links.len() * 96 + 128);
        for f in &self.frames {
            frame_json(&mut out, f);
            out.push('\n');
        }
        for l in &self.links {
            link_json(&mut out, l);
            out.push('\n');
        }
        let _ = write!(
            out,
            "{{\"kind\":\"summary\",\"samples\":{},\"frames\":{},\"links\":{},\"evicted_frames\":{},\"evicted_links\":{}}}",
            self.sample,
            self.frames.len(),
            self.links.len(),
            self.evicted_frames,
            self.evicted_links,
        );
        out.push('\n');
        out
    }

    /// Renders the timeline as one JSON document with `frames`,
    /// `links` and eviction counters. Byte-deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.frames.len() * 256 + self.links.len() * 96 + 128);
        out.push_str("{\n  \"frames\": [\n");
        for (i, f) in self.frames.iter().enumerate() {
            out.push_str("    ");
            frame_json(&mut out, f);
            if i + 1 < self.frames.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n  \"links\": [\n");
        for (i, l) in self.links.iter().enumerate() {
            out.push_str("    ");
            link_json(&mut out, l);
            if i + 1 < self.links.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = write!(
            out,
            "  ],\n  \"samples\": {},\n  \"evicted_frames\": {},\n  \"evicted_links\": {}\n}}\n",
            self.sample, self.evicted_frames, self.evicted_links,
        );
        out
    }
}

fn opt_json(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => {
            let _ = write!(out, "{x}");
        }
        None => out.push_str("null"),
    }
}

fn summary_json(out: &mut String, key: &str, s: &LatencySummary) {
    let _ = write!(out, "\"{key}_count\":{},\"{key}_p50_us\":", s.count);
    opt_json(out, s.p50_us);
    let _ = write!(out, ",\"{key}_p99_us\":");
    opt_json(out, s.p99_us);
    let _ = write!(out, ",\"{key}_p999_us\":");
    opt_json(out, s.p999_us);
}

fn frame_json(out: &mut String, f: &MetricsFrame) {
    let _ = write!(
        out,
        "{{\"kind\":\"node\",\"at_us\":{},\"sample\":{},\"node\":{},\
         \"frames_in\":{},\"frames_out\":{},\"bytes_out\":{},\"tasks_executed\":{},\
         \"vars_published\":{},\"var_samples_delivered\":{},\
         \"events_published\":{},\"events_delivered\":{},\
         \"calls_made\":{},\"calls_served\":{},\
         \"files_published\":{},\"files_received\":{},\
         \"deadline_misses\":{},\"stale_drops\":{},\"queue_drops\":{},\"retries\":{},\
         \"fec_data_shards_out\":{},\"fec_parity_shards_out\":{},\"fec_shards_in\":{},\"fec_recovered\":{},",
        f.at.0,
        f.sample,
        f.node.0,
        f.frames_in,
        f.frames_out,
        f.bytes_out,
        f.tasks_executed,
        f.vars_published,
        f.var_samples_delivered,
        f.events_published,
        f.events_delivered,
        f.calls_made,
        f.calls_served,
        f.files_published,
        f.files_received,
        f.deadline_misses,
        f.stale_drops,
        f.queue_drops,
        f.retries,
        f.fec_data_shards_out,
        f.fec_parity_shards_out,
        f.fec_shards_in,
        f.fec_recovered,
    );
    summary_json(out, "var", &f.var_latency);
    out.push(',');
    summary_json(out, "event", &f.event_latency);
    out.push(',');
    summary_json(out, "call", &f.call_rtt);
    out.push('}');
}

fn link_json(out: &mut String, l: &LinkFrame) {
    let _ = write!(
        out,
        "{{\"kind\":\"link\",\"at_us\":{},\"sample\":{},\"src\":{},\"dst\":{},\"attempts\":{},\"lost\":{}}}",
        l.at.0, l.sample, l.src, l.dst, l.attempts, l.lost,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_at(sample: u64, node: u32) -> MetricsFrame {
        MetricsFrame {
            at: Micros(sample * 1000),
            sample,
            node: NodeId(node),
            frames_in: 1,
            frames_out: 2,
            bytes_out: 3,
            tasks_executed: 4,
            vars_published: 5,
            var_samples_delivered: 6,
            events_published: 7,
            events_delivered: 8,
            calls_made: 9,
            calls_served: 10,
            files_published: 0,
            files_received: 0,
            deadline_misses: 0,
            stale_drops: 0,
            queue_drops: 0,
            retries: 0,
            fec_data_shards_out: 0,
            fec_parity_shards_out: 0,
            fec_shards_in: 0,
            fec_recovered: 0,
            var_latency: LatencySummary::default(),
            event_latency: LatencySummary::default(),
            call_rtt: LatencySummary::default(),
        }
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let cfg = MetricsConfig { period: ProtoDuration::from_millis(1), capacity: 3 };
        let mut s = MetricsSampler::new(cfg, Micros(0));
        for i in 1..=5 {
            if s.frames.len() >= s.capacity {
                s.frames.pop_front();
                s.evicted_frames += 1;
            }
            s.frames.push_back(frame_at(i, 1));
        }
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.evicted_frames(), 2);
        assert_eq!(s.frames().next().map(|f| f.sample), Some(3));
    }

    #[test]
    fn due_respects_period_grid() {
        let cfg = MetricsConfig { period: ProtoDuration::from_millis(10), capacity: 8 };
        let s = MetricsSampler::new(cfg, Micros(5_000));
        assert!(!s.due(Micros(5_000)));
        assert!(!s.due(Micros(14_999)));
        assert!(s.due(Micros(15_000)));
    }

    #[test]
    fn summary_of_window_subtracts_previous_snapshot() {
        let mut prev = LatencyHistogram::default();
        let mut now = LatencyHistogram::default();
        for us in [10, 20, 30] {
            prev.record(us);
            now.record(us);
        }
        for us in [100, 200, 400, 800] {
            now.record(us);
        }
        let w = LatencySummary::of_window(&now, &prev);
        assert_eq!(w.count, 4);
        assert!(w.p50_us.unwrap() >= 100);
        let empty = LatencySummary::of_window(&prev, &prev);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p50_us, None);
    }

    #[test]
    fn jsonl_is_deterministic_and_carries_all_quantile_fields() {
        let cfg = MetricsConfig::default();
        let mut s = MetricsSampler::new(cfg, Micros(0));
        s.frames.push_back(frame_at(1, 7));
        s.links.push_back(LinkFrame {
            at: Micros(1000),
            sample: 1,
            src: 1,
            dst: 2,
            attempts: 9,
            lost: 1,
        });
        s.sample = 1;
        let a = s.to_jsonl();
        let b = s.to_jsonl();
        assert_eq!(a, b);
        assert!(a.contains("\"var_p999_us\":null"));
        assert!(a.contains("\"kind\":\"link\""));
        assert!(a.ends_with("\"evicted_links\":0}\n"));
        let doc = s.to_json();
        assert!(doc.contains("\"frames\": ["));
        assert!(doc.contains("\"samples\": 1"));
    }
}
