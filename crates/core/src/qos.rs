//! Typed QoS profiles: the per-endpoint contracts behind the §4 primitives.
//!
//! The paper defines each primitive *by* its quality of service — validity
//! windows and guaranteed initial values for variables (§4.1), reliable
//! ordered delivery for events (§4.2), bounded-time invocation with
//! transparent failover (§4.3). This module makes those contracts
//! first-class values: a service *declares* a [`VarQos`] / [`EventQos`]
//! profile together with each provision or subscription, and passes
//! [`CallOptions`] with each remote invocation. Every layer below — the
//! container, the four engines, the scheduler and the stats — enforces
//! exactly what was declared, and [`QosStats`](crate::QosStats) counts
//! every enforcement action.
//!
//! Profiles are plain `Copy` data with [`Default`] impls that reproduce
//! the pre-profile behaviour, so `VarQos::default()` is always a safe
//! starting point. Invalid profiles (zero validity, zero queue bounds,
//! empty history) are rejected at declaration time — a QoS contract is a
//! static property of the system, and a nonsensical one is a programming
//! error, not a runtime condition.

use std::fmt;

use marea_protocol::{NodeId, ProtoDuration};

use crate::scheduler::Priority;
use crate::service::CallPolicy;

/// Why a QoS profile is not a valid contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosError {
    /// A variable validity window of zero would drop every sample.
    ZeroValidity,
    /// A loss deadline of zero periods would warn on every tick.
    ZeroDeadlinePeriods,
    /// A history ring must hold at least the latest sample.
    ZeroHistory,
    /// An event inbox bound of zero could never deliver anything.
    ZeroQueueBound,
    /// A call deadline of zero would expire before dispatch.
    ZeroDeadline,
    /// A retry budget of zero would never even attempt the call.
    ZeroRetryBudget,
}

impl fmt::Display for QosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosError::ZeroValidity => write!(f, "validity window must be non-zero"),
            QosError::ZeroDeadlinePeriods => write!(f, "deadline_periods must be at least 1"),
            QosError::ZeroHistory => write!(f, "history must hold at least 1 sample"),
            QosError::ZeroQueueBound => write!(f, "queue_bound must be at least 1"),
            QosError::ZeroDeadline => write!(f, "call deadline must be non-zero"),
            QosError::ZeroRetryBudget => write!(f, "retry_budget must be at least 1"),
        }
    }
}

impl std::error::Error for QosError {}

/// The variable contract (paper §4.1): production cadence, sample
/// validity, loss deadline, per-subscription history depth and the
/// guaranteed-initial-value flag.
///
/// One profile serves both sides of the contract. A *provider* declares
/// `period` and `validity` (they are announced on the wire); a
/// *subscriber* declares `deadline_periods`, `history` and `need_initial`
/// (they tune local enforcement). Fields irrelevant to a side are simply
/// ignored by it, so a shared vocabulary module can hand the same profile
/// to both.
///
/// ```
/// use marea_core::VarQos;
/// use marea_protocol::ProtoDuration;
///
/// let qos = VarQos::periodic(ProtoDuration::from_millis(50), ProtoDuration::from_millis(200))
///     .with_history(8)
///     .with_initial();
/// assert_eq!(qos.deadline_periods, 3); // default loss deadline
/// qos.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarQos {
    /// Nominal production period ([`ProtoDuration::ZERO`] = aperiodic).
    pub period: ProtoDuration,
    /// How long a sample stays usable after production; older samples are
    /// dropped and counted as [`stale`](crate::QosStats::stale_drops).
    pub validity: ProtoDuration,
    /// Loss deadline in nominal periods: after this many periods without a
    /// sample the container warns the subscribers (aperiodic variables
    /// have no deadline). Local subscribers of one variable share the
    /// channel's deadline tracking — the tightest declared contract wins.
    pub deadline_periods: u32,
    /// Samples retained for the subscribed variable, readable via
    /// [`ServiceContext::history`](crate::ServiceContext::history). The
    /// ring is kept per channel on each container; when several local
    /// services subscribe to the same variable, the deepest declared
    /// history wins and all of them read the same ring.
    pub history: usize,
    /// Ask the provider for the current value on subscription (the §4.1
    /// guaranteed initial exact value, delivered reliably). Any local
    /// subscriber's request makes the channel fetch it.
    pub need_initial: bool,
}

impl Default for VarQos {
    /// Aperiodic, one-second validity, three-period deadline, latest
    /// sample only, no initial value — the pre-profile behaviour.
    fn default() -> Self {
        VarQos {
            period: ProtoDuration::ZERO,
            validity: ProtoDuration::from_secs(1),
            deadline_periods: 3,
            history: 1,
            need_initial: false,
        }
    }
}

impl VarQos {
    /// A periodic variable produced every `period`, valid for `validity`.
    pub fn periodic(period: ProtoDuration, validity: ProtoDuration) -> Self {
        VarQos { period, validity, ..VarQos::default() }
    }

    /// An aperiodic variable (no production cadence, no loss deadline)
    /// whose samples stay valid for `validity`.
    pub fn aperiodic(validity: ProtoDuration) -> Self {
        VarQos { period: ProtoDuration::ZERO, validity, ..VarQos::default() }
    }

    /// Overrides the validity window.
    #[must_use]
    pub fn with_validity(mut self, validity: ProtoDuration) -> Self {
        self.validity = validity;
        self
    }

    /// Overrides the loss deadline (in nominal periods).
    #[must_use]
    pub fn with_deadline_periods(mut self, periods: u32) -> Self {
        self.deadline_periods = periods;
        self
    }

    /// Retains the last `depth` samples for [`history`] reads.
    ///
    /// [`history`]: crate::ServiceContext::history
    #[must_use]
    pub fn with_history(mut self, depth: usize) -> Self {
        self.history = depth;
        self
    }

    /// Requests the guaranteed initial exact value (§4.1).
    #[must_use]
    pub fn with_initial(mut self) -> Self {
        self.need_initial = true;
        self
    }

    /// Sets the initial-value flag explicitly.
    #[must_use]
    pub fn with_need_initial(mut self, need_initial: bool) -> Self {
        self.need_initial = need_initial;
        self
    }

    /// Checks the profile is a satisfiable contract.
    ///
    /// # Errors
    ///
    /// The first violated rule: non-zero validity, at least one deadline
    /// period, at least one history slot.
    pub fn validate(&self) -> Result<(), QosError> {
        if self.validity == ProtoDuration::ZERO {
            return Err(QosError::ZeroValidity);
        }
        if self.deadline_periods == 0 {
            return Err(QosError::ZeroDeadlinePeriods);
        }
        if self.history == 0 {
            return Err(QosError::ZeroHistory);
        }
        Ok(())
    }
}

/// What happens when a bounded event inbox is full (paper §3 *resource
/// management*: the container bounds every queue a service can grow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DropPolicy {
    /// Discard the oldest queued delivery to admit the new one (keep the
    /// freshest events).
    #[default]
    DropOldest,
    /// Discard the incoming delivery (keep the backlog intact).
    DropNewest,
}

/// The event-subscription contract (paper §4.2): scheduler priority,
/// inbox bound and overflow policy, all per subscription.
///
/// ```
/// use marea_core::{DropPolicy, EventQos, Priority};
///
/// // A bulk telemetry feed that must never crowd out critical events:
/// let qos = EventQos::bulk().with_queue_bound(64);
/// assert_eq!(qos.priority, Priority::BULK);
/// assert_eq!(qos.drop_policy, DropPolicy::DropOldest);
/// qos.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventQos {
    /// Scheduler lane for this subscription's deliveries; overrides the
    /// fixed per-primitive [`Priority::EVENT`] lane.
    pub priority: Priority,
    /// Maximum queued-but-undelivered events for this subscription
    /// ([`EventQos::UNBOUNDED`] = no bound, the pre-profile behaviour).
    pub queue_bound: usize,
    /// Overflow policy when the inbox is full; each drop is counted in
    /// [`QosStats::queue_drops`](crate::QosStats::queue_drops).
    pub drop_policy: DropPolicy,
}

impl Default for EventQos {
    /// The fixed event lane, unbounded — the pre-profile behaviour.
    fn default() -> Self {
        EventQos {
            priority: Priority::EVENT,
            queue_bound: EventQos::UNBOUNDED,
            drop_policy: DropPolicy::default(),
        }
    }
}

impl EventQos {
    /// Sentinel for "no inbox bound".
    pub const UNBOUNDED: usize = usize::MAX;

    /// A background subscription: [`Priority::BULK`] lane, so floods on
    /// this channel cannot starve critical events.
    pub fn bulk() -> Self {
        EventQos { priority: Priority::BULK, ..EventQos::default() }
    }

    /// Overrides the scheduler lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Bounds the subscription inbox to `bound` queued deliveries.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Overrides the overflow policy.
    #[must_use]
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.drop_policy = policy;
        self
    }

    /// Checks the profile is a satisfiable contract.
    ///
    /// # Errors
    ///
    /// [`QosError::ZeroQueueBound`] for an inbox that could never hold a
    /// delivery.
    pub fn validate(&self) -> Result<(), QosError> {
        if self.queue_bound == 0 {
            return Err(QosError::ZeroQueueBound);
        }
        Ok(())
    }
}

/// The caller-visible invocation contract (paper §4.3): per-attempt reply
/// deadline, how many providers to try, and how the provider is chosen.
///
/// `None` fields fall back to the container-wide defaults
/// ([`ContainerConfig::call_timeout`] / [`max_call_attempts`]), so
/// `CallOptions::default()` reproduces the pre-profile behaviour exactly.
///
/// ```
/// use marea_core::{CallOptions, NodeId, ProtoDuration};
///
/// let opts = CallOptions::default()
///     .with_deadline(ProtoDuration::from_millis(100))
///     .with_retry_budget(2)
///     .pinned(NodeId(3));
/// opts.validate().unwrap();
/// ```
///
/// [`ContainerConfig::call_timeout`]: crate::ContainerConfig::call_timeout
/// [`max_call_attempts`]: crate::ContainerConfig::max_call_attempts
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallOptions {
    /// Reply deadline per attempt; a missed deadline triggers failover to
    /// the next provider (`None` = container default).
    pub deadline: Option<ProtoDuration>,
    /// Total providers tried before the call fails with
    /// [`CallError::Timeout`](crate::CallError::Timeout) (`None` =
    /// container default).
    pub retry_budget: Option<u32>,
    /// Provider-selection policy (static allocation vs dynamic load
    /// balancing, §4.3).
    pub policy: CallPolicy,
}

impl CallOptions {
    /// Overrides the per-attempt reply deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: ProtoDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the retry budget (total providers tried).
    #[must_use]
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Overrides the provider-selection policy.
    #[must_use]
    pub fn with_policy(mut self, policy: CallPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Prefers the provider on `node` while it is alive (static
    /// allocation with transparent failover).
    #[must_use]
    pub fn pinned(mut self, node: NodeId) -> Self {
        self.policy = CallPolicy::PreferNode(node);
        self
    }

    /// Checks the options form a satisfiable contract.
    ///
    /// # Errors
    ///
    /// Zero deadlines and zero retry budgets are rejected.
    pub fn validate(&self) -> Result<(), QosError> {
        if self.deadline == Some(ProtoDuration::ZERO) {
            return Err(QosError::ZeroDeadline);
        }
        if self.retry_budget == Some(0) {
            return Err(QosError::ZeroRetryBudget);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_defaults_preserve_legacy_semantics() {
        let q = VarQos::default();
        assert_eq!(q.deadline_periods, 3, "the historical 3-period loss deadline");
        assert_eq!(q.history, 1);
        assert!(!q.need_initial);
        q.validate().unwrap();
    }

    #[test]
    fn var_validation_rejects_degenerate_contracts() {
        assert_eq!(
            VarQos::default().with_validity(ProtoDuration::ZERO).validate(),
            Err(QosError::ZeroValidity)
        );
        assert_eq!(
            VarQos::default().with_deadline_periods(0).validate(),
            Err(QosError::ZeroDeadlinePeriods)
        );
        assert_eq!(VarQos::default().with_history(0).validate(), Err(QosError::ZeroHistory));
    }

    #[test]
    fn event_defaults_and_bulk_profile() {
        let q = EventQos::default();
        assert_eq!(q.priority, Priority::EVENT);
        assert_eq!(q.queue_bound, EventQos::UNBOUNDED);
        q.validate().unwrap();
        assert_eq!(EventQos::bulk().priority, Priority::BULK);
        assert_eq!(
            EventQos::default().with_queue_bound(0).validate(),
            Err(QosError::ZeroQueueBound)
        );
    }

    #[test]
    fn call_options_compose_and_validate() {
        let o = CallOptions::default();
        assert_eq!(o.deadline, None);
        assert_eq!(o.retry_budget, None);
        assert_eq!(o.policy, CallPolicy::Dynamic);
        o.validate().unwrap();

        let o = CallOptions::default()
            .with_deadline(ProtoDuration::from_millis(100))
            .with_retry_budget(1)
            .pinned(NodeId(2));
        assert_eq!(o.policy, CallPolicy::PreferNode(NodeId(2)));
        o.validate().unwrap();

        assert_eq!(
            CallOptions::default().with_deadline(ProtoDuration::ZERO).validate(),
            Err(QosError::ZeroDeadline)
        );
        assert_eq!(
            CallOptions::default().with_retry_budget(0).validate(),
            Err(QosError::ZeroRetryBudget)
        );
    }

    #[test]
    fn errors_render() {
        for e in [
            QosError::ZeroValidity,
            QosError::ZeroDeadlinePeriods,
            QosError::ZeroHistory,
            QosError::ZeroQueueBound,
            QosError::ZeroDeadline,
            QosError::ZeroRetryBudget,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
