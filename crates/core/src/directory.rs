//! Name management: the distributed directory and proxy cache.
//!
//! Paper §3: *"The services are addressed by name, and the Service Container
//! discovers the real location in the network of the named service ... In
//! case of service malfunctioning, it is also the container responsibility
//! to notify the other containers in the domain and to choose another
//! provider service if it is available. In this way, the containers are able
//! to clear and update their caches. From the name management point of view,
//! the Service Container acts as a proxy cache for the services it
//! contains."*
//!
//! Every container owns a [`Directory`] fed by `Hello`/`Announce`/
//! `ServiceStatus`/`Heartbeat`/`Bye` traffic. Lookups resolve provision
//! names to live providers; node death (heartbeat timeout or `Bye`) purges
//! everything learned from that node — the cache invalidation the paper
//! describes.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};

use marea_presentation::Name;
use marea_protocol::messages::{AnnounceEntry, Provision, ServiceState};
use marea_protocol::{Micros, NodeId, ProtoDuration, ServiceId};

use crate::service::CallPolicy;
use crate::sweep::sorted_keys;

/// One provider of a named provision.
#[derive(Debug, Clone)]
pub struct ProviderInfo {
    /// The providing service instance.
    pub service: ServiceId,
    /// The providing service's name.
    pub service_name: Name,
    /// Lifecycle state last advertised.
    pub state: ServiceState,
    /// The provision as announced (schema, QoS, signature).
    pub provision: Provision,
}

/// Liveness record of a remote (or the local) node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Container name advertised in `Hello`.
    pub container: Name,
    /// Restart counter.
    pub incarnation: u64,
    /// Last heartbeat (or any control message) receive time.
    pub last_seen: Micros,
    /// Advertised scheduler load (permille).
    pub load_permille: u16,
    /// FEC capability wire tag advertised in `Hello` (0 = FEC off).
    pub fec_cap: u8,
    /// Digest of the node's last applied full catalogue announce:
    /// `(announce_hash, entry_count)`. `None` until an announce is seen —
    /// a digest received in that state always mismatches, which is the
    /// unknown-node recovery trigger.
    pub catalogue_digest: Option<(u32, u32)>,
}

/// The per-container name directory / proxy cache.
#[derive(Debug, Default)]
pub struct Directory {
    providers: BTreeMap<Name, Vec<ProviderInfo>>,
    nodes: HashMap<NodeId, NodeInfo>,
    /// Provision names each node currently offers — the purge index that
    /// keeps announce application O(own catalogue) instead of a walk over
    /// every name known fleet-wide.
    node_provides: HashMap<NodeId, Vec<Name>>,
    /// Lazy expiry heap over `(last_seen, node)`. At most one live entry
    /// per node (`expiry_scheduled` tracks membership): a popped entry
    /// whose node has been refreshed since re-arms itself at the fresher
    /// `last_seen`, so the per-tick failure-detection sweep peeks one heap
    /// entry instead of sorting every known node.
    expiry: BinaryHeap<Reverse<(Micros, NodeId)>>,
    expiry_scheduled: HashSet<NodeId>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Records a node `Hello` (new or rebooted container).
    ///
    /// A higher incarnation than previously known wipes the node's cached
    /// provisions: they belong to the previous life.
    pub fn apply_hello(
        &mut self,
        node: NodeId,
        container: Name,
        incarnation: u64,
        fec_cap: u8,
        now: Micros,
    ) {
        let stale = self.nodes.get(&node).map(|n| n.incarnation < incarnation).unwrap_or(false);
        if stale {
            self.purge_node(node);
        }
        // A re-Hello at the same incarnation keeps the catalogue (and its
        // digest); a new life starts with no catalogue known.
        let catalogue_digest = self
            .nodes
            .get(&node)
            .filter(|n| n.incarnation == incarnation)
            .and_then(|n| n.catalogue_digest);
        self.nodes.insert(
            node,
            NodeInfo {
                container,
                incarnation,
                last_seen: now,
                load_permille: 0,
                fec_cap,
                catalogue_digest,
            },
        );
        self.schedule_expiry(node, now);
    }

    /// Records a heartbeat. Heartbeats refresh the FEC capability too
    /// (they carry the same claim as `Hello`), so a node that missed the
    /// peer's `Hello` — attached late, lossy bring-up — converges on the
    /// advertised cap within one heartbeat period.
    pub fn apply_heartbeat(
        &mut self,
        node: NodeId,
        incarnation: u64,
        load_permille: u16,
        fec_cap: u8,
        now: Micros,
    ) {
        match self.nodes.get_mut(&node) {
            Some(info) if info.incarnation == incarnation => {
                info.last_seen = now;
                info.load_permille = load_permille;
                info.fec_cap = fec_cap;
            }
            Some(info) if info.incarnation < incarnation => {
                // Missed the Hello of a reboot: resync.
                let container = info.container.clone();
                self.purge_node(node);
                self.nodes.insert(
                    node,
                    NodeInfo {
                        container,
                        incarnation,
                        last_seen: now,
                        load_permille,
                        fec_cap,
                        catalogue_digest: None,
                    },
                );
            }
            Some(_) => return, // stale heartbeat from an old incarnation
            None => {
                // Heartbeat before Hello (lost datagram): create a minimal
                // record so liveness tracking works; Announce will fill it.
                self.nodes.insert(
                    node,
                    NodeInfo {
                        container: Name::new("unknown").expect("literal"),
                        incarnation,
                        last_seen: now,
                        load_permille,
                        fec_cap,
                        catalogue_digest: None,
                    },
                );
            }
        }
        self.schedule_expiry(node, now);
    }

    /// Replaces everything known about `node`'s services with an announce.
    pub fn apply_announce(&mut self, node: NodeId, entries: &[AnnounceEntry], now: Micros) {
        self.purge_node_providers(node);
        if self.nodes.contains_key(&node) {
            if let Some(info) = self.nodes.get_mut(&node) {
                info.last_seen = now;
            }
            self.schedule_expiry(node, now);
        }
        let mut names: Vec<Name> = Vec::new();
        for entry in entries {
            for provision in &entry.provides {
                let name = provision.name().clone();
                self.providers.entry(name.clone()).or_default().push(ProviderInfo {
                    service: ServiceId::new(node, entry.service_seq),
                    service_name: entry.name.clone(),
                    state: entry.state,
                    provision: provision.clone(),
                });
                names.push(name);
            }
        }
        // Deterministic resolution order — only the touched lists re-sort.
        for name in &names {
            if let Some(list) = self.providers.get_mut(name) {
                list.sort_by_key(|p| (p.service.node, p.service.seq));
            }
        }
        names.sort_unstable();
        names.dedup();
        if names.is_empty() {
            self.node_provides.remove(&node);
        } else {
            self.node_provides.insert(node, names);
        }
    }

    /// Applies a single service state change.
    pub fn apply_status(&mut self, node: NodeId, service_seq: u32, state: ServiceState) {
        let id = ServiceId::new(node, service_seq);
        for list in self.providers.values_mut() {
            for p in list.iter_mut() {
                if p.service == id {
                    p.state = state;
                }
            }
        }
    }

    /// Handles a graceful `Bye`: immediate purge.
    pub fn apply_bye(&mut self, node: NodeId) {
        self.purge_node(node);
    }

    /// Drops nodes silent for longer than `timeout`; returns who died.
    ///
    /// This is the failure-detection sweep: every returned node's cached
    /// provisions were purged ("the containers are able to clear and update
    /// their caches").
    pub fn expire(&mut self, now: Micros, timeout: ProtoDuration) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = Vec::new();
        while let Some(&Reverse((seen, node))) = self.expiry.peek() {
            if now.saturating_since(seen) < timeout {
                break;
            }
            self.expiry.pop();
            match self.nodes.get(&node) {
                Some(info) if info.last_seen > seen => {
                    // Refreshed since queued: re-arm at the fresher deadline.
                    self.expiry.push(Reverse((info.last_seen, node)));
                }
                Some(_) => {
                    self.expiry_scheduled.remove(&node);
                    dead.push(node);
                    self.purge_node(node);
                }
                None => {
                    // Left via `Bye` while still queued: drop the entry.
                    self.expiry_scheduled.remove(&node);
                }
            }
        }
        // Stable order: callers react to each death with sends/failovers,
        // which must not depend on heap pop order among equal deadlines.
        dead.sort_unstable();
        dead
    }

    fn purge_node(&mut self, node: NodeId) {
        self.nodes.remove(&node);
        self.purge_node_providers(node);
    }

    fn purge_node_providers(&mut self, node: NodeId) {
        let Some(names) = self.node_provides.remove(&node) else { return };
        for name in names {
            if let Some(list) = self.providers.get_mut(&name) {
                list.retain(|p| p.service.node != node);
                if list.is_empty() {
                    self.providers.remove(&name);
                }
            }
        }
    }

    /// Queues `node` on the expiry heap if it is not already there. The
    /// heap holds at most one entry per node; refreshes are absorbed by
    /// the re-arm-on-pop in [`Directory::expire`].
    fn schedule_expiry(&mut self, node: NodeId, last_seen: Micros) {
        if self.expiry_scheduled.insert(node) {
            self.expiry.push(Reverse((last_seen, node)));
        }
    }

    /// Refreshes `node`'s liveness without touching its catalogue — a
    /// digest receipt counts as proof of life just like a full announce.
    pub fn touch(&mut self, node: NodeId, now: Micros) {
        if let Some(info) = self.nodes.get_mut(&node) {
            info.last_seen = now;
            self.schedule_expiry(node, now);
        }
    }

    /// Records the digest of the catalogue just applied from `node`.
    pub fn set_catalogue_digest(&mut self, node: NodeId, hash: u32, entry_count: u32) {
        if let Some(info) = self.nodes.get_mut(&node) {
            info.catalogue_digest = Some((hash, entry_count));
        }
    }

    /// `true` when a received digest matches the catalogue last applied
    /// from `node` — same incarnation, same entry count, same hash. Any
    /// unknown node (or a known node with no announce applied yet) is a
    /// mismatch, which is what triggers catalogue recovery.
    pub fn catalogue_matches(
        &self,
        node: NodeId,
        incarnation: u64,
        entry_count: u32,
        hash: u32,
    ) -> bool {
        self.nodes.get(&node).is_some_and(|info| {
            info.incarnation == incarnation && info.catalogue_digest == Some((hash, entry_count))
        })
    }

    /// `true` while the node is considered alive.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes.contains_key(&node)
    }

    /// Liveness record for a node.
    pub fn node(&self, node: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(&node)
    }

    /// All known nodes in id order.
    pub fn nodes(&self) -> Vec<NodeId> {
        sorted_keys(&self.nodes)
    }

    /// Every *available* provider of `name` (any provision kind), in
    /// deterministic order.
    pub fn providers(&self, name: &str) -> Vec<&ProviderInfo> {
        self.providers
            .get(name)
            .map(|list| {
                list.iter()
                    .filter(|p| p.state.is_available() && self.node_alive(p.service.node))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves a *function* provider under a call policy.
    ///
    /// Dynamic policy picks the lowest-load node ("runtime information can
    /// be used to redirect calls ... load balancing techniques are used",
    /// §4.3), tie-broken by node id. `exclude` skips a provider that just
    /// failed (failover re-resolution).
    pub fn resolve_function(
        &self,
        name: &str,
        policy: CallPolicy,
        exclude: Option<ServiceId>,
    ) -> Option<&ProviderInfo> {
        let candidates: Vec<&ProviderInfo> = self
            .providers(name)
            .into_iter()
            .filter(|p| matches!(p.provision, Provision::Function { .. }))
            .filter(|p| Some(p.service) != exclude)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        if let CallPolicy::PreferNode(node) = policy {
            if let Some(p) = candidates.iter().find(|p| p.service.node == node) {
                return Some(p);
            }
        }
        candidates.into_iter().min_by_key(|p| {
            let load = self.nodes.get(&p.service.node).map(|n| n.load_permille).unwrap_or(0);
            (load, p.service.node, p.service.seq)
        })
    }

    /// Resolves the provider of a *variable*, returning its announced QoS.
    pub fn resolve_variable(&self, name: &str) -> Option<&ProviderInfo> {
        self.providers(name).into_iter().find(|p| matches!(p.provision, Provision::Variable { .. }))
    }

    /// Resolves the provider of an *event channel*.
    pub fn resolve_event(&self, name: &str) -> Option<&ProviderInfo> {
        self.providers(name).into_iter().find(|p| matches!(p.provision, Provision::Event { .. }))
    }

    /// Resolves the provider of a *file resource*.
    pub fn resolve_file(&self, name: &str) -> Option<&ProviderInfo> {
        self.providers(name)
            .into_iter()
            .find(|p| matches!(p.provision, Provision::FileResource { .. }))
    }

    /// Number of distinct provision names known.
    pub fn provision_count(&self) -> usize {
        self.providers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_presentation::DataType;
    use marea_protocol::messages::FunctionSig;

    fn name(s: &str) -> Name {
        Name::new(s).unwrap()
    }

    fn announce_storage(seq: u32) -> AnnounceEntry {
        AnnounceEntry {
            service_seq: seq,
            name: name("storage"),
            state: ServiceState::Running,
            provides: vec![Provision::Function {
                name: name("storage/store"),
                sig: FunctionSig { params: vec![DataType::Str], returns: Some(DataType::Bool) },
            }],
        }
    }

    fn dir_with_two_storages() -> Directory {
        let mut d = Directory::new();
        d.apply_hello(NodeId(2), name("n2"), 1, 4, Micros(0));
        d.apply_hello(NodeId(3), name("n3"), 1, 4, Micros(0));
        d.apply_announce(NodeId(2), &[announce_storage(1)], Micros(0));
        d.apply_announce(NodeId(3), &[announce_storage(1)], Micros(0));
        d
    }

    #[test]
    fn resolve_prefers_low_load() {
        let mut d = dir_with_two_storages();
        d.apply_heartbeat(NodeId(2), 1, 800, 4, Micros(1));
        d.apply_heartbeat(NodeId(3), 1, 100, 4, Micros(1));
        let p = d.resolve_function("storage/store", CallPolicy::Dynamic, None).unwrap();
        assert_eq!(p.service.node, NodeId(3), "lower load wins");
    }

    #[test]
    fn resolve_static_pin_and_fallback() {
        let mut d = dir_with_two_storages();
        let p =
            d.resolve_function("storage/store", CallPolicy::PreferNode(NodeId(3)), None).unwrap();
        assert_eq!(p.service.node, NodeId(3));
        // Pinned node dies: falls back to the survivor.
        d.apply_bye(NodeId(3));
        let p =
            d.resolve_function("storage/store", CallPolicy::PreferNode(NodeId(3)), None).unwrap();
        assert_eq!(p.service.node, NodeId(2));
    }

    #[test]
    fn exclude_skips_failed_provider() {
        let d = dir_with_two_storages();
        let first = d.resolve_function("storage/store", CallPolicy::Dynamic, None).unwrap();
        let second =
            d.resolve_function("storage/store", CallPolicy::Dynamic, Some(first.service)).unwrap();
        assert_ne!(first.service, second.service);
    }

    #[test]
    fn heartbeat_timeout_purges_cache() {
        let mut d = dir_with_two_storages();
        d.apply_heartbeat(NodeId(2), 1, 0, 4, Micros::from_millis(900));
        // Node 3 silent since t=0; node 2 heartbeated at 900ms.
        let dead = d.expire(Micros::from_millis(2100), ProtoDuration::from_secs(2));
        assert_eq!(dead, vec![NodeId(3)]);
        assert!(!d.node_alive(NodeId(3)));
        let remaining = d.providers("storage/store");
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].service.node, NodeId(2));
    }

    #[test]
    fn bye_is_immediate_purge() {
        let mut d = dir_with_two_storages();
        d.apply_bye(NodeId(2));
        assert!(!d.node_alive(NodeId(2)));
        assert_eq!(d.providers("storage/store").len(), 1);
    }

    #[test]
    fn status_change_hides_provider() {
        let mut d = dir_with_two_storages();
        d.apply_status(NodeId(2), 1, ServiceState::Failed);
        let ps = d.providers("storage/store");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].service.node, NodeId(3));
        // Degraded still counts as available (degraded mode, §4.3).
        d.apply_status(NodeId(3), 1, ServiceState::Degraded);
        assert_eq!(d.providers("storage/store").len(), 1);
    }

    #[test]
    fn reboot_wipes_previous_incarnation() {
        let mut d = dir_with_two_storages();
        assert_eq!(d.providers("storage/store").len(), 2);
        // Node 2 reboots with incarnation 2 and announces nothing yet.
        d.apply_hello(NodeId(2), name("n2"), 2, 4, Micros(100));
        assert_eq!(d.providers("storage/store").len(), 1);
        assert!(d.node_alive(NodeId(2)));
    }

    #[test]
    fn heartbeat_before_hello_creates_record() {
        let mut d = Directory::new();
        d.apply_heartbeat(NodeId(9), 1, 250, 3, Micros(5));
        assert!(d.node_alive(NodeId(9)));
        assert_eq!(d.node(NodeId(9)).unwrap().load_permille, 250);
        // The heartbeat carries the FEC capability, so a missed Hello
        // does not leave the link stuck uncoded.
        assert_eq!(d.node(NodeId(9)).unwrap().fec_cap, 3);
    }

    #[test]
    fn heartbeat_refreshes_fec_cap() {
        let mut d = Directory::new();
        d.apply_hello(NodeId(2), name("n2"), 1, 4, Micros(0));
        d.apply_heartbeat(NodeId(2), 1, 0, 2, Micros(1));
        assert_eq!(d.node(NodeId(2)).unwrap().fec_cap, 2, "heartbeat downgrades");
        d.apply_heartbeat(NodeId(2), 1, 0, 4, Micros(2));
        assert_eq!(d.node(NodeId(2)).unwrap().fec_cap, 4, "heartbeat upgrades");
    }

    #[test]
    fn re_announce_replaces_not_duplicates() {
        let mut d = Directory::new();
        d.apply_hello(NodeId(2), name("n2"), 1, 4, Micros(0));
        d.apply_announce(NodeId(2), &[announce_storage(1)], Micros(0));
        d.apply_announce(NodeId(2), &[announce_storage(1)], Micros(1));
        assert_eq!(d.providers("storage/store").len(), 1);
    }

    #[test]
    fn expire_rearms_refreshed_nodes_and_catches_them_later() {
        let mut d = dir_with_two_storages();
        // Both nodes refresh; their original heap entries are stale.
        d.apply_heartbeat(NodeId(2), 1, 0, 4, Micros::from_millis(1500));
        d.apply_heartbeat(NodeId(3), 1, 0, 4, Micros::from_millis(1800));
        // At 2.1s with a 2s timeout the t=0 entries pop but re-arm.
        assert!(d.expire(Micros::from_millis(2100), ProtoDuration::from_secs(2)).is_empty());
        assert!(d.node_alive(NodeId(2)) && d.node_alive(NodeId(3)));
        // Node 2 goes silent after 1.5s; the re-armed entry catches it.
        d.apply_heartbeat(NodeId(3), 1, 0, 4, Micros::from_millis(3000));
        let dead = d.expire(Micros::from_millis(3600), ProtoDuration::from_secs(2));
        assert_eq!(dead, vec![NodeId(2)]);
        assert!(d.providers("storage/store").len() == 1);
    }

    #[test]
    fn rejoin_after_bye_is_tracked_again() {
        let mut d = dir_with_two_storages();
        d.apply_bye(NodeId(3));
        d.apply_hello(NodeId(3), name("n3"), 2, 4, Micros::from_millis(100));
        // Silent after the rejoin: must still expire.
        d.apply_heartbeat(NodeId(2), 1, 0, 4, Micros::from_millis(2200));
        let dead = d.expire(Micros::from_millis(2300), ProtoDuration::from_secs(2));
        assert_eq!(dead, vec![NodeId(3)]);
    }

    #[test]
    fn catalogue_digest_matches_only_applied_catalogue() {
        let mut d = Directory::new();
        assert!(!d.catalogue_matches(NodeId(2), 1, 1, 0xAB), "unknown node mismatches");
        d.apply_hello(NodeId(2), name("n2"), 1, 4, Micros(0));
        assert!(!d.catalogue_matches(NodeId(2), 1, 1, 0xAB), "no announce applied yet");
        d.apply_announce(NodeId(2), &[announce_storage(1)], Micros(0));
        d.set_catalogue_digest(NodeId(2), 0xAB, 1);
        assert!(d.catalogue_matches(NodeId(2), 1, 1, 0xAB));
        assert!(!d.catalogue_matches(NodeId(2), 1, 1, 0xAC), "hash mismatch");
        assert!(!d.catalogue_matches(NodeId(2), 2, 1, 0xAB), "incarnation mismatch");
        // A reboot wipes the digest along with the catalogue.
        d.apply_hello(NodeId(2), name("n2"), 2, 4, Micros(50));
        assert!(!d.catalogue_matches(NodeId(2), 2, 1, 0xAB));
        // A re-Hello at the same incarnation keeps it.
        d.apply_announce(NodeId(2), &[announce_storage(1)], Micros(60));
        d.set_catalogue_digest(NodeId(2), 0xCD, 1);
        d.apply_hello(NodeId(2), name("n2"), 2, 4, Micros(70));
        assert!(d.catalogue_matches(NodeId(2), 2, 1, 0xCD));
    }

    #[test]
    fn kind_filters_apply() {
        let mut d = Directory::new();
        d.apply_hello(NodeId(2), name("n2"), 1, 4, Micros(0));
        d.apply_announce(
            NodeId(2),
            &[AnnounceEntry {
                service_seq: 1,
                name: name("gps"),
                state: ServiceState::Running,
                provides: vec![
                    Provision::Variable {
                        name: name("gps/position"),
                        ty: DataType::F64,
                        period_us: 50_000,
                        validity_us: 100_000,
                    },
                    Provision::Event { name: name("gps/fix-lost"), ty: None },
                    Provision::FileResource { name: name("gps/almanac") },
                ],
            }],
            Micros(0),
        );
        assert!(d.resolve_variable("gps/position").is_some());
        assert!(d.resolve_event("gps/fix-lost").is_some());
        assert!(d.resolve_file("gps/almanac").is_some());
        assert!(d.resolve_function("gps/position", CallPolicy::Dynamic, None).is_none());
        assert_eq!(d.provision_count(), 3);
    }
}
