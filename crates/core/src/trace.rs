//! The deterministic flight recorder: per-node causal tracing and
//! latency histograms on the sim clock.
//!
//! Avionics operators debugging a missed deadline need the causal chain,
//! not just counters (DESIGN.md §8). Every container owns a [`Tracer`]:
//! a bounded ring of structured [`TraceEvent`] records — publish /
//! deliver, event emit / drop, call / reply / retry, ARQ retransmit,
//! FEC recovery, link and directory lifecycle, node crash / restart —
//! each stamped with **sim event-time and node incarnation**. There is
//! no wall-clock read anywhere in this module (lint rule D2) and no
//! string allocation on the record path (lint rule O1): an event is
//! seven fixed-size fields plus an interned [`Name`] handle; rendering
//! happens only in the dump layer ([`render_event`], the `marea-trace`
//! CLI).
//!
//! Causality crosses the wire as a compact [`TraceId`] — origin node in
//! the high 32 bits, a per-container mint counter in the low 32 —
//! piggybacked on `VarSample`/`EventData`/`CallRequest`/`CallReply`
//! frames the same way `loss_permille` rides `RelAck`. Only the counter
//! varint actually travels ([`TraceId::wire`]): the origin is implied by
//! the frame's source (or by the caller, for replies), keeping traced
//! frames 1-3 bytes heavier rather than 5-6. Collecting every
//! ring's events for one id and sorting by event-time reconstructs the
//! sample's journey (publish → link → FEC recover → deliver); see
//! [`assemble_chain`].
//!
//! Latency distributions use [`LatencyHistogram`]: 32 fixed log2-µs
//! buckets, `Copy`, no allocation, exact p50/p99/p999 bucket bounds.
//! Everything here is deterministic: the same seed reproduces the same
//! ring contents and the same histogram, byte for byte (asserted by the
//! scenario corpus).

use std::collections::VecDeque;

use marea_presentation::Name;
use marea_protocol::{Micros, NodeId};

/// Compact causal identity of one traced sample, event or call.
///
/// Encoded as `origin_node << 32 | counter` so the id survives a varint
/// wire hop unchanged and the origin is recoverable without a lookup.
/// `TraceId::NONE` (zero) marks untraced frames — peers that never mint
/// ids interoperate for free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The null id: this frame carries no causal identity.
    pub const NONE: TraceId = TraceId(0);

    /// Builds an id from its origin node and mint counter.
    pub fn new(origin: NodeId, counter: u32) -> TraceId {
        TraceId((u64::from(origin.0) << 32) | u64::from(counter))
    }

    /// The node that minted this id.
    pub fn origin(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }

    /// The origin-local mint counter.
    pub fn counter(self) -> u32 {
        self.0 as u32
    }

    /// True for [`TraceId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The varint that goes on the wire: just the mint counter. The
    /// origin node never travels — every message type that carries a
    /// trace implies it (the frame's `src` for samples, events and
    /// requests; the caller itself for replies), so traced frames cost
    /// 1-3 varint bytes instead of the 5-6 a full 64-bit id would.
    pub fn wire(self) -> u64 {
        u64::from(self.counter())
    }

    /// Reassembles the full id from a wire counter and the origin the
    /// message type implies. Counter 0 is [`TraceId::NONE`].
    pub fn from_wire(origin: NodeId, counter: u64) -> TraceId {
        if counter == 0 {
            TraceId::NONE
        } else {
            TraceId::new(origin, counter as u32)
        }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            write!(f, "-")
        } else {
            write!(f, "{}:{}", self.origin().0, self.counter())
        }
    }
}

/// What happened. One variant per observable middleware action; the
/// record path stores only this discriminant — prose lives in
/// [`TraceKind::label`] and the dump layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the variant names are the documentation
pub enum TraceKind {
    /// A variable sample left the publisher (`seq` = sample seq).
    VarPublish,
    /// A variable sample reached a subscriber's handler.
    VarDeliver,
    /// A sample arrived already older than the channel validity.
    VarStaleDrop,
    /// A sample regressed the subscription's seq and was dropped.
    VarOldDrop,
    /// A subscribed channel missed its declared deadline.
    VarTimeout,
    /// An event left the emitter.
    EventEmit,
    /// An event reached a subscriber's handler.
    EventDeliver,
    /// An event delivery was dropped by a bounded inbox.
    EventDrop,
    /// A remote invocation was issued (`seq` = request id).
    CallStart,
    /// A reply (ok or error payload) reached the caller.
    CallReply,
    /// The call failed over / retried towards another provider.
    CallRetry,
    /// The ARQ retransmitted a reliable frame (`seq` = ARQ seq).
    RelRetransmit,
    /// The FEC decoder rebuilt erased frames without a retransmission.
    FecRecover,
    /// A reliable link to `peer` was (lazily) established.
    LinkUp,
    /// A reliable link to `peer` was torn down.
    LinkDown,
    /// A directory announce from `peer` was applied.
    DirAnnounce,
    /// `peer` was declared dead and its directory entries invalidated.
    DirExpire,
    /// The container started (incarnation in the stamp).
    NodeStart,
    /// The node was crashed by the harness / scenario.
    NodeCrash,
    /// The node was restarted (fresh incarnation).
    NodeRestart,
}

impl TraceKind {
    /// Stable lowercase label used by dumps, filters and JSON.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::VarPublish => "var_publish",
            TraceKind::VarDeliver => "var_deliver",
            TraceKind::VarStaleDrop => "var_stale_drop",
            TraceKind::VarOldDrop => "var_old_drop",
            TraceKind::VarTimeout => "var_timeout",
            TraceKind::EventEmit => "event_emit",
            TraceKind::EventDeliver => "event_deliver",
            TraceKind::EventDrop => "event_drop",
            TraceKind::CallStart => "call_start",
            TraceKind::CallReply => "call_reply",
            TraceKind::CallRetry => "call_retry",
            TraceKind::RelRetransmit => "rel_retransmit",
            TraceKind::FecRecover => "fec_recover",
            TraceKind::LinkUp => "link_up",
            TraceKind::LinkDown => "link_down",
            TraceKind::DirAnnounce => "dir_announce",
            TraceKind::DirExpire => "dir_expire",
            TraceKind::NodeStart => "node_start",
            TraceKind::NodeCrash => "node_crash",
            TraceKind::NodeRestart => "node_restart",
        }
    }
}

/// One flight-recorder record: fixed-size fields only (plus an interned
/// name handle), so recording never allocates on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim event-time of the action (node-local clock).
    pub at: Micros,
    /// Incarnation of the recording container (restarts bump it).
    pub incarnation: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Causal identity threaded across the wire; `NONE` if the action
    /// has no per-sample identity (e.g. link lifecycle).
    pub trace: TraceId,
    /// The other node involved, if any.
    pub peer: Option<NodeId>,
    /// Kind-specific sequence number (sample seq, request id, ARQ seq).
    pub seq: u64,
    /// The channel / function name involved, if any (interned; cloning
    /// is a refcount bump, not an allocation).
    pub name: Option<Name>,
}

/// Flight-recorder sizing and switch, per container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record anything at all. Off = every record call is one branch.
    pub enabled: bool,
    /// Ring capacity in events; oldest are evicted once full.
    pub capacity: usize,
}

impl TraceConfig {
    /// Tracing off: the recorder keeps nothing and costs one branch per
    /// record point (the `bench_trace_overhead` baseline).
    pub fn disabled() -> TraceConfig {
        TraceConfig { enabled: false, capacity: 0 }
    }

    /// Tracing on with a custom ring capacity.
    pub fn with_capacity(capacity: usize) -> TraceConfig {
        TraceConfig { enabled: true, capacity }
    }
}

impl Default for TraceConfig {
    /// On, 1024 events — the same order of magnitude as the container
    /// log ring, a few seconds of busy traffic.
    fn default() -> TraceConfig {
        TraceConfig { enabled: true, capacity: 1024 }
    }
}

/// Bounded event ring: oldest evicted first, capacity respected, an
/// eviction counter so dumps can say how much history fell off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRing {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    evicted: u64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing { buf: VecDeque::with_capacity(capacity.min(4096)), capacity, evicted: 0 }
    }

    /// Appends `ev`, evicting the oldest record if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
    }

    /// Records currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum records held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted to make room since the ring was created.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Absorbs a ring stashed across a crash/restart: the stashed
    /// history is replayed into this ring (oldest first), so the new
    /// incarnation's recorder starts with its predecessor's tail and
    /// this ring's own capacity still bounds the total.
    pub fn adopt(&mut self, older: TraceRing) {
        let mut merged = TraceRing::new(self.capacity);
        merged.evicted = self.evicted + older.evicted;
        for ev in older.buf {
            merged.push(ev);
        }
        for ev in self.buf.drain(..) {
            merged.push(ev);
        }
        *self = merged;
    }
}

/// Number of log2 buckets in a [`LatencyHistogram`].
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Fixed-bucket log2-µs latency histogram: bucket 0 holds exact zeros,
/// bucket `i` (1‥=30) holds `[2^(i-1), 2^i)` µs, bucket 31 saturates
/// everything ≥ 2^30 µs (~18 min). `Copy`, allocation-free, `Eq` — a
/// snapshot is just the struct, and same-seed runs produce identical
/// ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl LatencyHistogram {
    /// The bucket index a latency of `us` microseconds lands in.
    pub fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((us.ilog2() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound (µs) of bucket `i`; the last bucket's bound
    /// reads as "everything at or above" its lower edge.
    pub fn bucket_bound_us(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << i.min(HISTOGRAM_BUCKETS - 1)) - 1
        }
    }

    /// Records one sample. Never loses it: every `us` maps to exactly
    /// one bucket.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::bucket_of(us)] += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound (µs) of the bucket containing the `num/den` quantile
    /// (rank = ⌈count·num/den⌉), or `None` if the histogram is empty.
    /// Integer arithmetic throughout, so the answer is deterministic.
    pub fn quantile_bound_us(&self, num: u64, den: u64) -> Option<u64> {
        let count = self.count();
        if count == 0 || den == 0 {
            return None;
        }
        let rank = (count.saturating_mul(num)).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Self::bucket_bound_us(i));
            }
        }
        Some(Self::bucket_bound_us(HISTOGRAM_BUCKETS - 1))
    }

    /// Median bucket bound (µs).
    pub fn p50_us(&self) -> Option<u64> {
        self.quantile_bound_us(1, 2)
    }

    /// 99th-percentile bucket bound (µs).
    pub fn p99_us(&self) -> Option<u64> {
        self.quantile_bound_us(99, 100)
    }

    /// 99.9th-percentile bucket bound (µs).
    pub fn p999_us(&self) -> Option<u64> {
        self.quantile_bound_us(999, 1000)
    }

    /// Folds another histogram into this one (used when merging stats).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise difference against an `earlier` cumulative snapshot
    /// of the same histogram — the samples recorded in between. Buckets
    /// saturate at zero, so a counter reset (node restart) yields an
    /// empty window rather than an underflow.
    pub fn saturating_diff(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }
}

/// The per-container flight recorder: the ring, the id mint and the
/// four latency histograms the paper's QoS story cares about.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    node: NodeId,
    incarnation: u64,
    next_mint: u32,
    ring: TraceRing,
    /// publish → handler delivery latency of variable samples.
    pub publish_to_deliver: LatencyHistogram,
    /// emit → handler delivery latency of reliable events.
    pub event_to_deliver: LatencyHistogram,
    /// Remote invocation round-trip time.
    pub call_rtt: LatencyHistogram,
    /// First-retransmission → ACK recovery time on reliable links.
    pub rto_recovery: LatencyHistogram,
}

impl Tracer {
    /// A recorder for `node` under `config`.
    pub fn new(node: NodeId, config: TraceConfig) -> Tracer {
        Tracer {
            enabled: config.enabled,
            node,
            incarnation: 1,
            next_mint: 0,
            ring: TraceRing::new(if config.enabled { config.capacity } else { 0 }),
            publish_to_deliver: LatencyHistogram::default(),
            event_to_deliver: LatencyHistogram::default(),
            call_rtt: LatencyHistogram::default(),
            rto_recovery: LatencyHistogram::default(),
        }
    }

    /// Whether record calls do anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The node this recorder belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Stamps subsequent records with a new incarnation.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        self.incarnation = incarnation;
    }

    /// Mints the next causal id for a sample/event/call originating
    /// here. Deterministic: ids are dense per (node, incarnation run).
    pub fn mint(&mut self) -> TraceId {
        if !self.enabled {
            return TraceId::NONE;
        }
        self.next_mint = self.next_mint.wrapping_add(1);
        TraceId::new(self.node, self.next_mint)
    }

    /// Records one event. No-op (one branch) when disabled; the name is
    /// an interned handle, so this path never allocates a string.
    pub fn record(
        &mut self,
        at: Micros,
        kind: TraceKind,
        trace: TraceId,
        peer: Option<NodeId>,
        seq: u64,
        name: Option<&Name>,
    ) {
        if !self.enabled {
            return;
        }
        self.ring.push(TraceEvent {
            at,
            incarnation: self.incarnation,
            kind,
            trace,
            peer,
            seq,
            name: name.cloned(),
        });
    }

    /// Records a publish→deliver latency sample (µs).
    pub fn record_var_latency(&mut self, us: u64) {
        if self.enabled {
            self.publish_to_deliver.record(us);
        }
    }

    /// Records an event emit→deliver latency sample (µs).
    pub fn record_event_latency(&mut self, us: u64) {
        if self.enabled {
            self.event_to_deliver.record(us);
        }
    }

    /// Records a call round-trip sample (µs).
    pub fn record_call_rtt(&mut self, us: u64) {
        if self.enabled {
            self.call_rtt.record(us);
        }
    }

    /// Records a retransmit→ACK recovery sample (µs).
    pub fn record_rto_recovery(&mut self, us: u64) {
        if self.enabled {
            self.rto_recovery.record(us);
        }
    }

    /// The ring, for dumps.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Takes the ring out (crash stash), leaving an empty one.
    pub fn take_ring(&mut self) -> TraceRing {
        let capacity = self.ring.capacity();
        std::mem::replace(&mut self.ring, TraceRing::new(capacity))
    }

    /// Re-adopts a ring stashed across a crash/restart.
    pub fn adopt_ring(&mut self, older: TraceRing) {
        self.ring.adopt(older);
    }
}

/// All events across a set of per-node rings that carry causal id
/// `trace`, sorted into the deterministic causal order: event-time,
/// then node, then incarnation, then kind. This is the chain a
/// violation report and the `marea-trace` CLI both print.
pub fn assemble_chain(rings: &[(NodeId, &TraceRing)], trace: TraceId) -> Vec<(NodeId, TraceEvent)> {
    let mut out: Vec<(NodeId, TraceEvent)> = Vec::new();
    if trace.is_none() {
        return out;
    }
    for (node, ring) in rings {
        for ev in ring.events() {
            if ev.trace == trace {
                out.push((*node, ev.clone()));
            }
        }
    }
    out.sort_by_key(|(node, ev)| (ev.at, *node, ev.incarnation, ev.kind, ev.seq));
    out
}

/// Renders one record as the stable single-line text form shared by the
/// CLI, violation reports and the scenario corpus (changing this format
/// is a visible, test-pinned decision).
pub fn render_event(node: NodeId, ev: &TraceEvent) -> String {
    let peer = match ev.peer {
        Some(p) => p.0.to_string(),
        None => "-".to_string(),
    };
    let name = ev.name.as_ref().map(|n| n.as_str()).unwrap_or("-");
    format!(
        "{:>10}us n{} i{} {:<14} trace={} peer={} seq={} name={}",
        ev.at.0,
        node.0,
        ev.incarnation,
        ev.kind.label(),
        ev.trace,
        peer,
        ev.seq,
        name
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: TraceKind, trace: TraceId) -> TraceEvent {
        TraceEvent { at: Micros(at), incarnation: 1, kind, trace, peer: None, seq: 0, name: None }
    }

    #[test]
    fn trace_id_packs_origin_and_counter() {
        let id = TraceId::new(NodeId(7), 42);
        assert_eq!(id.origin(), NodeId(7));
        assert_eq!(id.counter(), 42);
        assert!(!id.is_none());
        assert!(TraceId::NONE.is_none());
        assert_eq!(id.to_string(), "7:42");
        assert_eq!(TraceId::NONE.to_string(), "-");
    }

    #[test]
    fn ring_wraparound_evicts_oldest_and_respects_capacity() {
        let mut ring = TraceRing::new(4);
        for at in 0..10u64 {
            ring.push(ev(at, TraceKind::VarPublish, TraceId::NONE));
        }
        assert_eq!(ring.len(), 4, "capacity respected");
        assert_eq!(ring.evicted(), 6);
        let ats: Vec<u64> = ring.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![6, 7, 8, 9], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut ring = TraceRing::new(0);
        ring.push(ev(1, TraceKind::VarPublish, TraceId::NONE));
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 0);
    }

    #[test]
    fn adopt_replays_old_history_under_one_capacity() {
        let mut old = TraceRing::new(4);
        for at in 0..3u64 {
            old.push(ev(at, TraceKind::VarPublish, TraceId::NONE));
        }
        let mut fresh = TraceRing::new(4);
        for at in 10..13u64 {
            fresh.push(ev(at, TraceKind::VarDeliver, TraceId::NONE));
        }
        fresh.adopt(old);
        let ats: Vec<u64> = fresh.events().map(|e| e.at.0).collect();
        assert_eq!(ats, vec![2, 10, 11, 12], "tail of old history + all new, capped");
        assert_eq!(ats.len(), fresh.capacity());
    }

    #[test]
    fn histogram_never_loses_a_sample() {
        // Property: for a deterministic sweep of magnitudes, every
        // sample lands in exactly one bucket and the count invariant
        // holds.
        let mut h = LatencyHistogram::default();
        let mut n = 0u64;
        let mut x = 1u64;
        // Cover 0, every power of two, its neighbours, and a spread of
        // odd values up past the saturation bucket.
        h.record(0);
        n += 1;
        while x < (1u64 << 40) {
            for v in [x.saturating_sub(1), x, x + 1, x.saturating_mul(3) / 2] {
                h.record(v);
                n += 1;
            }
            x <<= 1;
        }
        assert_eq!(h.count(), n, "count invariant: no sample lost");
        // Monotone percentiles.
        let p50 = h.p50_us().unwrap();
        let p99 = h.p99_us().unwrap();
        let p999 = h.p999_us().unwrap();
        assert!(p50 <= p99 && p99 <= p999, "p50={p50} p99={p99} p999={p999}");
    }

    #[test]
    fn histogram_properties_hold_over_random_streams() {
        // Property sweep over deterministic pseudo-random latency
        // streams: the count invariant, quantile monotonicity (both in
        // the quantile and against the recorded range) and merge
        // additivity must hold for every stream shape.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            // xorshift* — deterministic, no external crates.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for stream in 0..32 {
            let mut h = LatencyHistogram::default();
            let mut max_seen = 0u64;
            let n = 1 + (stream * 37) % 500;
            for _ in 0..n {
                // Spread magnitudes across the full bucket range.
                let shift = (next() % 40) as u32;
                let us = next() >> shift;
                max_seen = max_seen.max(us);
                h.record(us);
            }
            assert_eq!(h.count(), n, "stream {stream}: count invariant");
            // Quantile bounds are monotone in the quantile …
            let qs: Vec<u64> = [(1, 2), (9, 10), (99, 100), (999, 1000)]
                .iter()
                .map(|&(num, den)| h.quantile_bound_us(num, den).unwrap())
                .collect();
            assert!(qs.windows(2).all(|w| w[0] <= w[1]), "stream {stream}: {qs:?}");
            // … and never claim a bound below any recorded sample's
            // bucket floor nor above the max sample's bucket bound.
            let max_bound =
                LatencyHistogram::bucket_bound_us(LatencyHistogram::bucket_of(max_seen));
            assert!(qs.iter().all(|&q| q <= max_bound), "stream {stream}: {qs:?} > {max_bound}");
        }
        // Merge additivity: count(a ∪ b) = count(a) + count(b), bucket
        // by bucket.
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for i in 0..100u64 {
            a.record(i * 17 % 5000);
            b.record(i * 31 % 50);
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(merged.buckets()[i], a.buckets()[i] + b.buckets()[i], "bucket {i}");
        }
    }

    #[test]
    fn bucket_edges_are_exact() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_bound_us(0), 0);
        assert_eq!(LatencyHistogram::bucket_bound_us(10), 1023);
    }

    #[test]
    fn percentiles_of_known_distribution_land_in_right_buckets() {
        // 90 samples at ~100µs (bucket 7, bound 127), 9 at ~1000µs
        // (bucket 10, bound 1023), 1 at ~100_000µs (bucket 17, bound
        // 131071): p50 must report the 100µs bucket, p99 the 1000µs
        // bucket, p999 the outlier's bucket.
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(100_000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50_us(), Some(127));
        assert_eq!(h.p99_us(), Some(1023));
        assert_eq!(h.p999_us(), Some(131_071));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_us(), None);
    }

    #[test]
    fn tracer_disabled_records_nothing_and_mints_none() {
        let mut t = Tracer::new(NodeId(1), TraceConfig::disabled());
        assert!(!t.enabled());
        assert_eq!(t.mint(), TraceId::NONE);
        t.record(Micros(5), TraceKind::VarPublish, TraceId::NONE, None, 1, None);
        t.record_var_latency(10);
        assert!(t.ring().is_empty());
        assert_eq!(t.publish_to_deliver.count(), 0);
    }

    #[test]
    fn tracer_mints_dense_node_scoped_ids() {
        let mut t = Tracer::new(NodeId(3), TraceConfig::default());
        let a = t.mint();
        let b = t.mint();
        assert_eq!(a, TraceId::new(NodeId(3), 1));
        assert_eq!(b, TraceId::new(NodeId(3), 2));
    }

    #[test]
    fn chain_assembly_orders_across_nodes_by_time() {
        let id = TraceId::new(NodeId(1), 1);
        let mut r1 = TraceRing::new(8);
        r1.push(ev(10, TraceKind::VarPublish, id));
        let mut r2 = TraceRing::new(8);
        r2.push(ev(30, TraceKind::VarDeliver, id));
        r2.push(ev(20, TraceKind::FecRecover, id));
        r2.push(ev(25, TraceKind::VarStaleDrop, TraceId::new(NodeId(1), 2)));
        let rings = [(NodeId(2), &r2), (NodeId(1), &r1)];
        let chain = assemble_chain(&rings, id);
        let kinds: Vec<TraceKind> = chain.iter().map(|(_, e)| e.kind).collect();
        assert_eq!(
            kinds,
            vec![TraceKind::VarPublish, TraceKind::FecRecover, TraceKind::VarDeliver],
            "publish → recover → deliver, other ids filtered out"
        );
        assert!(assemble_chain(&rings, TraceId::NONE).is_empty());
    }

    #[test]
    fn render_is_stable() {
        let mut e = ev(1500, TraceKind::VarDeliver, TraceId::new(NodeId(1), 7));
        e.peer = Some(NodeId(1));
        e.seq = 9;
        e.name = Some(Name::new("chaos/telemetry").unwrap());
        assert_eq!(
            render_event(NodeId(2), &e),
            "      1500us n2 i1 var_deliver    trace=1:7 peer=1 seq=9 name=chaos/telemetry"
        );
    }
}
