//! The service container: one per node, the paper's core artifact (§3).
//!
//! The container is a deterministic state machine driven by
//! [`ServiceContainer::tick`]. Within a tick it:
//!
//! 1. pumps the transport and interprets every frame (discovery, samples,
//!    reliable-channel envelopes, file transfer traffic);
//! 2. runs failure detection (heartbeat timeouts ⇒ purge the name cache,
//!    re-resolve subscriptions, fail over pending calls);
//! 3. maintains subscriptions against the directory (name management);
//! 4. fires timers and variable-loss deadlines;
//! 5. polls the reliable links (retransmissions) and pumps file transfers;
//! 6. emits heartbeats/announcements;
//! 7. executes queued handler invocations through the pluggable scheduler,
//!    bounded by a per-tick budget, applying the effects services queue.
//!
//! Services never see any of this machinery — only their
//! [`ServiceContext`](crate::ServiceContext).

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use bytes::Bytes;

use marea_encoding::{CodecId, CodecRegistry, SelfDescribingCodec};
use marea_presentation::{Name, Value};
use marea_protocol::arq::ArqConfig;
use marea_protocol::fec::{FecConfig, FecRate, PARITY_INDEX_BIT};
use marea_protocol::fragment::{fragment_payload, Reassembler};
use marea_protocol::messages::{AnnounceEntry, CallStatus, Provision, ServiceState};
use marea_protocol::mftp::{AnnounceOutcome, FileReceiver, FileSender, RevisionPolicy};
use marea_protocol::{
    Frame, GroupId, Message, Micros, NodeId, ProtoDuration, RequestId, ServiceId, TransferId,
};
use marea_transport::{Transport, TransportDestination};

use crate::directory::Directory;
use crate::engines::events::{EventEngine, EventSubscriber, PublishedEvent, SubscribedEvent};
use crate::engines::files::{FileEngine, OutgoingFile};
use crate::engines::rpc::{
    decode_args, decode_result, encode_args, encode_result, LocalFunction, PendingCall, RpcEngine,
};
use crate::engines::vars::{PublishedVar, SubscribedVar, VarEngine};
use crate::error::{CallError, ContainerError};
use crate::link::ReliableLink;
use crate::qos::{CallOptions, DropPolicy};
use crate::scheduler::{Priority, Scheduler, SchedulerKind, Task, TaskPayload};
use crate::service::{
    CallHandle, CallPolicy, Effect, FileEvent, ProviderNotice, Service, ServiceContext,
    ServiceDescriptor, TimerId,
};
use crate::stats::{ContainerStats, EventSubscriptionStats, QosStats, VarSubscriptionStats};
use crate::sweep::{sorted_keys, sorted_keys_into};
use crate::trace::{TraceConfig, TraceId, TraceKind, TraceRing, Tracer};

mod gossip;
mod pump;
mod subscriptions;

/// Upper bound for one marshalled call argument.
pub(crate) const MAX_ARG_BYTES: usize = 4 * 1024 * 1024;

/// How variable samples reach remote subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarDistribution {
    /// One multicast datagram per sample (the paper's §4.1 mapping:
    /// "allows optimizing the bandwidth use because one packet sent can
    /// arrive to multiple nodes").
    #[default]
    Multicast,
    /// One unicast datagram per remote subscriber — the baseline the C2
    /// experiment compares against.
    UnicastFanout,
}

/// Static configuration of a container.
#[derive(Debug, Clone)]
pub struct ContainerConfig {
    /// Container name (appears in `Hello`).
    pub name: Name,
    /// This node's id.
    pub node: NodeId,
    /// Heartbeat emission period.
    pub heartbeat_period: ProtoDuration,
    /// Full catalogue re-announcement period.
    pub announce_period: ProtoDuration,
    /// Silence after which a peer node is declared dead.
    pub node_timeout: ProtoDuration,
    /// Scheduler policy.
    pub scheduler: SchedulerKind,
    /// Maximum handler invocations per tick (soft real-time budget).
    pub tick_budget: usize,
    /// Reliable-channel tuning.
    pub arq: ArqConfig,
    /// Forward-error-correction layer below the reliable channel
    /// (enabled by default; each link runs the weaker of the two ends'
    /// advertised capabilities).
    pub fec: FecConfig,
    /// Remote invocation reply deadline per attempt.
    pub call_timeout: ProtoDuration,
    /// Providers tried before a call fails.
    pub max_call_attempts: u32,
    /// File transfer chunk size in bytes.
    pub chunk_size: u32,
    /// File chunks pumped per tick per transfer.
    pub file_burst: usize,
    /// Gap between completion queries of an idle transfer.
    pub file_query_interval: ProtoDuration,
    /// Variable sample distribution mode.
    pub var_distribution: VarDistribution,
    /// Payload codec for application data.
    pub codec: CodecId,
    /// Container log ring capacity.
    pub log_capacity: usize,
    /// Flight-recorder switch and ring sizing (DESIGN.md §8).
    pub trace: TraceConfig,
}

impl ContainerConfig {
    /// Sensible defaults for a LAN avionics node.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal.
    pub fn new(name: &str, node: NodeId) -> Self {
        ContainerConfig {
            // marea-lint: allow(R1): construction-time check of a code literal (documented "# Panics"); never runs on the tick path
            name: Name::new(name).expect("container name must be a valid name literal"),
            node,
            heartbeat_period: ProtoDuration::from_millis(500),
            announce_period: ProtoDuration::from_secs(2),
            node_timeout: ProtoDuration::from_secs(2),
            scheduler: SchedulerKind::Priority,
            tick_budget: 256,
            arq: ArqConfig::default(),
            fec: FecConfig::default(),
            call_timeout: ProtoDuration::from_millis(800),
            max_call_attempts: 3,
            chunk_size: 1024,
            file_burst: 32,
            file_query_interval: ProtoDuration::from_millis(100),
            var_distribution: VarDistribution::Multicast,
            codec: CodecId::COMPACT,
            log_capacity: 1024,
            trace: TraceConfig::default(),
        }
    }
}

#[derive(Debug)]
struct ServiceSlot {
    seq: u32,
    service: Option<Box<dyn Service>>,
    descriptor: ServiceDescriptor,
    state: ServiceState,
}

#[derive(Debug)]
struct TimerInfo {
    service_seq: u32,
    period: Option<ProtoDuration>,
    cancelled: bool,
}

/// The per-node service container (paper §3).
///
/// See the crate-level docs for a complete walk-through; the
/// [`SimHarness`](crate::SimHarness) shows the intended driving pattern.
#[derive(Debug)]
pub struct ServiceContainer {
    config: ContainerConfig,
    transport: Box<dyn Transport>,
    codecs: CodecRegistry,
    slots: Vec<ServiceSlot>,
    directory: Directory,
    scheduler: Box<dyn Scheduler>,
    links: HashMap<NodeId, ReliableLink>,
    vars: VarEngine,
    events: EventEngine,
    rpc: RpcEngine,
    files: FileEngine,
    reassembler: Reassembler,
    timers: BinaryHeap<Reverse<(Micros, u64)>>,
    timer_info: HashMap<u64, TimerInfo>,
    next_timer_id: u64,
    next_request_id: u64,
    next_msg_id: u64,
    next_task_seq: u64,
    incarnation: u64,
    running: bool,
    started_at: Micros,
    last_heartbeat: Option<Micros>,
    last_announce: Option<Micros>,
    /// Digest `(hash, entry_count)` of the last full catalogue broadcast.
    /// While the catalogue is unchanged, the periodic announce slot sends
    /// a compact `AnnounceDigest` instead of re-flooding the catalogue.
    last_announce_digest: Option<(u32, u32)>,
    /// When the last forced (out-of-cadence) full re-announce went out.
    last_forced_reannounce: Option<Micros>,
    /// A forced re-announce arrived inside the debounce window and waits
    /// for the next announce-period boundary.
    reannounce_pending: bool,
    /// Directory or subscription state changed since the last maintenance
    /// sweep. Plain heartbeats do not set this — a liveness refresh
    /// changes no name resolution — which keeps the sweep off the
    /// per-tick path at fleet scale.
    subs_dirty: bool,
    /// Last file-interest retry sweep (cadence fallback that keeps
    /// waiting interests re-trying seen announces without a dirty flag).
    last_interest_retry: Option<Micros>,
    /// Peers whose reliable link may still produce poll output. Ordered
    /// so the poll sweep walks peers in node order (determinism).
    active_links: BTreeSet<NodeId>,
    /// Scratch for the poll sweep (allocation reuse across ticks).
    link_scratch: Vec<NodeId>,
    /// Scratch for sorted map walks in the maintenance and file pumps.
    sweep_scratch: Vec<Name>,
    stats: ContainerStats,
    log: VecDeque<(Micros, String)>,
    tracer: Tracer,
}

impl ServiceContainer {
    /// Creates a container over a transport. Call
    /// [`ServiceContainer::start`] once services are registered.
    pub fn new(config: ContainerConfig, transport: Box<dyn Transport>) -> Self {
        let mut codecs = CodecRegistry::new();
        codecs.set_default(config.codec);
        ServiceContainer {
            scheduler: config.scheduler.build(),
            codecs,
            transport,
            slots: Vec::new(),
            directory: Directory::new(),
            links: HashMap::new(),
            vars: VarEngine::default(),
            events: EventEngine::default(),
            rpc: RpcEngine::default(),
            files: FileEngine::default(),
            reassembler: Reassembler::new(ProtoDuration::from_secs(5)),
            timers: BinaryHeap::new(),
            timer_info: HashMap::new(),
            next_timer_id: 0,
            next_request_id: 0,
            next_msg_id: 0,
            next_task_seq: 0,
            incarnation: 1,
            running: false,
            started_at: Micros::ZERO,
            last_heartbeat: None,
            last_announce: None,
            last_announce_digest: None,
            last_forced_reannounce: None,
            reannounce_pending: false,
            subs_dirty: true,
            last_interest_retry: None,
            active_links: BTreeSet::new(),
            link_scratch: Vec::new(),
            sweep_scratch: Vec::new(),
            stats: ContainerStats::default(),
            log: VecDeque::new(),
            tracer: Tracer::new(config.node, config.trace),
            config,
        }
    }

    /// This container's node id.
    pub fn node(&self) -> NodeId {
        self.config.node
    }

    /// This container's name.
    pub fn name(&self) -> &Name {
        &self.config.name
    }

    /// This container's incarnation (restart counter carried in `Hello`
    /// and heartbeats; peers purge cached provisions from older lives).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Sets the incarnation a restarted container announces itself with.
    /// Must exceed the previous life's incarnation or peers will discard
    /// the new announcements as stale.
    ///
    /// # Panics
    ///
    /// Panics if the container is already running — the incarnation is
    /// part of the identity the `Hello` broadcast establishes.
    pub fn set_incarnation(&mut self, incarnation: u64) {
        assert!(!self.running, "incarnation must be set before start");
        self.incarnation = incarnation;
        self.tracer.set_incarnation(incarnation);
    }

    /// Counter snapshot (merges the per-engine mismatch and QoS counters).
    pub fn stats(&self) -> ContainerStats {
        let mut stats = self.stats;
        stats.type_mismatches = crate::stats::TypeMismatchStats {
            vars: self.vars.type_mismatches,
            events: self.events.type_mismatches,
            calls: self.rpc.type_mismatches,
            files: self.files.type_mismatches,
        };
        stats.qos = QosStats {
            deadline_misses: self.vars.total_deadline_misses(),
            stale_drops: self.vars.total_stale_drops(),
            queue_drops: self.events.total_queue_drops(),
            retries: self.rpc.retries,
        };
        stats.publish_to_deliver = self.tracer.publish_to_deliver;
        stats.event_to_deliver = self.tracer.event_to_deliver;
        stats.call_rtt = self.tracer.call_rtt;
        stats.rto_recovery = self.tracer.rto_recovery;
        stats
    }

    /// The flight-recorder ring of this life (oldest first; see
    /// [`TraceConfig`] for sizing and the disable switch).
    pub fn trace_ring(&self) -> &TraceRing {
        self.tracer.ring()
    }

    /// Drains the flight recorder, leaving an empty ring behind — the
    /// harness calls this when it crashes a node so the black box
    /// survives the container teardown.
    pub fn take_trace_ring(&mut self) -> TraceRing {
        self.tracer.take_ring()
    }

    /// Seeds the ring with events recorded by a previous life of this
    /// node (harness restart path), preserving ring-capacity bounds.
    pub fn adopt_trace_ring(&mut self, older: TraceRing) {
        self.tracer.adopt_ring(older);
    }

    /// QoS counters of a subscribed variable (the channel state shared by
    /// this container's local subscribers of that name).
    pub fn var_qos_stats(&self, name: &str) -> Option<VarSubscriptionStats> {
        let name = Name::new(name).ok()?;
        self.vars.subscribed.get(&name).map(|s| VarSubscriptionStats {
            deadline_misses: s.deadline_misses,
            stale_drops: s.stale_drops,
            history_len: s.history.len(),
        })
    }

    /// QoS counters of a subscribed event channel (summed over this
    /// container's local subscribers of that name).
    pub fn event_qos_stats(&self, name: &str) -> Option<EventSubscriptionStats> {
        let name = Name::new(name).ok()?;
        self.events.subscribed.get(&name).map(|s| EventSubscriptionStats {
            queue_drops: s.total_drops(),
            inbox_peak: s.inbox_peak(),
        })
    }

    /// Transparent re-dispatches performed for calls to `name`.
    pub fn fn_retries(&self, name: &str) -> u64 {
        Name::new(name).ok().and_then(|n| self.rpc.retry_counts.get(&n)).copied().unwrap_or(0)
    }

    /// Freshness snapshot of every subscribed variable channel, in name
    /// order — the observability surface the chaos invariants check
    /// (a bound channel must either deliver within its validity window or
    /// raise the timeout warning; silent staleness is a middleware bug).
    pub fn var_channels(&self) -> Vec<(Name, crate::stats::VarChannelView)> {
        sorted_keys(&self.vars.subscribed)
            .into_iter()
            .map(|name| {
                let s = &self.vars.subscribed[&name];
                let view = crate::stats::VarChannelView {
                    bound: s.provider.is_some(),
                    period_us: s.period_us,
                    validity_us: s.validity_us,
                    deadline_us: s.deadline_us(),
                    last_rx: s.last_rx,
                    last_stamp: s.history.back().map(|(stamp, _)| *stamp),
                    timed_out: s.timed_out,
                };
                (name, view)
            })
            .collect()
    }

    /// The name directory (read access for tests/tools).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Queued handler invocations.
    pub fn scheduler_len(&self) -> usize {
        self.scheduler.len()
    }

    /// `true` between `start` and `stop`.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Aggregated ARQ statistics over all reliable links.
    pub fn arq_stats(&self) -> marea_protocol::arq::ArqStats {
        let mut total = marea_protocol::arq::ArqStats::default();
        // marea-lint: allow(D1): commutative counter sums; no sends, order cannot reach the wire
        for link in self.links.values() {
            let s = link.stats();
            total.sent += s.sent;
            total.retransmitted += s.retransmitted;
            total.acked += s.acked;
            total.failed += s.failed;
            total.payload_bytes += s.payload_bytes;
        }
        total
    }

    /// Aggregated FEC statistics over all *live* reliable links.
    ///
    /// Unlike [`ServiceContainer::stats`] (whose FEC counters accumulate per event
    /// and survive link teardown), this sums the current links' endpoint
    /// counters — useful for inspecting a single link's behaviour in tests.
    pub fn fec_link_stats(
        &self,
    ) -> (marea_protocol::fec::FecTxStats, marea_protocol::fec::FecRxStats) {
        let mut tx = marea_protocol::fec::FecTxStats::default();
        let mut rx = marea_protocol::fec::FecRxStats::default();
        // marea-lint: allow(D1): commutative counter sums; no sends, order cannot reach the wire
        for link in self.links.values() {
            let t = link.fec_tx_stats();
            tx.data_shards += t.data_shards;
            tx.parity_shards += t.parity_shards;
            tx.bypassed += t.bypassed;
            tx.groups += t.groups;
            let r = link.fec_rx_stats();
            rx.data_shards += r.data_shards;
            rx.parity_shards += r.parity_shards;
            rx.recovered += r.recovered;
            rx.unrecoverable_groups += r.unrecoverable_groups;
            rx.discarded += r.discarded;
        }
        (tx, rx)
    }

    /// Recent container log lines (oldest first).
    pub fn log_lines(&self) -> impl Iterator<Item = &(Micros, String)> {
        self.log.iter()
    }

    /// Lifecycle state of a hosted service.
    pub fn service_state(&self, name: &str) -> Option<ServiceState> {
        self.slots.iter().find(|s| s.descriptor.name() == name).map(|s| s.state)
    }

    /// Registers a service; returns its instance id.
    ///
    /// # Errors
    ///
    /// [`ContainerError::DuplicateService`] /
    /// [`ContainerError::DuplicateProvision`] when names collide locally.
    pub fn add_service(&mut self, service: Box<dyn Service>) -> Result<ServiceId, ContainerError> {
        let descriptor = service.descriptor();
        if self.slots.iter().any(|s| s.descriptor.name() == descriptor.name().as_str()) {
            return Err(ContainerError::DuplicateService(descriptor.name().clone()));
        }
        for p in descriptor.provides() {
            let name = p.name();
            let taken =
                self.slots.iter().any(|s| s.descriptor.find_provision(name.as_str()).is_some());
            if taken {
                return Err(ContainerError::DuplicateProvision(name.clone()));
            }
        }
        let seq = self.slots.len() as u32 + 1;

        for p in descriptor.provides() {
            match p {
                Provision::Variable { name, ty, validity_us, .. } => {
                    self.vars.published.insert(
                        name.clone(),
                        PublishedVar {
                            owner_seq: seq,
                            ty: ty.clone(),
                            validity_us: *validity_us,
                            seq: 0,
                            last: None,
                            remote_subscribers: Default::default(),
                        },
                    );
                }
                Provision::Event { name, ty } => {
                    self.events.published.insert(
                        name.clone(),
                        PublishedEvent {
                            owner_seq: seq,
                            ty: ty.clone(),
                            seq: 0,
                            remote_subscribers: Default::default(),
                        },
                    );
                }
                Provision::Function { name, sig } => {
                    self.rpc
                        .functions
                        .insert(name.clone(), LocalFunction { owner_seq: seq, sig: sig.clone() });
                }
                Provision::FileResource { .. } => {}
            }
        }
        for sub in descriptor.var_subscriptions() {
            let entry = self
                .vars
                .subscribed
                .entry(sub.name.clone())
                .or_insert_with(|| SubscribedVar::new(&sub.qos));
            entry.services.push(seq);
            entry.merge_qos(&sub.qos);
        }
        for sub in descriptor.event_subscriptions() {
            self.events
                .subscribed
                .entry(sub.name.clone())
                .or_insert_with(SubscribedEvent::new)
                .subscribers
                .push(EventSubscriber::new(seq, sub.qos));
        }
        for name in descriptor.file_interests() {
            self.files.interests.entry(name.clone()).or_default().services.push(seq);
        }
        for name in descriptor.required_functions() {
            self.rpc.required.entry(name.clone()).or_default().services.push(seq);
        }

        self.slots.push(ServiceSlot {
            seq,
            service: Some(service),
            descriptor,
            state: ServiceState::Starting,
        });
        let id = ServiceId::new(self.config.node, seq);
        if self.running {
            self.push_task(Priority::LIFECYCLE, seq, TaskPayload::Start);
            // Force the next announce slot: the catalogue changed, so the
            // digest check in emit_periodics sends the full catalogue.
            self.last_announce = None;
            self.subs_dirty = true;
        }
        Ok(id)
    }

    /// Starts the container: joins the control group, announces itself and
    /// schedules every service's `on_start`.
    pub fn start(&mut self, now: Micros) {
        if self.running {
            return;
        }
        self.running = true;
        self.started_at = now;
        self.subs_dirty = true;
        self.tracer.record(now, TraceKind::NodeStart, TraceId::NONE, None, self.incarnation, None);
        self.transport.join(GroupId::CONTROL.0);
        self.directory.apply_hello(
            self.config.node,
            self.config.name.clone(),
            self.incarnation,
            self.config.fec.advertised_cap().wire_tag(),
            now,
        );
        let entries = self.announce_entries();
        self.directory.apply_announce(self.config.node, &entries, now);
        self.send_message(
            TransportDestination::Group(GroupId::CONTROL.0),
            &Message::Hello {
                container: self.config.name.clone(),
                incarnation: self.incarnation,
                fec_cap: self.config.fec.advertised_cap().wire_tag(),
            },
        );
        self.broadcast_announce(now);
        let seqs: Vec<u32> = self.slots.iter().map(|s| s.seq).collect();
        for seq in seqs {
            self.push_task(Priority::LIFECYCLE, seq, TaskPayload::Start);
        }
    }

    /// Stops the container: runs every `on_stop`, says `Bye`.
    pub fn stop(&mut self, now: Micros) {
        if !self.running {
            return;
        }
        let seqs: Vec<u32> = self
            .slots
            .iter()
            .filter(|s| s.state.is_available() || s.state == ServiceState::Starting)
            .map(|s| s.seq)
            .collect();
        for seq in seqs {
            self.push_task(Priority::LIFECYCLE, seq, TaskPayload::Stop);
        }
        while let Some(task) = self.scheduler.pop() {
            self.execute_task(task, now);
        }
        self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &Message::Bye);
        self.running = false;
    }

    /// One cooperative step at time `now`. See the module docs for phases.
    pub fn tick(&mut self, now: Micros) {
        if !self.running {
            return;
        }
        self.stats.ticks += 1;
        self.directory.apply_heartbeat(
            self.config.node,
            self.incarnation,
            self.load_permille(),
            self.config.fec.advertised_cap().wire_tag(),
            now,
        );

        self.pump_transport(now);
        self.detect_failures(now);
        // Maintenance only runs when something that feeds name resolution
        // actually changed (`subs_dirty`), plus a cadence fallback that
        // keeps waiting file interests re-trying their seen announces.
        let interests_due = !self.files.interests.is_empty()
            && self
                .last_interest_retry
                .map(|t| now.saturating_since(t) >= self.config.file_query_interval)
                .unwrap_or(true);
        if self.subs_dirty || interests_due {
            self.subs_dirty = false;
            if interests_due {
                self.last_interest_retry = Some(now);
            }
            self.maintain_subscriptions(now);
        }
        self.fire_timers(now);
        self.sweep_variable_deadlines(now);
        self.sweep_call_timeouts(now);
        self.poll_links(now);
        self.pump_files(now);
        self.emit_periodics(now);
        self.run_tasks(now);
        let len = self.scheduler.len();
        if len > self.stats.queue_peak {
            self.stats.queue_peak = len;
        }
        self.reassembler.expire(now);
    }

    fn load_permille(&self) -> u16 {
        let budget = self.config.tick_budget.max(1);
        ((self.scheduler.len().min(budget) * 1000) / budget) as u16
    }

    // ---- timers -------------------------------------------------------------

    fn fire_timers(&mut self, now: Micros) {
        while let Some(&Reverse((due, tid))) = self.timers.peek() {
            if due > now {
                break;
            }
            self.timers.pop();
            let Some(info) = self.timer_info.get(&tid) else { continue };
            if info.cancelled {
                self.timer_info.remove(&tid);
                continue;
            }
            let seq = info.service_seq;
            let period = info.period;
            self.push_task(Priority::TIMER, seq, TaskPayload::Timer { id: TimerId(tid) });
            match period {
                Some(p) => self.timers.push(Reverse((due + p, tid))),
                None => {
                    self.timer_info.remove(&tid);
                }
            }
        }
    }

    // ---- task execution -------------------------------------------------------

    fn push_task(&mut self, priority: Priority, service_seq: u32, payload: TaskPayload) {
        self.next_task_seq += 1;
        self.scheduler.push(Task {
            priority,
            enqueued_seq: self.next_task_seq,
            service_seq,
            payload,
        });
    }

    fn run_tasks(&mut self, now: Micros) {
        for _ in 0..self.config.tick_budget {
            let Some(task) = self.scheduler.pop() else { break };
            self.execute_task(task, now);
        }
    }

    fn execute_task(&mut self, task: Task, now: Micros) {
        self.stats.tasks_executed += 1;
        // A DeliverEvent leaving the queue frees its subscription's inbox
        // slot — even when the target service turns out to be unavailable
        // below, so the bound accounting can never leak.
        if let TaskPayload::DeliverEvent { name, .. } = &task.payload {
            if let Some(sub) = self.events.subscribed.get_mut(name) {
                sub.dec_inbox(task.service_seq);
            }
        }
        let idx = (task.service_seq as usize).wrapping_sub(1);
        let payload = task.payload;
        let lifecycle = matches!(payload, TaskPayload::Start | TaskPayload::Stop);

        // Phase 1: extract the service from its slot.
        let (mut service, service_name, seq) = {
            let Some(slot) = self.slots.get_mut(idx) else { return };
            if !lifecycle && !slot.state.is_available() && slot.state != ServiceState::Starting {
                return;
            }
            let Some(service) = slot.service.take() else { return };
            (service, slot.descriptor.name().clone(), slot.seq)
        };

        // Phase 2: run the handler with a fresh context.
        let mut effects: Vec<Effect> = Vec::new();
        let mut next_request_id = self.next_request_id;
        let mut next_timer_id = self.next_timer_id;
        let node = self.config.node;
        let mut call_outcome: Option<(RequestId, NodeId, Name, Result<Value, String>)> = None;

        let panicked = {
            let mut ctx = ServiceContext {
                now,
                node,
                service_name: &service_name,
                service_seq: seq,
                effects: &mut effects,
                next_request_id: &mut next_request_id,
                next_timer_id: &mut next_timer_id,
                var_state: Some(&self.vars.subscribed),
            };
            let unwind = catch_unwind(AssertUnwindSafe(|| match &payload {
                TaskPayload::Start => {
                    service.on_start(&mut ctx);
                    None
                }
                TaskPayload::Stop => {
                    service.on_stop(&mut ctx);
                    None
                }
                TaskPayload::DeliverVariable { name, value, stamp, .. } => {
                    service.on_variable(&mut ctx, name, value, *stamp);
                    None
                }
                TaskPayload::VariableTimeout { name } => {
                    service.on_variable_timeout(&mut ctx, name);
                    None
                }
                TaskPayload::DeliverEvent { name, value, stamp, .. } => {
                    service.on_event(&mut ctx, name, value.as_ref(), *stamp);
                    None
                }
                TaskPayload::ExecuteCall { request, caller, function, args, .. } => {
                    let result = service.on_call(&mut ctx, function, args);
                    Some((*request, *caller, function.clone(), result))
                }
                TaskPayload::DeliverReply { request, result } => {
                    service.on_reply(&mut ctx, CallHandle(*request), result.clone());
                    None
                }
                TaskPayload::File(ev) => {
                    service.on_file_event(&mut ctx, ev);
                    None
                }
                TaskPayload::FileBypass { resource, revision, data } => {
                    service.on_file_event(
                        &mut ctx,
                        &FileEvent::Received {
                            resource: resource.clone(),
                            revision: *revision,
                            data: data.clone(),
                        },
                    );
                    None
                }
                TaskPayload::Provider(notice) => {
                    service.on_provider_change(&mut ctx, notice);
                    None
                }
                TaskPayload::Timer { id } => {
                    service.on_timer(&mut ctx, *id);
                    None
                }
            }));
            match unwind {
                Ok(outcome) => {
                    call_outcome = outcome;
                    false
                }
                Err(_) => true,
            }
        };

        self.next_request_id = next_request_id;
        self.next_timer_id = next_timer_id;

        // Phase 3: restore the service.
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.service = Some(service);
        }

        // Phase 4: accounting and follow-up.
        if panicked {
            // Watchdog: a panicking service is marked failed and the fleet
            // is told (§3: the container watches "for their correct
            // operation and notif[ies] the rest of containers").
            self.stats.services_failed += 1;
            self.log_line(now, format!("service `{service_name}` panicked; marked failed"));
            self.set_service_state(seq, ServiceState::Failed, now);
            return;
        }
        match &payload {
            TaskPayload::Start => {
                let starting =
                    self.slots.get(idx).map(|s| s.state == ServiceState::Starting).unwrap_or(false);
                if starting {
                    self.set_service_state(seq, ServiceState::Running, now);
                }
            }
            TaskPayload::Stop => self.set_service_state(seq, ServiceState::Stopped, now),
            TaskPayload::DeliverVariable { name, stamp, seq: sample_seq, trace, .. } => {
                self.stats.var_samples_delivered += 1;
                self.tracer.record_var_latency(now.saturating_since(*stamp).as_micros());
                self.tracer.record(
                    now,
                    TraceKind::VarDeliver,
                    *trace,
                    None,
                    *sample_seq,
                    Some(name),
                );
            }
            TaskPayload::DeliverEvent { name, stamp, seq: event_seq, trace, .. } => {
                self.stats.events_delivered += 1;
                let latency = now.saturating_since(*stamp).as_micros();
                self.stats.event_latency_sum_us += latency;
                if latency > self.stats.event_latency_max_us {
                    self.stats.event_latency_max_us = latency;
                }
                self.tracer.record_event_latency(latency);
                self.tracer.record(
                    now,
                    TraceKind::EventDeliver,
                    *trace,
                    None,
                    *event_seq,
                    Some(name),
                );
            }
            TaskPayload::ExecuteCall { .. } => self.stats.calls_served += 1,
            TaskPayload::FileBypass { .. } => self.stats.file_bypass_deliveries += 1,
            _ => {}
        }
        let call_trace = match &payload {
            TaskPayload::ExecuteCall { trace, .. } => *trace,
            _ => TraceId::NONE,
        };
        if let Some((request, caller, function, result)) = call_outcome {
            self.finish_call(request, caller, &function, result, call_trace, now);
        }
        self.apply_effects(seq, effects, now);
    }

    fn finish_call(
        &mut self,
        request: RequestId,
        caller: NodeId,
        function: &Name,
        result: Result<Value, String>,
        trace: TraceId,
        now: Micros,
    ) {
        if caller == self.config.node {
            // Local caller: translate directly into a reply task.
            let Some(call) = self.rpc.pending.remove(&request) else { return };
            let result = result.map_err(CallError::App);
            if result.is_err() {
                self.stats.call_errors += 1;
            }
            self.tracer.record_call_rtt(now.saturating_since(call.started_at).as_micros());
            self.tracer.record(
                now,
                TraceKind::CallReply,
                call.trace,
                None,
                request.0,
                Some(function),
            );
            self.push_task(
                Priority::CALL,
                call.caller_seq,
                TaskPayload::DeliverReply { request, result },
            );
        } else {
            let codec = self.codecs.default_codec().clone();
            let returns = self.rpc.functions.get(function).and_then(|f| f.sig.returns.clone());
            let msg = match result {
                Ok(value) => match encode_result(&value, &returns, codec.as_ref()) {
                    Ok(payload) => Message::CallReply {
                        request,
                        status: CallStatus::Ok,
                        trace: trace.wire(),
                        codec: codec.id().0,
                        payload,
                    },
                    Err(e) => {
                        // The provider returned a value that violates its
                        // own declared return schema.
                        self.rpc.type_mismatches += 1;
                        Message::CallReply {
                            request,
                            status: CallStatus::AppError,
                            trace: trace.wire(),
                            codec: codec.id().0,
                            payload: Bytes::from(e.to_string().into_bytes()),
                        }
                    }
                },
                Err(e) => Message::CallReply {
                    request,
                    status: CallStatus::AppError,
                    trace: trace.wire(),
                    codec: codec.id().0,
                    payload: Bytes::from(e.into_bytes()),
                },
            };
            self.send_reliable(caller, &msg, now);
        }
    }

    fn set_service_state(&mut self, seq: u32, state: ServiceState, now: Micros) {
        let name = {
            let Some(slot) = self.slots.iter_mut().find(|s| s.seq == seq) else { return };
            if slot.state == state {
                return;
            }
            slot.state = state;
            slot.descriptor.name().clone()
        };
        self.directory.apply_status(self.config.node, seq, state);
        self.subs_dirty = true;
        let msg = Message::ServiceStatus { service_seq: seq, name, state };
        self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &msg);
        let _ = now;
    }

    // ---- effects ---------------------------------------------------------------

    fn apply_effects(&mut self, seq: u32, effects: Vec<Effect>, now: Micros) {
        for effect in effects {
            match effect {
                Effect::Publish { name, value } => self.effect_publish(seq, name, value, now),
                Effect::Emit { name, value } => self.effect_emit(seq, name, value, now),
                Effect::Call { handle, function, args, options } => {
                    self.effect_call(seq, handle, function, args, options, now)
                }
                Effect::PublishFile { resource, data } => {
                    self.effect_publish_file(seq, resource, data, now)
                }
                Effect::SubscribeFile { resource } => {
                    let interest = self.files.interests.entry(resource.clone()).or_default();
                    if !interest.services.contains(&seq) {
                        interest.services.push(seq);
                    }
                    self.subs_dirty = true;
                    self.try_local_file_bypass(&resource);
                }
                Effect::SetTimer { id, after, period } => {
                    self.timer_info
                        .insert(id.0, TimerInfo { service_seq: seq, period, cancelled: false });
                    self.timers.push(Reverse((now + after, id.0)));
                }
                Effect::CancelTimer { id } => {
                    if let Some(info) = self.timer_info.get_mut(&id.0) {
                        info.cancelled = true;
                    }
                }
                Effect::Log { line } => self.log_line(now, line),
                Effect::SetDegraded { degraded } => {
                    let state =
                        if degraded { ServiceState::Degraded } else { ServiceState::Running };
                    self.set_service_state(seq, state, now);
                }
                Effect::StopSelf => {
                    self.push_task(Priority::LIFECYCLE, seq, TaskPayload::Stop);
                }
            }
        }
    }

    fn effect_publish(&mut self, seq: u32, name: Name, value: Value, now: Micros) {
        let codec = self.codecs.default_codec().clone();
        let prepared = {
            let Some(pv) = self.vars.published.get_mut(&name) else {
                self.log_line(now, format!("publish to undeclared variable `{name}` dropped"));
                return;
            };
            if pv.owner_seq != seq {
                self.log_line(now, format!("publish to foreign variable `{name}` dropped"));
                return;
            }
            if let Err(e) = value.conforms_to(&pv.ty) {
                self.vars.type_mismatches += 1;
                self.log_line(now, format!("publish to `{name}` violates schema: {e}"));
                return;
            }
            let Ok(payload) = codec.encode_to_vec(&value, &pv.ty) else { return };
            let payload = Bytes::from(payload);
            pv.seq += 1;
            pv.last = Some((payload.clone(), now));
            (
                payload,
                pv.seq,
                pv.validity_us,
                pv.remote_subscribers.iter().copied().collect::<Vec<NodeId>>(),
            )
        };
        let (payload, sample_seq, validity_us, remote_subscribers) = prepared;
        self.stats.vars_published += 1;
        let trace = self.tracer.mint();
        self.tracer.record(now, TraceKind::VarPublish, trace, None, sample_seq, Some(&name));

        // Local delivery (Fig. 2 in-container path).
        let local = {
            match self.vars.subscribed.get_mut(&name) {
                Some(sub) => {
                    if sub.accept(sample_seq, now) {
                        sub.record(now, value.clone());
                        Some(sub.services.clone())
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(services) = local {
            self.vars.arm_deadline(&name);
            for svc in services {
                self.push_task(
                    Priority::VARIABLE,
                    svc,
                    TaskPayload::DeliverVariable {
                        name: name.clone(),
                        value: value.clone(),
                        stamp: now,
                        seq: sample_seq,
                        trace,
                    },
                );
            }
        }

        let msg = Message::VarSample {
            name: name.clone(),
            seq: sample_seq,
            stamp_us: now.as_micros(),
            validity_us,
            trace: trace.wire(),
            codec: codec.id().0,
            payload,
        };
        match self.config.var_distribution {
            VarDistribution::Multicast => {
                self.send_message(TransportDestination::Group(var_group(&name).0), &msg);
            }
            VarDistribution::UnicastFanout => {
                for node in remote_subscribers {
                    self.send_message(TransportDestination::Node(node.0), &msg);
                }
            }
        }
    }

    fn effect_emit(&mut self, seq: u32, name: Name, value: Option<Value>, now: Micros) {
        let codec = self.codecs.default_codec().clone();
        let info = {
            let Some(pe) = self.events.published.get(&name) else {
                self.log_line(now, format!("emit on undeclared event `{name}` dropped"));
                return;
            };
            if pe.owner_seq != seq {
                self.log_line(now, format!("emit on foreign event `{name}` dropped"));
                return;
            }
            pe.ty.clone()
        };
        let payload = match (&info, &value) {
            (Some(ty), Some(v)) => match codec.encode_to_vec(v, ty) {
                Ok(b) => Bytes::from(b),
                Err(e) => {
                    self.events.type_mismatches += 1;
                    self.log_line(now, format!("event `{name}` payload violates schema: {e}"));
                    return;
                }
            },
            (None, Some(_)) => {
                self.events.type_mismatches += 1;
                self.log_line(now, format!("event `{name}` declared bare; payload dropped"));
                Bytes::new()
            }
            _ => Bytes::new(),
        };
        let Some(pe) = self.events.published.get_mut(&name) else { return };
        pe.seq += 1;
        let (event_seq, remote) =
            (pe.seq, pe.remote_subscribers.iter().copied().collect::<Vec<NodeId>>());
        self.stats.events_published += 1;
        let trace = self.tracer.mint();
        self.tracer.record(now, TraceKind::EventEmit, trace, None, event_seq, Some(&name));

        // Local delivery, under each subscriber's declared contract.
        self.push_event_deliveries(&name, value.clone(), event_seq, now, trace, now);
        // Remote delivery over the reliable links.
        let msg = Message::EventData {
            name,
            seq: event_seq,
            stamp_us: now.as_micros(),
            trace: trace.wire(),
            codec: codec.id().0,
            payload,
        };
        for node in remote {
            self.send_reliable(node, &msg, now);
        }
    }

    fn effect_call(
        &mut self,
        seq: u32,
        handle: CallHandle,
        function: Name,
        args: Vec<Value>,
        options: CallOptions,
        now: Micros,
    ) {
        self.stats.calls_made += 1;
        // Resolve the caller's contract against the container defaults:
        // the per-attempt deadline and the retry budget travel with the
        // pending call from here on.
        let attempt_timeout = options.deadline.unwrap_or(self.config.call_timeout);
        let max_attempts = options.retry_budget.unwrap_or(self.config.max_call_attempts).max(1);
        let policy = options.policy;
        let resolution = self
            .directory
            .resolve_function(function.as_str(), policy, None)
            .map(|p| (p.service, p.provision.clone()));
        let Some((target, Provision::Function { sig, .. })) = resolution else {
            self.stats.call_errors += 1;
            self.push_task(
                Priority::CALL,
                seq,
                TaskPayload::DeliverReply { request: handle.0, result: Err(CallError::NoProvider) },
            );
            return;
        };
        let codec = self.codecs.default_codec().clone();
        let payload = match encode_args(&args, &sig, codec.as_ref()) {
            Ok(p) => p,
            Err(e) => {
                // The caller's arguments disagree with the provider's
                // declared signature — impossible through a typed FnPort,
                // counted when the dynamic compat `call` is used.
                self.rpc.type_mismatches += 1;
                self.stats.call_errors += 1;
                self.push_task(
                    Priority::CALL,
                    seq,
                    TaskPayload::DeliverReply { request: handle.0, result: Err(e) },
                );
                return;
            }
        };
        let trace = self.tracer.mint();
        self.tracer.record(
            now,
            TraceKind::CallStart,
            trace,
            Some(target.node),
            (handle.0).0,
            Some(&function),
        );
        let call = PendingCall {
            caller_seq: seq,
            function,
            args,
            target,
            returns: sig.returns.clone(),
            deadline: now + attempt_timeout,
            attempt_timeout,
            attempts: 1,
            max_attempts,
            policy,
            started_at: now,
            trace,
        };
        self.dispatch_call(handle.0, &call, payload, now);
        self.rpc.track(handle.0, call);
    }

    fn effect_publish_file(&mut self, seq: u32, resource: Name, data: Bytes, now: Micros) {
        let declared = self
            .slots
            .iter()
            .find(|s| s.seq == seq)
            .map(|s| {
                s.descriptor
                    .provides()
                    .iter()
                    .any(|p| matches!(p, Provision::FileResource { name } if name == &resource))
            })
            .unwrap_or(false);
        if !declared {
            self.files.type_mismatches += 1;
            self.log_line(now, format!("publish of undeclared file resource `{resource}` dropped"));
            return;
        }
        self.stats.files_published += 1;
        let announce = {
            match self.files.outgoing.get_mut(&resource) {
                Some(existing) => {
                    let Ok(announce) = existing.sender.bump_revision(data.clone()) else {
                        return;
                    };
                    existing.complete_notified = false;
                    existing.last_query_at = None;
                    announce
                }
                None => {
                    let transfer = self.files.alloc_transfer();
                    let Ok(sender) = FileSender::new(
                        transfer,
                        resource.clone(),
                        1,
                        data.clone(),
                        self.config.chunk_size,
                        file_group(&resource),
                    ) else {
                        return;
                    };
                    let announce = sender.announce();
                    self.files.transfer_index.insert(transfer, resource.clone());
                    self.files.outgoing.insert(
                        resource.clone(),
                        OutgoingFile {
                            sender,
                            owner_seq: seq,
                            last_query_at: None,
                            complete_notified: false,
                        },
                    );
                    announce
                }
            }
        };
        self.send_message(TransportDestination::Group(GroupId::CONTROL.0), &announce);
        self.try_local_file_bypass(&resource);
    }

    /// Same-node bypass (§4.4): interested local services get the data
    /// directly, no transfer ("the transfer is bypassed by the container as
    /// direct access to the resource").
    fn try_local_file_bypass(&mut self, resource: &Name) {
        let prepared = {
            let Some(out) = self.files.outgoing.get(resource) else { return };
            let revision = out.sender.revision();
            let data = out.sender.data();
            let Some(interest) = self.files.interests.get_mut(resource) else { return };
            if interest.completed_revision == Some(revision) || interest.services.is_empty() {
                return;
            }
            interest.completed_revision = Some(revision);
            (revision, data, interest.services.clone())
        };
        let (revision, data, services) = prepared;
        for svc in services {
            self.push_task(
                Priority::FILE,
                svc,
                TaskPayload::FileBypass {
                    resource: resource.clone(),
                    revision,
                    data: data.clone(),
                },
            );
        }
    }

    // ---- output helpers -----------------------------------------------------

    fn send_reliable(&mut self, peer: NodeId, msg: &Message, now: Micros) {
        let tagged = msg.encode_tagged();
        let fec = self.fec_cap_for(peer);
        let fresh_link = !self.links.contains_key(&peer);
        let out = {
            let link = self.links.entry(peer).or_insert_with(|| {
                let mut l = ReliableLink::new(peer, self.config.arq);
                l.negotiate_fec(fec);
                l
            });
            link.send(tagged, now)
        };
        if fresh_link {
            self.tracer.record(now, TraceKind::LinkUp, TraceId::NONE, Some(peer), 0, None);
        }
        self.active_links.insert(peer);
        self.send_link_messages(peer, out);
    }

    /// The code rate a link to `peer` should run: the weaker of our
    /// configured capability and what the peer advertised in its `Hello`.
    fn fec_cap_for(&self, peer: NodeId) -> FecRate {
        if !self.config.fec.enabled {
            return FecRate::Off;
        }
        let theirs = self
            .directory
            .node(peer)
            .map(|n| FecRate::from_wire_tag(n.fec_cap))
            .unwrap_or(FecRate::Off);
        self.config.fec.advertised_cap().negotiate(theirs)
    }

    /// Sends link wire messages to `peer`, counting outgoing FEC shards.
    ///
    /// Counted per event rather than recomputed from links because links
    /// are dropped when their peer dies and the counters must survive that.
    fn send_link_messages(&mut self, peer: NodeId, msgs: Vec<Message>) {
        for m in msgs {
            if let Message::FecShard { index, .. } = m {
                if index & PARITY_INDEX_BIT != 0 {
                    self.stats.fec.parity_shards_out += 1;
                } else {
                    self.stats.fec.data_shards_out += 1;
                }
            }
            self.send_message(TransportDestination::Node(peer.0), &m);
        }
    }

    fn send_message(&mut self, dest: TransportDestination, msg: &Message) {
        let payload = msg.encode_payload();
        let mtu = self.transport.mtu();
        if payload.len() + marea_protocol::FRAME_HEADER_LEN <= mtu {
            let frame = Frame::new(self.config.node, msg.kind(), payload);
            let wire = frame.encode();
            self.stats.frames_out += 1;
            self.stats.bytes_out += wire.len() as u64;
            let _ = self.transport.send(dest, wire);
        } else {
            // Fragment the tagged encoding.
            self.next_msg_id += 1;
            let tagged = msg.encode_tagged();
            let budget = mtu.saturating_sub(96).max(128);
            let Ok(frags) = fragment_payload(self.next_msg_id, &tagged, budget) else {
                return;
            };
            for frag in frags {
                let frame = Frame::new(self.config.node, frag.kind(), frag.encode_payload());
                let wire = frame.encode();
                self.stats.frames_out += 1;
                self.stats.bytes_out += wire.len() as u64;
                let _ = self.transport.send(dest, wire);
            }
        }
    }

    fn log_line(&mut self, now: Micros, line: String) {
        if self.log.len() >= self.config.log_capacity {
            self.log.pop_front();
        }
        self.log.push_back((now, line));
    }
}

/// Stable group id for a variable's multicast group.
pub(crate) fn var_group(name: &Name) -> GroupId {
    GroupId(1 + (fnv1a(name.as_str().as_bytes()) & 0x3FFF_FFFE))
}

/// Stable group id for a file resource's multicast group.
pub(crate) fn file_group(name: &Name) -> GroupId {
    GroupId(0x4000_0000 | (fnv1a(name.as_str().as_bytes()) & 0x3FFF_FFFF))
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}
