//! Scripted fault schedules: *what* goes wrong and *when*.
//!
//! A [`FaultSchedule`] is a time-ordered script of [`FaultEvent`]s relative
//! to scenario start. Schedules are plain data — building one performs no
//! side effects; the [`ScenarioRunner`](crate::scenario::ScenarioRunner)
//! interprets it against a [`SimHarness`](crate::SimHarness) tick by tick,
//! which is what keeps chaos runs seed-reproducible.

use marea_netsim::LinkConfig;
use marea_protocol::{NodeId, ProtoDuration};

/// One scripted fault (or repair) action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Abrupt node death: no `Bye`, the network endpoint vanishes.
    Crash(NodeId),
    /// Rebuild a crashed (or running) node from its harness blueprint:
    /// socket rebind, bumped incarnation, factory-recreated services,
    /// catalogue re-announce.
    Restart(NodeId),
    /// Block traffic between two nodes in both directions.
    Partition(NodeId, NodeId),
    /// Unblock traffic between two nodes.
    Heal(NodeId, NodeId),
    /// Ramp the link character linearly from `from` to `to` over `window`
    /// (radio degradation profiles). `pair: None` ramps the network-wide
    /// default link; `Some((a, b))` ramps the symmetric pair override.
    LinkRamp {
        /// Affected pair, or `None` for the default link.
        pair: Option<(NodeId, NodeId)>,
        /// Character at the start of the window.
        from: LinkConfig,
        /// Character at the end of the window.
        to: LinkConfig,
        /// Ramp duration.
        window: ProtoDuration,
    },
    /// Let `node`'s local clock drift `ppm` parts-per-million against
    /// virtual time from this moment on (`0` removes the drift going
    /// forward; the accumulated offset remains).
    ClockSkew {
        /// Affected node.
        node: NodeId,
        /// Drift rate in parts per million.
        ppm: i64,
    },
}

/// A fault event bound to its offset from scenario start.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledFault {
    /// Offset from scenario start.
    pub at: ProtoDuration,
    /// The action.
    pub event: FaultEvent,
}

/// A time-ordered script of fault events.
///
/// # Examples
///
/// ```
/// use marea_core::scenario::FaultSchedule;
/// use marea_protocol::{NodeId, ProtoDuration};
///
/// let s = FaultSchedule::new()
///     .crash(ProtoDuration::from_secs(2), NodeId(3))
///     .restart(ProtoDuration::from_secs(6), NodeId(3));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an arbitrary event at `at` (builder style).
    #[must_use]
    pub fn at(mut self, at: ProtoDuration, event: FaultEvent) -> Self {
        self.events.push(ScheduledFault { at, event });
        // Stable sort keeps insertion order among same-time events, so a
        // schedule is executed exactly as written.
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Schedules a crash.
    #[must_use]
    pub fn crash(self, at: ProtoDuration, node: NodeId) -> Self {
        self.at(at, FaultEvent::Crash(node))
    }

    /// Schedules a restart.
    #[must_use]
    pub fn restart(self, at: ProtoDuration, node: NodeId) -> Self {
        self.at(at, FaultEvent::Restart(node))
    }

    /// Schedules a partition between two nodes.
    #[must_use]
    pub fn partition(self, at: ProtoDuration, a: NodeId, b: NodeId) -> Self {
        self.at(at, FaultEvent::Partition(a, b))
    }

    /// Schedules the heal of a partition.
    #[must_use]
    pub fn heal(self, at: ProtoDuration, a: NodeId, b: NodeId) -> Self {
        self.at(at, FaultEvent::Heal(a, b))
    }

    /// Schedules a default-link ramp.
    #[must_use]
    pub fn link_ramp(
        self,
        at: ProtoDuration,
        from: LinkConfig,
        to: LinkConfig,
        window: ProtoDuration,
    ) -> Self {
        self.at(at, FaultEvent::LinkRamp { pair: None, from, to, window })
    }

    /// Schedules a clock-skew change.
    #[must_use]
    pub fn clock_skew(self, at: ProtoDuration, node: NodeId, ppm: i64) -> Self {
        self.at(at, FaultEvent::ClockSkew { node, ppm })
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in execution order.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Offset of the last scheduled event (zero for an empty schedule).
    pub fn last_event_at(&self) -> ProtoDuration {
        self.events.last().map(|e| e.at).unwrap_or(ProtoDuration::from_micros(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_time_stably() {
        let s = FaultSchedule::new()
            .restart(ProtoDuration::from_secs(5), NodeId(1))
            .crash(ProtoDuration::from_secs(1), NodeId(1))
            .partition(ProtoDuration::from_secs(1), NodeId(2), NodeId(3));
        let order: Vec<_> = s.events().iter().map(|e| e.event.clone()).collect();
        assert_eq!(
            order,
            vec![
                FaultEvent::Crash(NodeId(1)),
                FaultEvent::Partition(NodeId(2), NodeId(3)),
                FaultEvent::Restart(NodeId(1)),
            ],
            "time-sorted, insertion order preserved among equals"
        );
        assert_eq!(s.last_event_at(), ProtoDuration::from_secs(5));
    }
}
