//! # Deterministic chaos-scenario engine
//!
//! The paper sells the middleware on surviving airborne-LAN reality: nodes
//! crash and reboot, radio links degrade, services migrate. This module
//! turns that claim into an executable, *seed-reproducible* test surface:
//!
//! * a [`FaultSchedule`] scripts timed faults — [`FaultEvent::Crash`],
//!   [`FaultEvent::Restart`] (full container rebuild via
//!   [`ServiceFactory`](crate::ServiceFactory)), partitions and heals,
//!   [`FaultEvent::LinkRamp`] degradation windows and
//!   [`FaultEvent::ClockSkew`] drifts;
//! * [`Invariant`] checkers run on a cadence while the schedule executes —
//!   directory convergence, no silent staleness, bounded queues, and
//!   recovery-time objectives ([`RtoRecovery`]);
//! * a [`ScenarioRunner`] interleaves both against a [`SimHarness`] and
//!   produces a [`ScenarioReport`];
//! * the [`corpus`] ships named, ready-built scenarios
//!   (`ground_link_flap`, `split_brain_heal`, `rolling_restart_swarm16`,
//!   `radio_degradation_ramp`, `publisher_failover`,
//!   `bulk_flood_under_partition`) runnable from tests, CI and benches.
//!
//! Everything runs on virtual time over the deterministic
//! [`SimNet`](marea_netsim::SimNet): the same seed replays the same packet
//! trace, byte for byte, which is what makes chaos findings debuggable.
//!
//! ```
//! use marea_core::scenario::corpus::{self, ScenarioConfig};
//!
//! let report = corpus::run_named("ground_link_flap", &ScenarioConfig::quick(7))
//!     .expect("known scenario");
//! assert!(report.violations.is_empty(), "{report:?}");
//! ```

mod invariant;
mod schedule;

pub mod corpus;

pub use invariant::{
    Breach, DirectoryConvergence, Invariant, InvariantCtx, NoSilentStaleness, QueueBound,
    RtoRecovery, Violation,
};
pub use schedule::{FaultEvent, FaultSchedule, ScheduledFault};

use std::collections::HashSet;

use marea_netsim::NetStats;
use marea_presentation::Name;
use marea_protocol::{Micros, NodeId, ProtoDuration};

use crate::harness::SimHarness;
use crate::trace::{render_event, TraceId};

/// How many flight-recorder lines of the breaching node a violation
/// report carries (the tail closest to the failed check).
const VIOLATION_TRACE_TAIL: usize = 12;

/// Pulls the flight-recorder evidence for a breach: the last
/// [`VIOLATION_TRACE_TAIL`] relevant records of the breaching node, plus
/// the assembled cross-node causal chain of the newest traced record
/// among them (the offending sample's journey).
fn breach_evidence(
    harness: &SimHarness,
    node: Option<NodeId>,
    channel: Option<&Name>,
) -> (Vec<String>, Vec<String>) {
    let Some(node) = node else { return (Vec::new(), Vec::new()) };
    let Some(ring) = harness.trace_ring(node) else { return (Vec::new(), Vec::new()) };
    let all: Vec<&crate::trace::TraceEvent> = ring.events().collect();
    let relevant: Vec<&crate::trace::TraceEvent> = match channel {
        Some(ch) => all.iter().copied().filter(|e| e.name.as_ref() == Some(ch)).collect(),
        None => Vec::new(),
    };
    let source: &[&crate::trace::TraceEvent] = if relevant.is_empty() { &all } else { &relevant };
    let skip = source.len().saturating_sub(VIOLATION_TRACE_TAIL);
    let tail: Vec<String> = source[skip..].iter().map(|e| render_event(node, e)).collect();
    let offending =
        source.iter().rev().find(|e| !e.trace.is_none()).map(|e| e.trace).unwrap_or(TraceId::NONE);
    let chain: Vec<String> =
        harness.trace_chain(offending).into_iter().map(|(n, ev)| render_event(n, &ev)).collect();
    (tail, chain)
}

/// A named chaos scenario: a schedule plus how long to keep running after
/// it (so recovery can be observed) and how often invariants are checked.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (appears in reports).
    pub name: String,
    /// The fault script.
    pub schedule: FaultSchedule,
    /// Total virtual runtime from scenario start.
    pub duration: ProtoDuration,
    /// Invariant evaluation cadence.
    pub check_period: ProtoDuration,
}

impl Scenario {
    /// A scenario with the default 10 ms check cadence.
    pub fn new(name: impl Into<String>, schedule: FaultSchedule, duration: ProtoDuration) -> Self {
        Scenario {
            name: name.into(),
            schedule,
            duration,
            check_period: ProtoDuration::from_millis(10),
        }
    }
}

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Faults injected.
    pub events_applied: usize,
    /// Invariant checks evaluated.
    pub checks_run: usize,
    /// Every recorded violation, in time order.
    pub violations: Vec<Violation>,
    /// Virtual time consumed.
    pub elapsed: ProtoDuration,
    /// Network counters at the end of the run (the determinism fingerprint
    /// — identical seeds must reproduce this snapshot exactly).
    pub net_stats: NetStats,
}

impl ScenarioReport {
    /// `true` when every check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One ramp in progress.
#[derive(Debug, Clone)]
struct ActiveRamp {
    started: Micros,
    pair: Option<(NodeId, NodeId)>,
    from: marea_netsim::LinkConfig,
    to: marea_netsim::LinkConfig,
    window: ProtoDuration,
}

/// Interprets a [`Scenario`] against a harness while checking invariants.
///
/// The runner owns the harness for the duration of the run; build the
/// fleet first, then hand it over (and take it back with
/// [`into_harness`](Self::into_harness) for post-run assertions).
pub struct ScenarioRunner {
    harness: SimHarness,
    invariants: Vec<Box<dyn Invariant>>,
}

impl std::fmt::Debug for ScenarioRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRunner")
            .field("harness", &self.harness)
            .field("invariants", &self.invariants.len())
            .finish()
    }
}

impl ScenarioRunner {
    /// Wraps a prepared (services added, started) harness.
    pub fn new(harness: SimHarness) -> Self {
        ScenarioRunner { harness, invariants: Vec::new() }
    }

    /// Registers an invariant for subsequent runs.
    pub fn add_invariant(&mut self, invariant: Box<dyn Invariant>) -> &mut Self {
        self.invariants.push(invariant);
        self
    }

    /// Read access to the harness between runs.
    pub fn harness(&self) -> &SimHarness {
        &self.harness
    }

    /// Mutable access to the harness between runs.
    pub fn harness_mut(&mut self) -> &mut SimHarness {
        &mut self.harness
    }

    /// Unwraps the harness for post-run assertions.
    pub fn into_harness(self) -> SimHarness {
        self.harness
    }

    /// Executes the scenario: injects due faults, advances ramps, steps
    /// the harness and evaluates every invariant on the check cadence.
    pub fn run(&mut self, scenario: &Scenario) -> ScenarioReport {
        let start = self.harness.now();
        let end = Micros(start.as_micros() + scenario.duration.as_micros());
        let mut cursor = 0usize;
        let mut ramps: Vec<ActiveRamp> = Vec::new();
        let mut partitions: HashSet<(u32, u32)> = HashSet::new();
        let mut last_event_at = start;
        let mut next_check = start;
        let mut events_applied = 0usize;
        let mut checks_run = 0usize;
        let mut violations: Vec<Violation> = Vec::new();

        loop {
            let now = self.harness.now();

            // 1. Inject every fault that is due.
            while cursor < scenario.schedule.events().len() {
                let fault = &scenario.schedule.events()[cursor];
                let due_at = start.as_micros() + fault.at.as_micros();
                if due_at > now.as_micros() {
                    break;
                }
                cursor += 1;
                let event = fault.event.clone();
                let mut applied = true;
                match &event {
                    FaultEvent::Crash(node) => self.harness.crash_node(*node),
                    FaultEvent::Restart(node) => {
                        // A restart of a node without a blueprint is a
                        // script error, not middleware behaviour — record
                        // it instead of silently arming RTO invariants.
                        applied = self.harness.restart_node(*node);
                        if !applied {
                            violations.push(Violation {
                                at: now,
                                invariant: "schedule".to_string(),
                                detail: format!(
                                    "scripted restart of unknown node {node} (no blueprint)"
                                ),
                                node: Some(*node),
                                channel: None,
                                trace: Vec::new(),
                                chain: Vec::new(),
                            });
                        }
                    }
                    FaultEvent::Partition(a, b) => {
                        partitions.insert((a.0, b.0));
                        self.harness.network().set_partition(a.0, b.0, true);
                    }
                    FaultEvent::Heal(a, b) => {
                        partitions.remove(&(a.0, b.0));
                        partitions.remove(&(b.0, a.0));
                        self.harness.network().set_partition(a.0, b.0, false);
                    }
                    FaultEvent::LinkRamp { pair, from, to, window } => {
                        ramps.push(ActiveRamp {
                            started: now,
                            pair: *pair,
                            from: *from,
                            to: *to,
                            window: *window,
                        });
                    }
                    FaultEvent::ClockSkew { node, ppm } => {
                        self.harness.set_clock_skew_ppm(*node, *ppm);
                    }
                }
                if !applied {
                    continue;
                }
                events_applied += 1;
                last_event_at = now;
                for inv in &mut self.invariants {
                    inv.on_event(now, &event);
                }
            }

            // 2. Advance active ramps (a ramp counts as one continuous
            //    event: quiescence starts when its window closes).
            ramps.retain(|ramp| {
                let elapsed = now.saturating_since(ramp.started).as_micros();
                let t = if ramp.window.as_micros() == 0 {
                    1.0
                } else {
                    elapsed as f64 / ramp.window.as_micros() as f64
                };
                let cfg = ramp.from.lerp(&ramp.to, t);
                match ramp.pair {
                    Some((a, b)) => self.harness.network().set_link_symmetric(a.0, b.0, cfg),
                    None => self.harness.network().set_default_link(cfg),
                }
                if t >= 1.0 {
                    false
                } else {
                    last_event_at = now;
                    true
                }
            });

            // 3. Check invariants on the cadence.
            if now >= next_check {
                next_check = Micros(now.as_micros() + scenario.check_period.as_micros());
                let ctx = InvariantCtx {
                    harness: &self.harness,
                    now,
                    since_last_event: now.saturating_since(last_event_at),
                    partitioned: !partitions.is_empty(),
                };
                for inv in &mut self.invariants {
                    checks_run += 1;
                    if let Err(breach) = inv.check(&ctx) {
                        let (trace, chain) =
                            breach_evidence(&self.harness, breach.node, breach.channel.as_ref());
                        violations.push(Violation {
                            at: now,
                            invariant: inv.name().to_string(),
                            detail: breach.detail,
                            node: breach.node,
                            channel: breach.channel,
                            trace,
                            chain,
                        });
                    }
                }
            }

            if now >= end {
                break;
            }
            self.harness.step();
        }

        // Deterministic report order: (event-time, node, channel,
        // invariant). Checks already run in registration order, but the
        // sort pins the contract so readers can rely on it.
        violations.sort_by(|a, b| {
            (a.at, &a.node, &a.channel, &a.invariant).cmp(&(
                b.at,
                &b.node,
                &b.channel,
                &b.invariant,
            ))
        });

        ScenarioReport {
            name: scenario.name.clone(),
            events_applied,
            checks_run,
            violations,
            elapsed: self.harness.now().saturating_since(start),
            net_stats: self.harness.network().stats(),
        }
    }
}
