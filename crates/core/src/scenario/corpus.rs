//! The named chaos-scenario corpus: ready-built fleets + fault scripts.
//!
//! Each entry builds a small avionics fleet (publisher/subscriber/RPC
//! probe services with shared counters), a [`FaultSchedule`] and the
//! invariants that must hold through it. The corpus is the repo's
//! recovery-path regression surface: tests run every scenario in
//! [`ScenarioConfig::quick`] mode and fail on any
//! [`Violation`](crate::scenario::Violation); the
//! failover bench reports the measured recovery times of
//! [`publisher_failover`](self::build) in full-timing mode.
//!
//! All probe services are registered through
//! [`SimHarness::add_service_factory`], so scripted [`FaultEvent::Restart`]
//! events rebuild them — which is precisely the surface (re-announce,
//! re-subscribe, failover, fresh-value resumption) the corpus exists to
//! exercise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use marea_netsim::{LinkConfig, NetConfig};
use marea_presentation::{Name, Value};
use marea_protocol::{Micros, NodeId, ProtoDuration};

use crate::container::ContainerConfig;
use crate::error::CallError;
use crate::harness::SimHarness;
use crate::ports::{EventPort, FnPort, VarPort};
use crate::qos::{EventQos, VarQos};
use crate::scenario::{
    DirectoryConvergence, FaultEvent, FaultSchedule, NoSilentStaleness, QueueBound, RtoRecovery,
    Scenario, ScenarioReport, ScenarioRunner,
};
use crate::service::{
    CallHandle, ProviderNotice, Service, ServiceContext, ServiceDescriptor, TimerId,
};

/// Every corpus scenario name, in a stable order.
pub const NAMES: [&str; 7] = [
    "ground_link_flap",
    "split_brain_heal",
    "rolling_restart_swarm16",
    "radio_degradation_ramp",
    "publisher_failover",
    "bulk_flood_under_partition",
    "swarm_1024",
];

/// Seed + timing profile for a corpus run.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Network PRNG seed — the whole run is a pure function of it.
    pub seed: u64,
    /// Container heartbeat period.
    pub heartbeat: ProtoDuration,
    /// Container catalogue re-announce period.
    pub announce: ProtoDuration,
    /// Peer silence before a node is declared dead.
    pub node_timeout: ProtoDuration,
    /// Calm period the convergence invariant waits for (must cover
    /// `node_timeout` + `announce` + margin).
    pub grace: ProtoDuration,
    /// Base hold duration between scripted faults.
    pub hold: ProtoDuration,
    /// Recovery-time objective asserted by `publisher_failover`.
    pub rto: ProtoDuration,
}

impl ScenarioConfig {
    /// Fast profile for CI: aggressive failure detection, short holds —
    /// a full corpus pass stays in the low virtual-seconds per scenario.
    pub fn quick(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            heartbeat: ProtoDuration::from_millis(100),
            announce: ProtoDuration::from_millis(250),
            node_timeout: ProtoDuration::from_millis(600),
            grace: ProtoDuration::from_millis(1_700),
            hold: ProtoDuration::from_millis(800),
            rto: ProtoDuration::from_millis(2_500),
        }
    }

    /// Container-default timings (heartbeat 500 ms, 2 s announce/timeout)
    /// — the profile the failover bench measures.
    pub fn full(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            heartbeat: ProtoDuration::from_millis(500),
            announce: ProtoDuration::from_secs(2),
            node_timeout: ProtoDuration::from_secs(2),
            grace: ProtoDuration::from_secs(5),
            hold: ProtoDuration::from_secs(2),
            rto: ProtoDuration::from_secs(4),
        }
    }

    fn container(&self, name: &str, node: NodeId) -> ContainerConfig {
        let mut c = ContainerConfig::new(name, node);
        c.heartbeat_period = self.heartbeat;
        c.announce_period = self.announce;
        c.node_timeout = self.node_timeout;
        c
    }
}

/// Shared counters the probe services write and tests read.
#[derive(Debug, Clone, Default)]
pub struct ChaosProbes {
    /// Variable samples delivered to sinks.
    pub var_samples: Arc<AtomicU64>,
    /// Events delivered to sinks.
    pub events_seen: Arc<AtomicU64>,
    /// Successful call replies.
    pub calls_ok: Arc<AtomicU64>,
    /// Failed call replies.
    pub calls_err: Arc<AtomicU64>,
    /// Virtual µs of the newest successful call reply.
    pub last_ok_at_us: Arc<AtomicU64>,
    /// Virtual µs of the newest variable sample at a sink.
    pub last_var_at_us: Arc<AtomicU64>,
    /// Recovery times (µs) measured by the scenario's RTO invariants.
    pub recoveries_us: Arc<Mutex<Vec<u64>>>,
}

/// A built corpus entry: prepared runner + scenario + probe counters.
#[derive(Debug)]
pub struct ChaosRun {
    /// Runner holding the started fleet and the invariants.
    pub runner: ScenarioRunner,
    /// The fault script to execute.
    pub scenario: Scenario,
    /// Counters written by the fleet's probe services.
    pub probes: ChaosProbes,
}

impl ChaosRun {
    /// Executes the scenario and returns its report.
    pub fn run(&mut self) -> ScenarioReport {
        let scenario = self.scenario.clone();
        self.runner.run(&scenario)
    }
}

// ---- probe services -------------------------------------------------------

const TELEMETRY: &str = "chaos/telemetry";
const BULK: &str = "chaos/bulk";
const ECHO: &str = "chaos/echo";
const VAR_PERIOD_MS: u64 = 20;
const VAR_VALIDITY_MS: u64 = 100;

fn telemetry_qos() -> VarQos {
    VarQos::periodic(
        ProtoDuration::from_millis(VAR_PERIOD_MS),
        ProtoDuration::from_millis(VAR_VALIDITY_MS),
    )
}

/// Publishes `chaos/telemetry` every 20 ms.
struct Beacon {
    port: VarPort<u64>,
    count: u64,
}

impl Beacon {
    fn new() -> Self {
        Beacon { port: VarPort::new(TELEMETRY), count: 0 }
    }
}

impl Service for Beacon {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("beacon").provides_var(&self.port, telemetry_qos()).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        let p = ProtoDuration::from_millis(VAR_PERIOD_MS);
        ctx.set_timer(p, Some(p));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.count += 1;
        ctx.publish_to(&self.port, self.count);
    }
}

/// Counts telemetry samples (and optionally bulk events) into the probes.
struct Sink {
    probes: ChaosProbes,
    bulk: bool,
    port: VarPort<u64>,
}

impl Sink {
    fn new(probes: ChaosProbes, bulk: bool) -> Self {
        Sink { probes, bulk, port: VarPort::new(TELEMETRY) }
    }
}

impl Service for Sink {
    fn descriptor(&self) -> ServiceDescriptor {
        let mut b = ServiceDescriptor::builder("sink");
        b.subscribe_to_var(&self.port, telemetry_qos().with_initial());
        if self.bulk {
            b.subscribe_event(BULK, EventQos::bulk().with_queue_bound(32));
        }
        b.build()
    }
    fn on_variable(&mut self, ctx: &mut ServiceContext<'_>, _n: &Name, _v: &Value, _s: Micros) {
        self.probes.var_samples.fetch_add(1, Ordering::Relaxed);
        self.probes.last_var_at_us.fetch_max(ctx.now().as_micros(), Ordering::Relaxed);
    }
    fn on_event(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _n: &Name,
        _v: Option<&Value>,
        _s: Micros,
    ) {
        self.probes.events_seen.fetch_add(1, Ordering::Relaxed);
    }
}

/// Answers `chaos/echo(x) = x + node` so callers can tell providers apart.
struct Echo {
    node: u64,
    port: FnPort<(u64,), u64>,
}

impl Echo {
    fn new(node: u64) -> Self {
        Echo { node, port: FnPort::new(ECHO) }
    }
}

impl Service for Echo {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("echo").provides_fn(&self.port).build()
    }
    fn on_call(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _f: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        let x = args.first().and_then(Value::as_u64).unwrap_or(0);
        Ok(self.port.encode_ret(x + self.node))
    }
}

/// Calls `chaos/echo` every 100 ms once a provider is resolvable.
struct Caller {
    probes: ChaosProbes,
    port: FnPort<(u64,), u64>,
    armed: bool,
    n: u64,
}

impl Caller {
    fn new(probes: ChaosProbes) -> Self {
        Caller { probes, port: FnPort::new(ECHO), armed: false, n: 0 }
    }
}

impl Service for Caller {
    fn descriptor(&self) -> ServiceDescriptor {
        let mut b = ServiceDescriptor::builder("caller");
        b.requires_fn(&self.port);
        b.build()
    }
    fn on_provider_change(&mut self, ctx: &mut ServiceContext<'_>, notice: &ProviderNotice) {
        if matches!(notice, ProviderNotice::FunctionAvailable(_)) && !self.armed {
            self.armed = true;
            let p = ProtoDuration::from_millis(100);
            ctx.set_timer(p, Some(p));
        }
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.n += 1;
        ctx.call_fn(&self.port, (self.n,));
    }
    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        _handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        match result {
            Ok(_) => {
                self.probes.calls_ok.fetch_add(1, Ordering::Relaxed);
                self.probes.last_ok_at_us.fetch_max(ctx.now().as_micros(), Ordering::Relaxed);
            }
            Err(_) => {
                self.probes.calls_err.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Emits a burst of bulk events every 10 ms.
struct Flooder {
    port: EventPort<u64>,
    k: u64,
}

impl Flooder {
    fn new() -> Self {
        Flooder { port: EventPort::new(BULK), k: 0 }
    }
}

impl Service for Flooder {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("flooder").provides_event(&self.port).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        let p = ProtoDuration::from_millis(10);
        ctx.set_timer(p, Some(p));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        for _ in 0..8 {
            self.k += 1;
            ctx.emit_to(&self.port, self.k);
        }
    }
}

// ---- corpus entries -------------------------------------------------------

fn ms(d: ProtoDuration) -> u64 {
    d.as_millis()
}

fn standard_invariants(runner: &mut ScenarioRunner, cfg: &ScenarioConfig) {
    runner.add_invariant(Box::new(DirectoryConvergence::new(cfg.grace)));
    runner.add_invariant(Box::new(NoSilentStaleness::new(ProtoDuration::from_millis(500))));
    runner.add_invariant(Box::new(QueueBound::new(4096)));
}

/// Builds a corpus entry by name (see [`NAMES`]); `None` for unknown names.
pub fn build(name: &str, cfg: &ScenarioConfig) -> Option<ChaosRun> {
    let probes = ChaosProbes::default();
    let mut h = SimHarness::new(NetConfig::default().with_seed(cfg.seed));
    let hold = ms(cfg.hold);
    let settle = ms(cfg.grace) + hold;

    let (schedule, duration, runner) = match name {
        "ground_link_flap" => {
            // A UAV↔ground radio that drops out twice and comes back: the
            // subscription must re-wire and fresh samples must resume.
            h.add_container(cfg.container("ground", NodeId(1)));
            h.add_container(cfg.container("uav", NodeId(2)));
            let p = probes.clone();
            h.add_service_factory(NodeId(1), move || {
                Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
            });
            h.add_service_factory(NodeId(2), || Box::new(Beacon::new()) as Box<dyn Service>);
            h.start_all();
            let schedule = FaultSchedule::new()
                .partition(ProtoDuration::from_millis(hold), NodeId(1), NodeId(2))
                .heal(ProtoDuration::from_millis(2 * hold), NodeId(1), NodeId(2))
                .partition(ProtoDuration::from_millis(3 * hold), NodeId(1), NodeId(2))
                .heal(ProtoDuration::from_millis(4 * hold), NodeId(1), NodeId(2));
            let duration = ProtoDuration::from_millis(4 * hold + settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            (schedule, duration, runner)
        }
        "split_brain_heal" => {
            // Four nodes split into {1,2} | {3,4}, then healed: both
            // halves must re-converge on one view of the fleet.
            for i in 1..=4u32 {
                h.add_container(cfg.container("swarm", NodeId(i)));
            }
            h.add_service_factory(NodeId(1), || Box::new(Beacon::new()) as Box<dyn Service>);
            for i in [2u32, 3, 4] {
                let p = probes.clone();
                h.add_service_factory(NodeId(i), move || {
                    Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
                });
            }
            h.start_all();
            let cut = ProtoDuration::from_millis(hold);
            let mend = ProtoDuration::from_millis(3 * hold);
            let mut schedule = FaultSchedule::new();
            for (a, b) in [(1u32, 3u32), (1, 4), (2, 3), (2, 4)] {
                schedule = schedule.partition(cut, NodeId(a), NodeId(b));
                schedule = schedule.heal(mend, NodeId(a), NodeId(b));
            }
            let duration = ProtoDuration::from_millis(3 * hold + settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            (schedule, duration, runner)
        }
        "rolling_restart_swarm16" => {
            // Sixteen nodes restarted one by one — a rolling fleet update.
            // Every restarted container must re-announce and re-join.
            for i in 1..=16u32 {
                h.add_container(cfg.container("swarm", NodeId(i)));
            }
            h.add_service_factory(NodeId(1), || Box::new(Beacon::new()) as Box<dyn Service>);
            for i in 2..=16u32 {
                let p = probes.clone();
                h.add_service_factory(NodeId(i), move || {
                    Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
                });
            }
            h.start_all();
            let step = (hold / 4).max(100);
            let mut schedule = FaultSchedule::new();
            for (k, i) in (2..=16u32).enumerate() {
                let at = ProtoDuration::from_millis(hold + k as u64 * step);
                schedule = schedule.restart(at, NodeId(i));
            }
            // The publisher goes last.
            let pub_at = ProtoDuration::from_millis(hold + 15 * step);
            schedule = schedule.restart(pub_at, NodeId(1));
            let duration = ProtoDuration::from_millis(hold + 16 * step + settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            (schedule, duration, runner)
        }
        "radio_degradation_ramp" => {
            // The link degrades continuously into a storm (25% loss, 15 ms
            // latency, 5 ms jitter), holds, then clears. Warnings must
            // fire instead of silent staleness, queues stay bounded.
            h.add_container(cfg.container("ground", NodeId(1)));
            h.add_container(cfg.container("uav", NodeId(2)));
            let p = probes.clone();
            h.add_service_factory(NodeId(1), move || {
                Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
            });
            h.add_service_factory(NodeId(2), || Box::new(Beacon::new()) as Box<dyn Service>);
            h.start_all();
            let calm = LinkConfig::default();
            let storm =
                LinkConfig::default().with_loss(0.25).with_latency_us(15_000).with_jitter_us(5_000);
            let window = ProtoDuration::from_millis(2 * hold);
            let schedule = FaultSchedule::new()
                .link_ramp(ProtoDuration::from_millis(hold), calm, storm, window)
                .link_ramp(ProtoDuration::from_millis(4 * hold), storm, calm, window);
            let duration = ProtoDuration::from_millis(6 * hold + settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            (schedule, duration, runner)
        }
        "publisher_failover" => {
            // Primary provider (node 2) crashes: calls must fail over to
            // the backup (node 3) within the RTO, the telemetry
            // subscription must rebind to the backup publisher, and the
            // restarted primary must rejoin cleanly.
            h.add_container(cfg.container("client", NodeId(1)));
            h.add_container(cfg.container("primary", NodeId(2)));
            h.add_container(cfg.container("backup", NodeId(3)));
            let p = probes.clone();
            h.add_service_factory(NodeId(1), move || {
                Box::new(Caller::new(p.clone())) as Box<dyn Service>
            });
            let p = probes.clone();
            h.add_service_factory(NodeId(1), move || {
                Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
            });
            h.add_service_factory(NodeId(2), || Box::new(Echo::new(2)) as Box<dyn Service>);
            h.add_service_factory(NodeId(2), || Box::new(Beacon::new()) as Box<dyn Service>);
            h.add_service_factory(NodeId(3), || Box::new(Echo::new(3)) as Box<dyn Service>);
            h.add_service_factory(NodeId(3), || Box::new(Beacon::new()) as Box<dyn Service>);
            h.start_all();
            let schedule = FaultSchedule::new()
                .crash(ProtoDuration::from_millis(2 * hold), NodeId(2))
                .restart(ProtoDuration::from_millis(2 * hold + settle), NodeId(2));
            let duration = ProtoDuration::from_millis(2 * hold + 2 * settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            // RTO: a call must succeed strictly after the crash within the
            // objective — the §4.3 transparent-failover promise, measured.
            let ok_at = probes.last_ok_at_us.clone();
            let rto = RtoRecovery::new(
                "failover-rto",
                cfg.rto,
                |ev| matches!(ev, FaultEvent::Crash(NodeId(2))),
                move |_h, armed| ok_at.load(Ordering::Relaxed) > armed.as_micros(),
            );
            let mut probes = probes.clone();
            probes.recoveries_us = rto.recoveries();
            runner.add_invariant(Box::new(rto));
            return Some(ChaosRun {
                runner,
                scenario: Scenario::new(name, schedule, duration),
                probes,
            });
        }
        "bulk_flood_under_partition" => {
            // A bulk event flood rides through a partition: the bounded
            // bulk inbox applies its drop policy, queues stay bounded,
            // and critical telemetry keeps its freshness contract.
            h.add_container(cfg.container("ground", NodeId(1)));
            h.add_container(cfg.container("uav", NodeId(2)));
            h.add_container(cfg.container("relay", NodeId(3)));
            let p = probes.clone();
            h.add_service_factory(NodeId(1), move || {
                Box::new(Sink::new(p.clone(), true)) as Box<dyn Service>
            });
            h.add_service_factory(NodeId(2), || Box::new(Flooder::new()) as Box<dyn Service>);
            h.add_service_factory(NodeId(3), || Box::new(Beacon::new()) as Box<dyn Service>);
            h.start_all();
            let schedule = FaultSchedule::new()
                .partition(ProtoDuration::from_millis(hold), NodeId(1), NodeId(2))
                .heal(ProtoDuration::from_millis(2 * hold), NodeId(1), NodeId(2));
            let duration = ProtoDuration::from_millis(2 * hold + settle);
            let mut runner = ScenarioRunner::new(h);
            standard_invariants(&mut runner, cfg);
            (schedule, duration, runner)
        }
        "swarm_1024" => {
            // A 1024-node swarm: one beacon, eight telemetry sinks, the
            // rest bare fleet members. A mid-fleet node crashes and
            // rejoins; every directory must re-converge on 1024 peers.
            // Control-plane periods are stretched to swarm scale — the
            // O(n²) heartbeat fan-out dominates, and the digest gossip
            // keeps the steady-state announce traffic to one compact
            // summary per node per period. The profile's quick timings
            // would melt a 1024-node control group, so this entry pins
            // its own (the seed still comes from the profile).
            let mut swarm = *cfg;
            swarm.heartbeat = ProtoDuration::from_millis(1_000);
            swarm.announce = ProtoDuration::from_secs(2);
            swarm.node_timeout = ProtoDuration::from_secs(3);
            swarm.grace = ProtoDuration::from_secs(4);
            h.set_tick_us(2_000);
            for i in 1..=1024u32 {
                h.add_container(swarm.container("swarm", NodeId(i)));
            }
            h.add_service_factory(NodeId(1), || Box::new(Beacon::new()) as Box<dyn Service>);
            for i in 2..=9u32 {
                let p = probes.clone();
                h.add_service_factory(NodeId(i), move || {
                    Box::new(Sink::new(p.clone(), false)) as Box<dyn Service>
                });
            }
            h.start_all();
            // The crash→restart gap must exceed node_timeout so the fleet
            // actually declares the node dead before it rejoins.
            let schedule = FaultSchedule::new()
                .crash(ProtoDuration::from_millis(500), NodeId(512))
                .restart(ProtoDuration::from_millis(4_500), NodeId(512));
            let duration = ProtoDuration::from_millis(9_000);
            let mut runner = ScenarioRunner::new(h);
            runner.add_invariant(Box::new(DirectoryConvergence::new(swarm.grace)));
            runner.add_invariant(Box::new(QueueBound::new(4096)));
            let mut scenario = Scenario::new(name, schedule, duration);
            // Checking invariants every 10 ms across 1024 directories is
            // pure overhead; 250 ms still lands several convergence
            // checks inside the post-restart calm window.
            scenario.check_period = ProtoDuration::from_millis(250);
            return Some(ChaosRun { runner, scenario, probes });
        }
        _ => return None,
    };

    Some(ChaosRun { runner, scenario: Scenario::new(name, schedule, duration), probes })
}

/// Builds and runs a named scenario; `None` for unknown names.
pub fn run_named(name: &str, cfg: &ScenarioConfig) -> Option<ScenarioReport> {
    let mut chaos = build(name, cfg)?;
    Some(chaos.run())
}
