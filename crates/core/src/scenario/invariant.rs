//! Invariant checkers: what must *stay true* while faults are injected.
//!
//! An [`Invariant`] is evaluated on a cadence while a scenario runs. It is
//! told about every fault the runner injects (so it can gate itself on
//! quiescence or arm a recovery deadline) and returns a violation message
//! when the middleware breaks its contract.

use marea_presentation::Name;
use marea_protocol::{Micros, NodeId, ProtoDuration};

use crate::harness::SimHarness;
use crate::scenario::schedule::FaultEvent;

/// What an invariant sees at each check.
pub struct InvariantCtx<'a> {
    /// The harness under chaos.
    pub harness: &'a SimHarness,
    /// Current virtual time.
    pub now: Micros,
    /// Virtual time since the last fault injection (ramps count as one
    /// continuous event until their window closes).
    pub since_last_event: ProtoDuration,
    /// At least one scripted partition is currently active.
    pub partitioned: bool,
}

impl InvariantCtx<'_> {
    /// `true` once the fleet has had `grace` of calm to converge: no
    /// active partition and no fault injected for at least that long.
    pub fn quiescent_for(&self, grace: ProtoDuration) -> bool {
        !self.partitioned && self.since_last_event >= grace
    }
}

/// What an invariant reports when a check fails: the message plus the
/// (node, channel) coordinates the runner uses to pull the relevant
/// flight-recorder evidence and order the report deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Breach {
    /// Human-readable account of the violation.
    pub detail: String,
    /// The node the breach was observed on, when one is identifiable.
    pub node: Option<NodeId>,
    /// The variable/event channel involved, when one is identifiable.
    pub channel: Option<Name>,
}

impl Breach {
    /// A breach with only a message (no node/channel coordinates).
    pub fn new(detail: impl Into<String>) -> Self {
        Breach { detail: detail.into(), node: None, channel: None }
    }

    /// Pins the breach to the node it was observed on.
    #[must_use]
    pub fn at_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Pins the breach to the channel it concerns.
    #[must_use]
    pub fn on_channel(mut self, channel: Name) -> Self {
        self.channel = Some(channel);
        self
    }
}

/// One violated invariant occurrence, with the flight-recorder evidence
/// the runner attached at check time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Virtual time of the failed check.
    pub at: Micros,
    /// Name of the invariant that failed.
    pub invariant: String,
    /// Human-readable account of the violation.
    pub detail: String,
    /// The node the breach was observed on, when identifiable.
    pub node: Option<NodeId>,
    /// The channel involved, when identifiable.
    pub channel: Option<Name>,
    /// Last relevant flight-recorder lines of the breaching node
    /// (rendered with [`render_event`](crate::trace::render_event),
    /// oldest first; empty when tracing is off or no node is known).
    pub trace: Vec<String>,
    /// The assembled cross-node causal chain of the offending sample
    /// (empty when no traced event is implicated).
    pub chain: Vec<String>,
}

/// A property checked on a cadence while a scenario runs.
pub trait Invariant: Send {
    /// Stable name (appears in [`Violation`]s and reports).
    fn name(&self) -> &str;

    /// Notification of a fault the runner just injected.
    fn on_event(&mut self, _now: Micros, _event: &FaultEvent) {}

    /// One check; `Err` is recorded as a [`Violation`].
    ///
    /// # Errors
    ///
    /// The breach: message plus node/channel coordinates when known.
    fn check(&mut self, ctx: &InvariantCtx<'_>) -> Result<(), Breach>;
}

/// After every topology change settles, all live nodes must agree on who
/// is alive — and nobody may still believe a crashed node lives.
///
/// The grace period must cover failure detection plus re-announce (node
/// timeout + announce period + margin); with the container defaults that
/// is ≈4–5 s of virtual time.
#[derive(Debug)]
pub struct DirectoryConvergence {
    grace: ProtoDuration,
}

impl DirectoryConvergence {
    /// Convergence checker with the given calm-period grace.
    pub fn new(grace: ProtoDuration) -> Self {
        DirectoryConvergence { grace }
    }
}

impl Invariant for DirectoryConvergence {
    fn name(&self) -> &str {
        "directory-convergence"
    }

    fn check(&mut self, ctx: &InvariantCtx<'_>) -> Result<(), Breach> {
        if !ctx.quiescent_for(self.grace) {
            return Ok(());
        }
        // Only *running* containers count as live: a gracefully stopped
        // node said `Bye`, so peers are right to have purged it.
        let live: std::collections::BTreeSet<_> = ctx
            .harness
            .nodes()
            .into_iter()
            .filter(|n| ctx.harness.container(*n).is_some_and(|c| c.is_running()))
            .collect();
        for a in &live {
            let c = ctx.harness.container(*a).expect("listed");
            for b in &live {
                if !c.directory().node_alive(*b) {
                    return Err(Breach::new(format!(
                        "node {a} does not see live node {b} after calm period"
                    ))
                    .at_node(*a));
                }
            }
            for dead in c.directory().nodes() {
                if !live.contains(&dead) {
                    return Err(Breach::new(format!(
                        "node {a} still believes crashed node {dead} is alive"
                    ))
                    .at_node(*a));
                }
            }
        }
        Ok(())
    }
}

/// No silent staleness: a bound variable channel that has been silent past
/// its declared loss deadline (`deadline_periods` × period, the contract
/// the vars engine enforces) must have raised the timeout warning —
/// subscribers are never left acting on stale data unwarned (§4.1).
#[derive(Debug)]
pub struct NoSilentStaleness {
    /// Extra tolerance past the declared deadline before silence counts
    /// (covers the sweep cadence and delivery latency).
    slack: ProtoDuration,
}

impl NoSilentStaleness {
    /// Checker with the given sweep-tolerance slack.
    pub fn new(slack: ProtoDuration) -> Self {
        NoSilentStaleness { slack }
    }
}

impl Invariant for NoSilentStaleness {
    fn name(&self) -> &str {
        "no-silent-staleness"
    }

    fn check(&mut self, ctx: &InvariantCtx<'_>) -> Result<(), Breach> {
        for node in ctx.harness.nodes() {
            let c = ctx.harness.container(node).expect("listed");
            // last_rx is stamped with the node's (possibly skewed) local
            // clock, so the age must be measured in the same domain.
            let local_now = Micros(ctx.harness.local_time(node));
            for (name, ch) in c.var_channels() {
                if !ch.bound {
                    continue;
                }
                // Aperiodic channels declare no loss deadline — silence
                // is not a contract violation there.
                let Some(deadline_us) = ch.deadline_us else { continue };
                let Some(last_rx) = ch.last_rx else { continue };
                let age = local_now.saturating_since(last_rx).as_micros();
                if age > deadline_us.saturating_add(self.slack.as_micros()) && !ch.timed_out {
                    return Err(Breach::new(format!(
                        "node {node} channel `{name}`: last sample {age}µs old \
                         (declared deadline {deadline_us}µs) with no timeout warning"
                    ))
                    .at_node(node)
                    .on_channel(name));
                }
            }
        }
        Ok(())
    }
}

/// The handler queue of every container stays bounded — chaos must not
/// make work pile up without limit (resource management, §3).
#[derive(Debug)]
pub struct QueueBound {
    max: usize,
}

impl QueueBound {
    /// Bound checker for the given maximum queued handler invocations.
    pub fn new(max: usize) -> Self {
        QueueBound { max }
    }
}

impl Invariant for QueueBound {
    fn name(&self) -> &str {
        "event-queue-bound"
    }

    fn check(&mut self, ctx: &InvariantCtx<'_>) -> Result<(), Breach> {
        for node in ctx.harness.nodes() {
            let c = ctx.harness.container(node).expect("listed");
            let len = c.scheduler_len();
            if len > self.max {
                return Err(Breach::new(format!(
                    "node {node} scheduler queue {len} exceeds bound {}",
                    self.max
                ))
                .at_node(node));
            }
        }
        Ok(())
    }
}

/// Recovery-time objective: after a triggering fault, a caller-supplied
/// predicate must become true within `rto` of virtual time.
///
/// Every measured recovery (µs from trigger to predicate) is pushed into
/// the shared `recoveries` sink, so tests and benches can assert on and
/// report the distribution.
pub struct RtoRecovery {
    label: String,
    rto: ProtoDuration,
    trigger: TriggerFn,
    recovered: RecoveredFn,
    armed_at: Option<Micros>,
    recoveries: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
}

/// Matcher deciding which injected fault arms the RTO clock.
type TriggerFn = Box<dyn Fn(&FaultEvent) -> bool + Send>;
/// Predicate over (harness, trigger time) deciding recovery.
type RecoveredFn = Box<dyn Fn(&SimHarness, Micros) -> bool + Send>;

impl RtoRecovery {
    /// RTO checker: when `trigger` matches an injected fault, `recovered`
    /// must hold within `rto`. The predicate receives the harness and the
    /// virtual time the trigger fired (so "a reply arrived strictly after
    /// the crash" is expressible).
    pub fn new(
        label: impl Into<String>,
        rto: ProtoDuration,
        trigger: impl Fn(&FaultEvent) -> bool + Send + 'static,
        recovered: impl Fn(&SimHarness, Micros) -> bool + Send + 'static,
    ) -> Self {
        RtoRecovery {
            label: label.into(),
            rto,
            trigger: Box::new(trigger),
            recovered: Box::new(recovered),
            armed_at: None,
            recoveries: Default::default(),
        }
    }

    /// Shared sink of measured recovery times (µs), one per trigger.
    pub fn recoveries(&self) -> std::sync::Arc<std::sync::Mutex<Vec<u64>>> {
        self.recoveries.clone()
    }
}

impl std::fmt::Debug for RtoRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtoRecovery")
            .field("label", &self.label)
            .field("rto", &self.rto)
            .field("armed_at", &self.armed_at)
            .finish_non_exhaustive()
    }
}

impl Invariant for RtoRecovery {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_event(&mut self, now: Micros, event: &FaultEvent) {
        if (self.trigger)(event) {
            self.armed_at = Some(now);
        }
    }

    fn check(&mut self, ctx: &InvariantCtx<'_>) -> Result<(), Breach> {
        let Some(armed) = self.armed_at else { return Ok(()) };
        if (self.recovered)(ctx.harness, armed) {
            let took = ctx.now.saturating_since(armed).as_micros();
            self.recoveries.lock().expect("rto sink").push(took);
            self.armed_at = None;
            return Ok(());
        }
        if ctx.now.saturating_since(armed) > self.rto {
            self.armed_at = None; // report once per trigger
            return Err(Breach::new(format!(
                "recovery objective {}ms exceeded after fault at {armed:?}",
                self.rto.as_millis()
            )));
        }
        Ok(())
    }
}
