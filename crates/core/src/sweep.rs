//! Sorted-walk helpers: the sanctioned way to iterate hash maps on
//! wire-send paths.
//!
//! Send order decides how the deterministic netsim RNG stream maps onto
//! datagrams, so any sweep that can emit frames must walk its maps in a
//! stable order — that is what makes the same seed reproduce
//! bit-identical `NetStats`/`ContainerStats` (asserted by the scenario
//! corpus). `marea-lint` rule **D1** forbids raw `HashMap`/`HashSet`
//! iteration in those paths; these helpers are the escape hatch the rule
//! recognizes (bodies of `fn sorted_*` are exempt), which keeps the
//! sorted collect the path of least resistance.

use std::collections::HashMap;

/// The keys of `map`, ascending. The returned `Vec` is owned, so the
/// caller may mutate the map while walking (the usual sweep shape:
/// re-look-up per key, skip keys that vanished mid-sweep).
pub fn sorted_keys<K: Ord + Clone, V>(map: &HashMap<K, V>) -> Vec<K> {
    let mut keys: Vec<K> = map.keys().cloned().collect();
    keys.sort();
    keys
}

/// Scratch-buffer variant of [`sorted_keys`]: fills `scratch` with the
/// keys of `map`, ascending, reusing its allocation. Per-tick sweeps
/// that keep a scratch `Vec` on the owning struct pay the sort but not
/// a fresh allocation every tick; the borrow rules are the same as
/// [`sorted_keys`] (the buffer is detached from the map, so the caller
/// may mutate the map while walking).
pub fn sorted_keys_into<K: Ord + Clone, V>(map: &HashMap<K, V>, scratch: &mut Vec<K>) {
    scratch.clear();
    scratch.extend(map.keys().cloned());
    scratch.sort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_come_back_sorted() {
        let mut m = HashMap::new();
        for k in [9u32, 3, 7, 1, 8] {
            m.insert(k, ());
        }
        assert_eq!(sorted_keys(&m), vec![1, 3, 7, 8, 9]);
    }

    #[test]
    fn empty_map_yields_empty_vec() {
        let m: HashMap<u8, ()> = HashMap::new();
        assert!(sorted_keys(&m).is_empty());
    }

    #[test]
    fn scratch_variant_matches_and_reuses_the_buffer() {
        let mut m = HashMap::new();
        for k in [9u32, 3, 7, 1, 8] {
            m.insert(k, ());
        }
        let mut scratch = Vec::with_capacity(8);
        sorted_keys_into(&m, &mut scratch);
        assert_eq!(scratch, sorted_keys(&m));
        let cap = scratch.capacity();
        m.remove(&9);
        sorted_keys_into(&m, &mut scratch);
        assert_eq!(scratch, vec![1, 3, 7, 8]);
        assert_eq!(scratch.capacity(), cap, "refill must reuse the allocation");
    }
}
