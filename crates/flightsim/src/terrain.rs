//! Synthetic terrain and payload imagery.
//!
//! The paper's Fig. 3 scenario photographs the ground and runs on-board
//! detection on an FPGA. This module substitutes the physical world: a
//! deterministic landscape (value-noise texture) with high-contrast
//! *targets* placed pseudo-randomly from the seed. The camera service
//! renders grayscale frames; the video-processing service detects bright
//! blobs; tests compare detections against [`Terrain::targets_in_view`]
//! ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::geo::GeoPoint;

/// A rendered camera frame (8-bit grayscale, row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Metres covered by one pixel.
    pub m_per_px: f64,
    /// Pixel values, `width * height` bytes, row-major from the north-west
    /// corner.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// Pixel accessor.
    pub fn at(&self, x: u32, y: u32) -> u8 {
        self.pixels[(y * self.width + x) as usize]
    }

    /// Serializes to the wire format used for file transfer: a 16-byte
    /// header (magic, width, height, µm-per-px) followed by pixels.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.pixels.len());
        out.extend_from_slice(b"MIMG");
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&((self.m_per_px * 1e6) as u32).to_le_bytes());
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Inverse of [`Frame::to_bytes`]; `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Frame> {
        if bytes.len() < 16 || &bytes[0..4] != b"MIMG" {
            return None;
        }
        let width = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
        let height = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let um_per_px = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
        let n = (width as usize).checked_mul(height as usize)?;
        if bytes.len() != 16 + n {
            return None;
        }
        Some(Frame {
            width,
            height,
            m_per_px: f64::from(um_per_px) / 1e6,
            pixels: bytes[16..].to_vec(),
        })
    }
}

/// A ground target (something worth detecting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Target {
    /// Location.
    pub position: GeoPoint,
    /// Radius on the ground, metres.
    pub radius_m: f64,
}

/// The deterministic synthetic landscape.
#[derive(Debug, Clone)]
pub struct Terrain {
    seed: u64,
    targets: Vec<Target>,
}

impl Terrain {
    /// Creates a landscape seeded with `seed`, scattering `target_count`
    /// targets uniformly within `extent_m` metres of `origin`.
    pub fn new(seed: u64, origin: GeoPoint, extent_m: f64, target_count: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7A26_55AA);
        let targets = (0..target_count)
            .map(|_| {
                let east = rng.gen_range(0.0..extent_m);
                let north = rng.gen_range(0.0..extent_m);
                let radius = rng.gen_range(4.0..12.0);
                Target { position: origin.displaced_m(east, north), radius_m: radius }
            })
            .collect();
        Terrain { seed, targets }
    }

    /// The ground-truth target list.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// Ground texture brightness at a point, 0-255 (excluding targets).
    fn texture(&self, east_m: f64, north_m: f64) -> u8 {
        // Two octaves of hashed value noise: cheap, deterministic, no deps.
        let v1 =
            hash_noise(self.seed, (east_m / 80.0).floor() as i64, (north_m / 80.0).floor() as i64);
        let v2 = hash_noise(
            self.seed ^ 1,
            (east_m / 17.0).floor() as i64,
            (north_m / 17.0).floor() as i64,
        );
        // Keep the background in the dark half so targets stand out.
        (40.0 + 0.35 * v1 + 0.15 * v2) as u8
    }

    /// Renders a nadir frame centred on `center` with the given resolution.
    pub fn render(&self, center: GeoPoint, width: u32, height: u32, m_per_px: f64) -> Frame {
        let mut pixels = vec![0u8; (width * height) as usize];
        let half_w = f64::from(width) / 2.0 * m_per_px;
        let half_h = f64::from(height) / 2.0 * m_per_px;
        // Pre-compute target offsets relative to the frame centre.
        let target_offsets: Vec<(f64, f64, f64)> = self
            .targets
            .iter()
            .map(|t| {
                let (dx, dy) = center.offset_m(&t.position);
                (dx, dy, t.radius_m)
            })
            .filter(|(dx, dy, r)| dx.abs() < half_w + r && dy.abs() < half_h + r)
            .collect();
        for y in 0..height {
            for x in 0..width {
                let east = (f64::from(x) + 0.5) * m_per_px - half_w;
                // Row 0 is the northern edge.
                let north = half_h - (f64::from(y) + 0.5) * m_per_px;
                let mut v = self.texture(east, north);
                for (tx, ty, r) in &target_offsets {
                    let d2 = (east - tx) * (east - tx) + (north - ty) * (north - ty);
                    if d2 <= r * r {
                        v = 235; // hot target, well above any texture value
                    }
                }
                pixels[(y * width + x) as usize] = v;
            }
        }
        Frame { width, height, m_per_px, pixels }
    }

    /// Ground truth: targets whose centre falls inside a frame rendered at
    /// `center` with the given geometry.
    pub fn targets_in_view(
        &self,
        center: GeoPoint,
        width: u32,
        height: u32,
        m_per_px: f64,
    ) -> Vec<Target> {
        let half_w = f64::from(width) / 2.0 * m_per_px;
        let half_h = f64::from(height) / 2.0 * m_per_px;
        self.targets
            .iter()
            .filter(|t| {
                let (dx, dy) = center.offset_m(&t.position);
                dx.abs() < half_w && dy.abs() < half_h
            })
            .copied()
            .collect()
    }
}

fn hash_noise(seed: u64, x: i64, y: i64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((x as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((y as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 27;
    (h % 256) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(41.275, 1.987, 0.0)
    }

    #[test]
    fn rendering_is_deterministic() {
        let t1 = Terrain::new(5, origin(), 2000.0, 10);
        let t2 = Terrain::new(5, origin(), 2000.0, 10);
        let c = origin().displaced_m(500.0, 500.0).at_alt(120.0);
        assert_eq!(t1.render(c, 64, 64, 2.0), t2.render(c, 64, 64, 2.0));
        assert_eq!(t1.targets(), t2.targets());
    }

    #[test]
    fn targets_render_bright() {
        let t = Terrain::new(6, origin(), 1000.0, 5);
        let target = t.targets()[0];
        let frame = t.render(target.position, 64, 64, 1.0);
        // Centre pixel is on the target.
        assert_eq!(frame.at(32, 32), 235);
        // Background stays dark.
        let background = t.render(origin().displaced_m(-5000.0, -5000.0), 64, 64, 1.0);
        assert!(background.pixels.iter().all(|&p| p < 170));
    }

    #[test]
    fn ground_truth_matches_view_geometry() {
        let t = Terrain::new(7, origin(), 1000.0, 20);
        let target = t.targets()[3];
        let seen = t.targets_in_view(target.position, 128, 128, 2.0);
        assert!(seen.iter().any(|s| s.position == target.position));
        let not_seen = t.targets_in_view(origin().displaced_m(-9999.0, -9999.0), 128, 128, 2.0);
        assert!(not_seen.is_empty());
    }

    #[test]
    fn frame_bytes_roundtrip() {
        let t = Terrain::new(8, origin(), 500.0, 3);
        let f = t.render(origin(), 32, 16, 1.5);
        let bytes = f.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes).unwrap(), f);
        assert!(Frame::from_bytes(&bytes[..10]).is_none());
        let mut corrupt = bytes.clone();
        corrupt[0] = b'X';
        assert!(Frame::from_bytes(&corrupt).is_none());
        let mut truncated = bytes.clone();
        truncated.pop();
        assert!(Frame::from_bytes(&truncated).is_none());
    }
}
