//! Geographic points and flat-earth math.
//!
//! Missions for mini-UAVs span a few kilometres, so a local flat-earth
//! approximation (equirectangular) is accurate to well under a metre —
//! and keeps the whole simulation dependency-free and fast.

/// Metres per degree of latitude (WGS-84 mean).
const M_PER_DEG_LAT: f64 = 111_320.0;

/// A geographic position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees (positive north).
    pub lat: f64,
    /// Longitude in degrees (positive east).
    pub lon: f64,
    /// Altitude above mean sea level, metres.
    pub alt: f64,
}

impl GeoPoint {
    /// Creates a point.
    pub fn new(lat: f64, lon: f64, alt: f64) -> Self {
        GeoPoint { lat, lon, alt }
    }

    /// Horizontal distance to `other` in metres (flat-earth).
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let (dx, dy) = self.offset_m(other);
        (dx * dx + dy * dy).sqrt()
    }

    /// 3D distance including the altitude difference.
    pub fn distance_3d_m(&self, other: &GeoPoint) -> f64 {
        let (dx, dy) = self.offset_m(other);
        let dz = other.alt - self.alt;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Initial bearing towards `other`, radians in `[0, 2π)` (0 = north,
    /// clockwise positive — aviation convention).
    pub fn bearing_rad(&self, other: &GeoPoint) -> f64 {
        let (dx, dy) = self.offset_m(other);
        let b = dx.atan2(dy); // atan2(east, north)
        if b < 0.0 {
            b + std::f64::consts::TAU
        } else {
            b
        }
    }

    /// East/north offset of `other` from `self` in metres.
    pub fn offset_m(&self, other: &GeoPoint) -> (f64, f64) {
        let dy = (other.lat - self.lat) * M_PER_DEG_LAT;
        let dx = (other.lon - self.lon) * M_PER_DEG_LAT * self.lat.to_radians().cos();
        (dx, dy)
    }

    /// Returns the point displaced `east_m`/`north_m` metres.
    pub fn displaced_m(&self, east_m: f64, north_m: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + north_m / M_PER_DEG_LAT,
            lon: self.lon + east_m / (M_PER_DEG_LAT * self.lat.to_radians().cos()),
            alt: self.alt,
        }
    }

    /// Same horizontal position at a different altitude.
    pub fn at_alt(&self, alt: f64) -> GeoPoint {
        GeoPoint { alt, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        // Castelldefels, the paper's lab location.
        GeoPoint::new(41.275, 1.987, 0.0)
    }

    #[test]
    fn displacement_roundtrips() {
        let p = base();
        let q = p.displaced_m(300.0, -400.0);
        let (dx, dy) = p.offset_m(&q);
        assert!((dx - 300.0).abs() < 0.01, "{dx}");
        assert!((dy + 400.0).abs() < 0.01, "{dy}");
        assert!((p.distance_m(&q) - 500.0).abs() < 0.1);
    }

    #[test]
    fn bearings_follow_compass() {
        let p = base();
        let north = p.displaced_m(0.0, 100.0);
        let east = p.displaced_m(100.0, 0.0);
        let south = p.displaced_m(0.0, -100.0);
        let west = p.displaced_m(-100.0, 0.0);
        assert!((p.bearing_rad(&north) - 0.0).abs() < 1e-6);
        assert!((p.bearing_rad(&east) - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
        assert!((p.bearing_rad(&south) - std::f64::consts::PI).abs() < 1e-6);
        assert!((p.bearing_rad(&west) - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn distance_3d_includes_altitude() {
        let p = base();
        let q = p.displaced_m(0.0, 30.0).at_alt(40.0);
        assert!((p.distance_3d_m(&q) - 50.0).abs() < 0.05);
    }
}
