//! # marea-flightsim — the UAV flight-dynamics substrate
//!
//! The paper's system flies on a real mini-UAV with a Flight Computer
//! System feeding GPS fixes, and the authors demo'd a FlightGear telemetry
//! bridge (§6). Neither is available to a reproduction, so this crate
//! substitutes both with a deterministic simulation:
//!
//! * [`Kinematics`] — a simple constant-speed aircraft model with bounded
//!   turn and climb rates;
//! * [`FlightPlan`] / [`Autopilot`] — waypoint navigation with per-waypoint
//!   actions (the mission scripts of §5);
//! * [`sensors`] — noisy GPS / barometer / IMU readings derived from the
//!   true state (seeded, reproducible);
//! * [`Terrain`] — a synthetic landscape with deterministically placed
//!   high-contrast *targets*, rendered into grayscale frames for the camera
//!   payload (so the Fig. 3 image-processing scenario has ground truth);
//! * [`World`] — glues the above behind a single stepping facade that
//!   services drive from container timers.
//!
//! Everything is seeded: the same seed yields the same flight, the same
//! sensor noise and the same imagery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autopilot;
mod geo;
mod kinematics;
mod plan;
pub mod sensors;
mod terrain;
mod world;

pub use autopilot::{Autopilot, AutopilotStatus};
pub use geo::GeoPoint;
pub use kinematics::{Kinematics, UavState};
pub use plan::{FlightPlan, Waypoint, WaypointAction};
pub use terrain::{Frame, Terrain};
pub use world::{World, WorldEvent};
