//! The aircraft motion model.

use crate::geo::GeoPoint;

/// Instantaneous aircraft state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UavState {
    /// Position.
    pub position: GeoPoint,
    /// Heading, radians, 0 = north, clockwise.
    pub heading_rad: f64,
    /// True airspeed, m/s.
    pub speed_mps: f64,
    /// Vertical speed, m/s (positive climb).
    pub climb_mps: f64,
}

/// A fixed-wing-like kinematic model: constant commanded speed, bounded
/// turn rate, bounded climb rate. Good enough to exercise every middleware
/// path with realistic timing; not an aerodynamics simulation.
#[derive(Debug, Clone)]
pub struct Kinematics {
    state: UavState,
    /// Commanded heading, radians.
    target_heading_rad: f64,
    /// Commanded altitude, metres.
    target_alt_m: f64,
    /// Maximum turn rate, rad/s.
    pub max_turn_rate: f64,
    /// Maximum climb/descent rate, m/s.
    pub max_climb_mps: f64,
}

impl Kinematics {
    /// Creates a model at `start`, heading north at `speed_mps`.
    pub fn new(start: GeoPoint, speed_mps: f64) -> Self {
        Kinematics {
            state: UavState { position: start, heading_rad: 0.0, speed_mps, climb_mps: 0.0 },
            target_heading_rad: 0.0,
            target_alt_m: start.alt,
            max_turn_rate: 0.5, // ~29°/s, typical for a mini UAV
            max_climb_mps: 3.0,
        }
    }

    /// Current state.
    pub fn state(&self) -> UavState {
        self.state
    }

    /// Commands a new heading.
    pub fn set_target_heading(&mut self, heading_rad: f64) {
        self.target_heading_rad = heading_rad.rem_euclid(std::f64::consts::TAU);
    }

    /// Commands a new altitude.
    pub fn set_target_alt(&mut self, alt_m: f64) {
        self.target_alt_m = alt_m;
    }

    /// Commands a new airspeed.
    pub fn set_speed(&mut self, speed_mps: f64) {
        self.state.speed_mps = speed_mps.max(0.0);
    }

    /// Advances the model by `dt_s` seconds.
    pub fn step(&mut self, dt_s: f64) {
        // Turn towards the commanded heading along the short way.
        let mut err = self.target_heading_rad - self.state.heading_rad;
        while err > std::f64::consts::PI {
            err -= std::f64::consts::TAU;
        }
        while err < -std::f64::consts::PI {
            err += std::f64::consts::TAU;
        }
        let max_delta = self.max_turn_rate * dt_s;
        let delta = err.clamp(-max_delta, max_delta);
        self.state.heading_rad = (self.state.heading_rad + delta).rem_euclid(std::f64::consts::TAU);

        // Climb towards the commanded altitude.
        let alt_err = self.target_alt_m - self.state.position.alt;
        self.state.climb_mps =
            alt_err.clamp(-self.max_climb_mps * dt_s, self.max_climb_mps * dt_s) / dt_s.max(1e-9);
        let climb = self.state.climb_mps * dt_s;

        // Advance.
        let dist = self.state.speed_mps * dt_s;
        let east = dist * self.state.heading_rad.sin();
        let north = dist * self.state.heading_rad.cos();
        let new_alt = self.state.position.alt + climb;
        self.state.position = self.state.position.displaced_m(east, north).at_alt(new_alt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> GeoPoint {
        GeoPoint::new(41.275, 1.987, 100.0)
    }

    #[test]
    fn straight_flight_covers_expected_distance() {
        let mut k = Kinematics::new(start(), 20.0);
        for _ in 0..100 {
            k.step(0.1); // 10 s total
        }
        let d = start().distance_m(&k.state().position);
        assert!((d - 200.0).abs() < 1.0, "{d}");
    }

    #[test]
    fn turn_rate_is_bounded() {
        let mut k = Kinematics::new(start(), 20.0);
        k.set_target_heading(std::f64::consts::PI); // 180° turn
        k.step(1.0);
        assert!((k.state().heading_rad - 0.5).abs() < 1e-9, "one second at 0.5 rad/s");
        // Eventually reaches the target.
        for _ in 0..100 {
            k.step(0.1);
        }
        assert!((k.state().heading_rad - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn turns_take_the_short_way() {
        let mut k = Kinematics::new(start(), 0.0);
        k.set_target_heading(-0.2_f64.rem_euclid(std::f64::consts::TAU)); // ≈ 6.08 rad
        k.set_target_heading(6.08);
        k.step(0.1);
        // Heading should decrease through 0/2π, not sweep all the way up.
        assert!(k.state().heading_rad > 6.0, "{}", k.state().heading_rad);
    }

    #[test]
    fn climb_is_bounded_and_converges() {
        let mut k = Kinematics::new(start(), 20.0);
        k.set_target_alt(130.0);
        k.step(1.0);
        assert!((k.state().position.alt - 103.0).abs() < 1e-6, "3 m/s max climb");
        for _ in 0..200 {
            k.step(0.1);
        }
        assert!((k.state().position.alt - 130.0).abs() < 0.01);
        assert!(k.state().climb_mps.abs() < 0.1);
    }
}
