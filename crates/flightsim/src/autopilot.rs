//! Waypoint-following autopilot.

use crate::geo::GeoPoint;
use crate::kinematics::Kinematics;
use crate::plan::{FlightPlan, Waypoint};

/// Where the autopilot stands in its plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutopilotStatus {
    /// Flying towards waypoint `next`.
    Enroute {
        /// Index of the next waypoint.
        next: usize,
    },
    /// Every waypoint has been visited; holding the last heading.
    Done,
}

/// Steers a [`Kinematics`] model along a [`FlightPlan`].
#[derive(Debug, Clone)]
pub struct Autopilot {
    plan: FlightPlan,
    next: usize,
}

impl Autopilot {
    /// Creates an autopilot for `plan`.
    pub fn new(plan: FlightPlan) -> Self {
        Autopilot { plan, next: 0 }
    }

    /// The plan being flown.
    pub fn plan(&self) -> &FlightPlan {
        &self.plan
    }

    /// Progress.
    pub fn status(&self) -> AutopilotStatus {
        if self.next >= self.plan.len() {
            AutopilotStatus::Done
        } else {
            AutopilotStatus::Enroute { next: self.next }
        }
    }

    /// The waypoint currently being flown to.
    pub fn current_target(&self) -> Option<&Waypoint> {
        self.plan.get(self.next)
    }

    /// Updates steering commands and detects arrivals. Returns the indices
    /// of waypoints reached during this update (normally zero or one).
    pub fn update(&mut self, kin: &mut Kinematics) -> Vec<usize> {
        let mut reached = Vec::new();
        let pos: GeoPoint = kin.state().position;
        while let Some(wp) = self.plan.get(self.next) {
            if pos.distance_m(&wp.point) <= wp.radius_m {
                reached.push(self.next);
                self.next += 1;
            } else {
                break;
            }
        }
        if let Some(wp) = self.plan.get(self.next) {
            kin.set_target_heading(pos.bearing_rad(&wp.point));
            kin.set_target_alt(wp.point.alt);
        }
        reached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Waypoint;

    #[test]
    fn flies_the_whole_plan() {
        let origin = GeoPoint::new(41.275, 1.987, 100.0);
        let plan = FlightPlan::new(vec![
            Waypoint::nav(origin.displaced_m(0.0, 500.0)),
            Waypoint::nav(origin.displaced_m(500.0, 500.0)),
            Waypoint::nav(origin.displaced_m(500.0, 0.0)),
        ]);
        let mut kin = Kinematics::new(origin, 25.0);
        let mut ap = Autopilot::new(plan);
        let mut reached = Vec::new();
        // 2 minutes of simulated flight at 10 Hz.
        for _ in 0..1200 {
            kin.step(0.1);
            reached.extend(ap.update(&mut kin));
            if ap.status() == AutopilotStatus::Done {
                break;
            }
        }
        assert_eq!(reached, vec![0, 1, 2]);
        assert_eq!(ap.status(), AutopilotStatus::Done);
    }

    #[test]
    fn enroute_reports_next_waypoint() {
        let origin = GeoPoint::new(41.275, 1.987, 100.0);
        let plan = FlightPlan::new(vec![Waypoint::nav(origin.displaced_m(0.0, 1000.0))]);
        let mut kin = Kinematics::new(origin, 20.0);
        let mut ap = Autopilot::new(plan);
        ap.update(&mut kin);
        assert_eq!(ap.status(), AutopilotStatus::Enroute { next: 0 });
        assert!(ap.current_target().is_some());
    }

    #[test]
    fn empty_plan_is_done_immediately() {
        let origin = GeoPoint::new(41.275, 1.987, 100.0);
        let mut kin = Kinematics::new(origin, 20.0);
        let mut ap = Autopilot::new(FlightPlan::default());
        assert!(ap.update(&mut kin).is_empty());
        assert_eq!(ap.status(), AutopilotStatus::Done);
    }
}
