//! Noisy sensor models: GPS, barometric altimeter, IMU heading.
//!
//! All noise is drawn from one seeded PRNG per sensor, so runs are
//! reproducible. Noise magnitudes follow typical hobby-grade hardware of
//! the paper's era (few-metre GPS error, sub-metre baro, ~1° heading).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::geo::GeoPoint;
use crate::kinematics::UavState;

/// A GPS fix as published on the `gps/position` variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsFix {
    /// Measured position.
    pub position: GeoPoint,
    /// Measured ground speed, m/s.
    pub speed_mps: f64,
    /// Measured course over ground, radians.
    pub course_rad: f64,
    /// Number of satellites (drops during simulated outages).
    pub satellites: u8,
}

/// A GPS receiver model with white position noise and optional outages.
#[derive(Debug, Clone)]
pub struct GpsSensor {
    rng: SmallRng,
    /// 1-sigma horizontal error, metres.
    pub sigma_m: f64,
    /// 1-sigma vertical error, metres.
    pub sigma_alt_m: f64,
    outage_until_s: f64,
}

impl GpsSensor {
    /// Creates a receiver with a noise seed.
    pub fn new(seed: u64) -> Self {
        GpsSensor {
            rng: SmallRng::seed_from_u64(seed),
            sigma_m: 2.5,
            sigma_alt_m: 4.0,
            outage_until_s: 0.0,
        }
    }

    /// Simulates an outage (no fixes) until `until_s` of mission time.
    pub fn set_outage_until(&mut self, until_s: f64) {
        self.outage_until_s = until_s;
    }

    /// Samples a fix from the true state at mission time `t_s`; `None`
    /// during an outage.
    pub fn sample(&mut self, truth: &UavState, t_s: f64) -> Option<GpsFix> {
        if t_s < self.outage_until_s {
            return None;
        }
        let gauss = |rng: &mut SmallRng, sigma: f64| {
            // Box-Muller from two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen::<f64>();
            sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let east = gauss(&mut self.rng, self.sigma_m);
        let north = gauss(&mut self.rng, self.sigma_m);
        let up = gauss(&mut self.rng, self.sigma_alt_m);
        let pos = truth.position.displaced_m(east, north);
        Some(GpsFix {
            position: pos.at_alt(truth.position.alt + up),
            speed_mps: (truth.speed_mps + gauss(&mut self.rng, 0.2)).max(0.0),
            course_rad: (truth.heading_rad + gauss(&mut self.rng, 0.01))
                .rem_euclid(std::f64::consts::TAU),
            satellites: self.rng.gen_range(7..=12),
        })
    }
}

/// Barometric altimeter: altitude with slow drift plus white noise.
#[derive(Debug, Clone)]
pub struct Barometer {
    rng: SmallRng,
    drift_m: f64,
    /// 1-sigma white noise, metres.
    pub sigma_m: f64,
}

impl Barometer {
    /// Creates an altimeter with a noise seed.
    pub fn new(seed: u64) -> Self {
        Barometer { rng: SmallRng::seed_from_u64(seed), drift_m: 0.0, sigma_m: 0.4 }
    }

    /// Samples pressure altitude from the true state.
    pub fn sample(&mut self, truth: &UavState) -> f64 {
        // Random-walk drift, bounded.
        self.drift_m = (self.drift_m + self.rng.gen_range(-0.02f64..0.02)).clamp(-5.0, 5.0);
        truth.position.alt + self.drift_m + self.rng.gen_range(-self.sigma_m..self.sigma_m)
    }
}

/// Magnetometer/IMU heading sensor.
#[derive(Debug, Clone)]
pub struct HeadingSensor {
    rng: SmallRng,
    /// 1-sigma heading error, radians.
    pub sigma_rad: f64,
}

impl HeadingSensor {
    /// Creates a heading sensor with a noise seed.
    pub fn new(seed: u64) -> Self {
        HeadingSensor { rng: SmallRng::seed_from_u64(seed), sigma_rad: 0.02 }
    }

    /// Samples heading from the true state.
    pub fn sample(&mut self, truth: &UavState) -> f64 {
        (truth.heading_rad + self.rng.gen_range(-self.sigma_rad..self.sigma_rad))
            .rem_euclid(std::f64::consts::TAU)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> UavState {
        UavState {
            position: GeoPoint::new(41.275, 1.987, 120.0),
            heading_rad: 1.0,
            speed_mps: 20.0,
            climb_mps: 0.0,
        }
    }

    #[test]
    fn gps_noise_is_bounded_and_reproducible() {
        let mut a = GpsSensor::new(7);
        let mut b = GpsSensor::new(7);
        let t = truth();
        for i in 0..100 {
            let fa = a.sample(&t, i as f64).unwrap();
            let fb = b.sample(&t, i as f64).unwrap();
            assert_eq!(fa, fb, "same seed, same fixes");
            let err = t.position.distance_m(&fa.position);
            assert!(err < 20.0, "5-sigma bound: {err}");
        }
    }

    #[test]
    fn gps_outage_suppresses_fixes() {
        let mut g = GpsSensor::new(1);
        g.set_outage_until(10.0);
        assert!(g.sample(&truth(), 5.0).is_none());
        assert!(g.sample(&truth(), 10.0).is_some());
    }

    #[test]
    fn barometer_tracks_altitude() {
        let mut b = Barometer::new(2);
        let t = truth();
        for _ in 0..1000 {
            let alt = b.sample(&t);
            assert!((alt - 120.0).abs() < 7.0, "drift + noise bounded: {alt}");
        }
    }

    #[test]
    fn heading_wraps_correctly() {
        let mut h = HeadingSensor::new(3);
        let mut t = truth();
        t.heading_rad = 0.001; // near wrap
        for _ in 0..100 {
            let v = h.sample(&t);
            assert!((0.0..std::f64::consts::TAU).contains(&v));
        }
    }
}
