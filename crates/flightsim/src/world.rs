//! The simulation facade services drive from container timers.

use crate::autopilot::{Autopilot, AutopilotStatus};
use crate::geo::GeoPoint;
use crate::kinematics::{Kinematics, UavState};
use crate::plan::{FlightPlan, WaypointAction};
use crate::terrain::{Frame, Terrain};

/// Something that happened while advancing the world.
#[derive(Debug, Clone, PartialEq)]
pub enum WorldEvent {
    /// A waypoint was reached; carries its index and action.
    WaypointReached {
        /// Index in the flight plan.
        index: usize,
        /// The action attached to the waypoint.
        action: WaypointAction,
    },
    /// The flight plan is complete.
    PlanComplete,
}

/// The whole simulated outside world: airframe + autopilot + landscape.
///
/// Time is pushed in from outside (`advance_to` with mission seconds), so
/// the world follows the container's clock — virtual under the simulation
/// harness, wall-clock under the real-time driver.
#[derive(Debug, Clone)]
pub struct World {
    kinematics: Kinematics,
    autopilot: Autopilot,
    terrain: Terrain,
    t_s: f64,
    step_s: f64,
    plan_done_reported: bool,
}

impl World {
    /// Creates a world: aircraft at `start`, flying `plan` over `terrain`.
    pub fn new(start: GeoPoint, speed_mps: f64, plan: FlightPlan, terrain: Terrain) -> Self {
        World {
            kinematics: Kinematics::new(start, speed_mps),
            autopilot: Autopilot::new(plan),
            terrain,
            t_s: 0.0,
            step_s: 0.05,
            plan_done_reported: false,
        }
    }

    /// Mission time in seconds.
    pub fn time_s(&self) -> f64 {
        self.t_s
    }

    /// True aircraft state.
    pub fn state(&self) -> UavState {
        self.kinematics.state()
    }

    /// The landscape.
    pub fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// The autopilot (for progress inspection).
    pub fn autopilot(&self) -> &Autopilot {
        &self.autopilot
    }

    /// Advances the world to mission time `t_s`, integrating in fixed
    /// sub-steps for numerical stability. Returns mission events in order.
    pub fn advance_to(&mut self, t_s: f64) -> Vec<WorldEvent> {
        let mut events = Vec::new();
        while self.t_s + self.step_s <= t_s {
            self.t_s += self.step_s;
            self.kinematics.step(self.step_s);
            for index in self.autopilot.update(&mut self.kinematics) {
                let action = self
                    .autopilot
                    .plan()
                    .get(index)
                    .map(|w| w.action.clone())
                    .unwrap_or(WaypointAction::None);
                events.push(WorldEvent::WaypointReached { index, action });
            }
            if self.autopilot.status() == AutopilotStatus::Done && !self.plan_done_reported {
                self.plan_done_reported = true;
                events.push(WorldEvent::PlanComplete);
            }
        }
        events
    }

    /// Renders the camera view straight down from the current position.
    pub fn capture_frame(&self, width: u32, height: u32) -> Frame {
        // Ground footprint scales with altitude: a simple pinhole model
        // with a 60° field of view.
        let alt = self.state().position.alt.max(10.0);
        let footprint_m = 2.0 * alt * (30f64.to_radians()).tan() * 2.0;
        let m_per_px = footprint_m / f64::from(width);
        self.terrain.render(self.state().position, width, height, m_per_px)
    }

    /// Ground truth for the current camera view.
    pub fn targets_in_current_view(&self, width: u32, height: u32) -> usize {
        let alt = self.state().position.alt.max(10.0);
        let footprint_m = 2.0 * alt * (30f64.to_radians()).tan() * 2.0;
        let m_per_px = footprint_m / f64::from(width);
        self.terrain.targets_in_view(self.state().position, width, height, m_per_px).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Waypoint;

    fn origin() -> GeoPoint {
        GeoPoint::new(41.275, 1.987, 120.0)
    }

    #[test]
    fn world_flies_plan_and_reports_events() {
        let plan = FlightPlan::new(vec![
            Waypoint::photo(origin().displaced_m(0.0, 400.0)),
            Waypoint::nav(origin().displaced_m(400.0, 400.0)),
        ]);
        let terrain = Terrain::new(1, origin(), 1000.0, 5);
        let mut w = World::new(origin(), 25.0, plan, terrain);
        let mut events = Vec::new();
        for t in 1..120 {
            events.extend(w.advance_to(t as f64));
        }
        assert_eq!(
            events,
            vec![
                WorldEvent::WaypointReached { index: 0, action: WaypointAction::TakePhoto },
                WorldEvent::WaypointReached { index: 1, action: WaypointAction::None },
                WorldEvent::PlanComplete,
            ]
        );
        assert!(w.time_s() >= 118.9, "fixed-step integration reaches the target time");
    }

    #[test]
    fn advance_is_idempotent_for_past_times() {
        let terrain = Terrain::new(2, origin(), 500.0, 1);
        let mut w = World::new(origin(), 20.0, FlightPlan::default(), terrain);
        w.advance_to(5.0);
        let t = w.time_s();
        let events = w.advance_to(3.0);
        assert!(events.is_empty(), "no events from a past target time");
        assert_eq!(w.time_s(), t, "time never goes backwards");
    }

    #[test]
    fn camera_footprint_scales_with_altitude() {
        let terrain = Terrain::new(3, origin(), 500.0, 0);
        let low = World::new(origin().at_alt(50.0), 20.0, FlightPlan::default(), terrain.clone());
        let high = World::new(origin().at_alt(200.0), 20.0, FlightPlan::default(), terrain);
        let f_low = low.capture_frame(64, 64);
        let f_high = high.capture_frame(64, 64);
        assert!(f_high.m_per_px > f_low.m_per_px * 3.0);
    }
}
