//! Flight plans: ordered waypoints with per-waypoint mission actions.

use crate::geo::GeoPoint;

/// What the mission should do on arrival at a waypoint (paper §5: "the MC
/// is instructed to take high resolution photos at specified locations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaypointAction {
    /// Take a photo and distribute it to the payload services.
    TakePhoto,
    /// Emit a named mission event.
    Notify(String),
    /// Nothing special; navigation fix only.
    None,
}

/// One waypoint of a flight plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Waypoint {
    /// Target position.
    pub point: GeoPoint,
    /// Arrival radius in metres: the waypoint counts as reached inside it.
    pub radius_m: f64,
    /// Action on arrival.
    pub action: WaypointAction,
}

impl Waypoint {
    /// A plain navigation waypoint with a 30 m arrival radius.
    pub fn nav(point: GeoPoint) -> Self {
        Waypoint { point, radius_m: 30.0, action: WaypointAction::None }
    }

    /// A photo waypoint with a 30 m arrival radius.
    pub fn photo(point: GeoPoint) -> Self {
        Waypoint { point, radius_m: 30.0, action: WaypointAction::TakePhoto }
    }

    /// Builder-style arrival radius override.
    #[must_use]
    pub fn with_radius_m(mut self, r: f64) -> Self {
        self.radius_m = r;
        self
    }
}

/// An ordered list of waypoints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightPlan {
    waypoints: Vec<Waypoint>,
}

impl FlightPlan {
    /// Creates a plan from waypoints.
    pub fn new(waypoints: Vec<Waypoint>) -> Self {
        FlightPlan { waypoints }
    }

    /// A rectangular survey ("lawnmower") pattern over an area anchored at
    /// `origin`, with photo waypoints at each corner — the kind of mission
    /// the paper's Fig. 3 scenario runs.
    pub fn survey(origin: GeoPoint, width_m: f64, height_m: f64, passes: u32) -> Self {
        let mut wps = Vec::new();
        for i in 0..passes {
            let y = height_m * f64::from(i) / f64::from(passes.max(1));
            let (x0, x1) = if i % 2 == 0 { (0.0, width_m) } else { (width_m, 0.0) };
            wps.push(Waypoint::photo(origin.displaced_m(x0, y)));
            wps.push(Waypoint::photo(origin.displaced_m(x1, y)));
        }
        FlightPlan::new(wps)
    }

    /// The waypoints in order.
    pub fn waypoints(&self) -> &[Waypoint] {
        &self.waypoints
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// `true` when the plan has no waypoints.
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// Waypoint by index.
    pub fn get(&self, i: usize) -> Option<&Waypoint> {
        self.waypoints.get(i)
    }

    /// Total horizontal path length in metres.
    pub fn path_length_m(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].point.distance_m(&w[1].point)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_alternates_direction() {
        let origin = GeoPoint::new(41.275, 1.987, 100.0);
        let plan = FlightPlan::survey(origin, 1000.0, 600.0, 3);
        assert_eq!(plan.len(), 6);
        // First pass goes east, second comes back west.
        let (dx0, _) = origin.offset_m(&plan.get(1).unwrap().point);
        let (dx1, _) = origin.offset_m(&plan.get(3).unwrap().point);
        assert!(dx0 > 900.0);
        assert!(dx1 < 100.0);
        assert!(plan.path_length_m() > 3000.0);
        assert!(plan.waypoints().iter().all(|w| w.action == WaypointAction::TakePhoto));
    }

    #[test]
    fn empty_plan() {
        let p = FlightPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.path_length_m(), 0.0);
        assert!(p.get(0).is_none());
    }
}
