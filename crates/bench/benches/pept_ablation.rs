//! F4 (Fig. 4): PEPt layer ablation — wall-clock cost of the pluggable
//! encoding and protocol subsystems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use marea_encoding::{typedesc, Codec, CompactCodec, SelfDescribingCodec};
use marea_presentation::{DataType, StructType, Value};
use marea_protocol::{crc32, Frame, Message, MessageKind, NodeId};

fn position_fixture() -> (DataType, Value) {
    let ty = DataType::Struct(
        StructType::new("Position")
            .with_field("lat", DataType::F64)
            .unwrap()
            .with_field("lon", DataType::F64)
            .unwrap()
            .with_field("alt", DataType::F64)
            .unwrap()
            .with_field("heading", DataType::F64)
            .unwrap()
            .with_field("speed", DataType::F64)
            .unwrap(),
    );
    let v = Value::struct_of("Position")
        .field("lat", 41.27641)
        .field("lon", 1.98720)
        .field("alt", 120.5)
        .field("heading", 1.57)
        .field("speed", 22.0)
        .build()
        .unwrap();
    (ty, v)
}

fn bench_codecs(c: &mut Criterion) {
    let (ty, value) = position_fixture();
    let mut group = c.benchmark_group("f4_codec_position");
    for (name, codec) in
        [("compact", &CompactCodec as &dyn Codec), ("self_describing", &SelfDescribingCodec)]
    {
        let encoded = codec.encode_to_vec(&value, &ty).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function(BenchmarkId::new("encode", name), |b| {
            b.iter(|| codec.encode_to_vec(std::hint::black_box(&value), &ty).unwrap())
        });
        group.bench_function(BenchmarkId::new("decode", name), |b| {
            b.iter(|| codec.decode(std::hint::black_box(&encoded), &ty).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("f4_codec_blob");
    let blob_ty = DataType::Bytes;
    for size in [256usize, 4096, 65536] {
        let blob = Value::Bytes(vec![0xA7; size]);
        let encoded = CompactCodec.encode_to_vec(&blob, &blob_ty).unwrap();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::new("compact_roundtrip", size), |b| {
            b.iter(|| {
                let e = CompactCodec.encode_to_vec(std::hint::black_box(&blob), &blob_ty).unwrap();
                CompactCodec.decode(&e, &blob_ty).unwrap()
            })
        });
        let _ = encoded;
    }
    group.finish();
}

fn bench_typedesc(c: &mut Criterion) {
    let (ty, _) = position_fixture();
    let encoded = typedesc::encode_type_to_vec(&ty);
    c.bench_function("f4_typedesc_roundtrip", |b| {
        b.iter(|| {
            let e = typedesc::encode_type_to_vec(std::hint::black_box(&ty));
            typedesc::decode_type_from_slice(&e).unwrap()
        })
    });
    let _ = encoded;
}

fn bench_frame(c: &mut Criterion) {
    let payload = Bytes::from(vec![0x5A; 256]);
    let frame = Frame::new(NodeId(3), MessageKind::VarSample, payload);
    let wire = frame.encode();
    let mut group = c.benchmark_group("f4_frame");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_256B", |b| b.iter(|| std::hint::black_box(&frame).encode()));
    group.bench_function("decode_256B", |b| {
        b.iter(|| Frame::decode(std::hint::black_box(&wire)).unwrap())
    });
    group.bench_function("crc32_1500B", |b| {
        let data = vec![0xC3u8; 1500];
        b.iter(|| crc32(std::hint::black_box(&data)))
    });
    group.finish();
}

fn bench_message_vocabulary(c: &mut Criterion) {
    let msg = Message::VarSample {
        name: marea_presentation::Name::new("gps/position").unwrap(),
        seq: 991,
        stamp_us: 123_456,
        validity_us: 200_000,
        trace: (1 << 32) | 991,
        codec: 0,
        payload: Bytes::from(vec![1u8; 40]),
    };
    let tagged = msg.encode_tagged();
    c.bench_function("f4_message_var_sample_roundtrip", |b| {
        b.iter(|| {
            let e = std::hint::black_box(&msg).encode_tagged();
            Message::decode_tagged(&e).unwrap()
        })
    });
    let _ = tagged;
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_codecs, bench_typedesc, bench_frame, bench_message_vocabulary
}
criterion_main!(benches);
