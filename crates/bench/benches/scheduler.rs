//! C5 + F1: scheduler policies under load, raw queue operations, and
//! fleet discovery scenarios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use marea_bench::{bench_discovery, bench_qos_priority, bench_scheduler_latency};
use marea_core::{
    FifoScheduler, Priority, PriorityScheduler, Scheduler, SchedulerKind, Task, TaskPayload,
    TimerId,
};

fn bench_c5_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_scheduler_policy");
    for bg in [50u32, 150] {
        group.bench_function(BenchmarkId::new("priority", bg), |b| {
            b.iter(|| {
                let r = bench_scheduler_latency(SchedulerKind::Priority, bg, 10, 7);
                assert!(r.count > 0);
                r
            })
        });
        group.bench_function(BenchmarkId::new("fifo", bg), |b| {
            b.iter(|| {
                let r = bench_scheduler_latency(SchedulerKind::Fifo, bg, 10, 7);
                assert!(r.count > 0);
                r
            })
        });
    }
    // C5b: the per-subscription QoS contract against the default lanes.
    for contract in [false, true] {
        group.bench_function(BenchmarkId::new("qos_priority", contract), |b| {
            b.iter(|| {
                let r = bench_qos_priority(contract, 400, 10, 7);
                assert!(r.critical.count > 0);
                r
            })
        });
    }
    group.finish();
}

fn bench_queue_micro(c: &mut Criterion) {
    let mk_task = |i: u64| Task {
        priority: match i % 4 {
            0 => Priority::EVENT,
            1 => Priority::CALL,
            2 => Priority::VARIABLE,
            _ => Priority::FILE,
        },
        enqueued_seq: i,
        service_seq: 1,
        payload: TaskPayload::Timer { id: TimerId(i) },
    };
    let mut group = c.benchmark_group("c5_queue_ops");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("priority_push_pop_1000", |b| {
        b.iter(|| {
            let mut s = PriorityScheduler::new();
            for i in 0..1000 {
                s.push(mk_task(i));
            }
            let mut n = 0;
            while s.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 1000);
        })
    });
    group.bench_function("fifo_push_pop_1000", |b| {
        b.iter(|| {
            let mut s = FifoScheduler::new();
            for i in 0..1000 {
                s.push(mk_task(i));
            }
            let mut n = 0;
            while s.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 1000);
        })
    });
    group.finish();
}

fn bench_f1_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_discovery");
    for nodes in [4u32, 8] {
        group.bench_function(BenchmarkId::new("full_mesh", nodes), |b| {
            b.iter(|| {
                let ms = bench_discovery(nodes, 8);
                assert!(ms < 1_000);
                ms
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_c5_scenarios, bench_queue_micro, bench_f1_discovery
}
criterion_main!(benches);
