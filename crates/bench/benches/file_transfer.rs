//! C4 + C7: file distribution scenarios and the protocol-level MFTP state
//! machines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use marea_bench::{bench_file_bypass, bench_file_multicast};
use marea_presentation::Name;
use marea_protocol::mftp::{FileReceiver, FileSender, RevisionPolicy};
use marea_protocol::{GroupId, Message, NodeId, TransferId};

fn bench_c4_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("c4_file_multicast");
    for (size, subs) in [(64 * 1024usize, 4u32), (256 * 1024, 8)] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(
            BenchmarkId::new("distribute", format!("{}KiB_x{subs}", size / 1024)),
            |b| {
                b.iter(|| {
                    let r = bench_file_multicast(size, subs, 0.0, 5);
                    assert_eq!(r.completed, subs);
                    r
                })
            },
        );
    }
    group.finish();
}

fn bench_c7_bypass(c: &mut Criterion) {
    let mut group = c.benchmark_group("c7_bypass");
    {
        let size = 1024 * 1024usize;
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::new("same_node", size / 1024), |b| {
            b.iter(|| {
                let (deliveries, _) = bench_file_bypass(size, 6);
                assert_eq!(deliveries, 1);
            })
        });
    }
    group.finish();
}

fn bench_mftp_micro(c: &mut Criterion) {
    // Protocol-level chunk pump: sender → receiver, lossless, no containers.
    let mut group = c.benchmark_group("c4_mftp_machine");
    {
        let size = 256 * 1024usize;
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::new("pump", size / 1024), |b| {
            let data: Vec<u8> = (0..size).map(|i| (i % 249) as u8).collect();
            b.iter(|| {
                let mut tx = FileSender::new(
                    TransferId(1),
                    Name::new("bench").unwrap(),
                    1,
                    Bytes::from(data.clone()),
                    1024,
                    GroupId(1),
                )
                .unwrap();
                tx.on_subscribe(NodeId(2));
                let (mut rx, _) =
                    FileReceiver::from_announce(&tx.announce(), NodeId(2), RevisionPolicy::Restart)
                        .unwrap();
                loop {
                    let chunks = tx.next_chunks(64);
                    if chunks.is_empty() {
                        break;
                    }
                    for m in chunks {
                        if let Message::FileChunk { revision, index, payload, .. } = m {
                            rx.on_chunk(revision, index, &payload);
                        }
                    }
                }
                assert!(rx.is_complete());
                rx.into_data().len()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_c4_scenarios, bench_c7_bypass, bench_mftp_micro
}
criterion_main!(benches);
