//! C3: reliable delivery machinery — middleware ARQ vs simulated TCP,
//! plus raw ARQ window micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use marea_bench::{bench_arq_under_loss, bench_tcp_under_loss};
use marea_protocol::arq::{ArqConfig, ArqReceiver, ArqSender};
use marea_protocol::Micros;

fn bench_c3_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_arq_vs_tcp");
    for loss_pm in [0u32, 50] {
        let loss = f64::from(loss_pm) / 1000.0;
        group.throughput(Throughput::Elements(30));
        group.bench_function(BenchmarkId::new("arq", format!("loss{loss_pm}pm")), |b| {
            b.iter(|| {
                let r = bench_arq_under_loss(loss, 30, 64, 5_000, 4);
                assert_eq!(r.latency.count, 30);
                r
            })
        });
        group.bench_function(BenchmarkId::new("tcpish", format!("loss{loss_pm}pm")), |b| {
            b.iter(|| {
                let r = bench_tcp_under_loss(loss, 30, 64, 5_000, 4);
                assert_eq!(r.latency.count, 30);
                r
            })
        });
    }
    group.finish();
}

fn bench_arq_micro(c: &mut Criterion) {
    // Pure window machinery: send/deliver/ack 64 messages, no network.
    c.bench_function("c3_arq_window_cycle_64", |b| {
        b.iter(|| {
            let mut tx = ArqSender::new(0, ArqConfig::default());
            let mut rx = ArqReceiver::new(0, 256);
            let payload = Bytes::from_static(&[7u8; 64]);
            let mut delivered = 0;
            for _ in 0..64 {
                let msg = tx.send(payload.clone(), Micros::ZERO).unwrap();
                if let marea_protocol::Message::RelData { seq, payload, .. } = msg {
                    delivered += rx.on_data(seq, payload).len();
                }
            }
            if let marea_protocol::Message::RelAck { cumulative, sack, .. } = rx.make_ack() {
                tx.on_ack(cumulative, sack);
            }
            assert_eq!(delivered, 64);
            tx.inflight_len()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_c3_scenarios, bench_arq_micro
}
criterion_main!(benches);
