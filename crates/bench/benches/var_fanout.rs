//! C2: variable fan-out scenarios — multicast vs unicast distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use marea_bench::bench_var_fanout;

fn bench_c2(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_var_fanout");
    for subs in [2u32, 8] {
        group.throughput(Throughput::Elements(50));
        group.bench_function(BenchmarkId::new("multicast", subs), |b| {
            b.iter(|| {
                let r = bench_var_fanout(subs, 50, true, 3);
                assert!(r.delivered_samples > 0);
                r
            })
        });
        group.bench_function(BenchmarkId::new("unicast", subs), |b| {
            b.iter(|| {
                let r = bench_var_fanout(subs, 50, false, 3);
                assert!(r.delivered_samples > 0);
                r
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_c2
}
criterion_main!(benches);
