//! C1 + F2: wall-clock cost of running the event-vs-RPC latency scenarios
//! (the virtual-time *results* are printed by the `experiments` binary;
//! these benches measure how much host CPU the middleware burns to
//! simulate them — i.e. the implementation's processing cost per
//! delivered message).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use marea_bench::{bench_event_latency, bench_local_vs_remote_event, bench_rpc_rtt};

fn bench_c1(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_event_vs_rpc");
    for payload in [8usize, 512] {
        group.throughput(Throughput::Elements(20));
        group.bench_function(BenchmarkId::new("event_scenario", payload), |b| {
            b.iter(|| {
                let r = bench_event_latency(payload, 20, 0.0, 1);
                assert_eq!(r.count, 20);
                r
            })
        });
        group.bench_function(BenchmarkId::new("rpc_scenario", payload), |b| {
            b.iter(|| {
                let r = bench_rpc_rtt(payload, 20, 0.0, 1);
                assert_eq!(r.count, 20);
                r
            })
        });
    }
    group.finish();
}

fn bench_f2(c: &mut Criterion) {
    c.bench_function("f2_local_vs_remote_scenario", |b| {
        b.iter(|| bench_local_vs_remote_event(20, 2))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_c1, bench_f2
}
criterion_main!(benches);
