//! Rate-controlled workload engine behind the `marea-loadtest` bin.
//!
//! Modeled on the openlink-loadtest shape (ROADMAP open item 2): a
//! workload enum, N publisher/subscriber pairs, a per-source target
//! rate, a warmup/settle window followed by fixed measurement windows,
//! and a reporter quoting achieved rate, goodput and p50/p99/p999
//! latency per window. Everything runs on the deterministic
//! [`SimHarness`] with the [`MetricsSampler`] enabled, so the same
//! `(workload, config, seed)` tuple reproduces the report — and its
//! JSON rendering — byte for byte. The checked-in
//! `BENCH_loadtest_<workload>.json` files are exactly these reports;
//! CI regenerates them and fails on drift (see
//! [`compare_overall`]).
//!
//! [`MetricsSampler`]: marea_core::metrics::MetricsSampler

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use marea_core::metrics::{LatencySummary, MetricsConfig};
use marea_core::trace::LatencyHistogram;
use marea_core::{
    ContainerConfig, EventPort, EventQos, FileEvent, FnPort, NodeId, ProtoDuration, Service,
    ServiceContext, ServiceDescriptor, SimHarness, TimerId, TraceConfig, VarPort, VarQos,
};
use marea_netsim::NetConfig;
use marea_presentation::{Name, Value};

use super::payload_of;

/// Container tick cadence every loadtest run uses (µs).
pub const TICK_US: u64 = 500;

/// Default regression threshold: overall p99 may rise at most 25%.
pub const P99_RISE_PCT: u64 = 25;

/// Default regression threshold: overall goodput may drop at most 10%.
pub const GOODPUT_DROP_PCT: u64 = 10;

/// The workload shapes `marea-loadtest` can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One publisher fanning a periodic variable out to N subscribers.
    VarFanout,
    /// N reliable-event pairs, each flooding at the target rate.
    EventFlood,
    /// N caller/echo pairs issuing RPCs at the target rate.
    RpcEcho,
    /// One file publisher bumping revisions to N subscribers (MFTP).
    FileMulticast,
    /// Vars + events + RPC mixed across the pairs (i % 3 picks a role).
    MixedMission,
}

impl Workload {
    /// Every workload, in the canonical order.
    pub const ALL: [Workload; 5] = [
        Workload::VarFanout,
        Workload::EventFlood,
        Workload::RpcEcho,
        Workload::FileMulticast,
        Workload::MixedMission,
    ];

    /// Stable snake_case name (file names, CLI argument, JSON field).
    pub fn name(self) -> &'static str {
        match self {
            Workload::VarFanout => "var_fanout",
            Workload::EventFlood => "event_flood",
            Workload::RpcEcho => "rpc_echo",
            Workload::FileMulticast => "file_multicast",
            Workload::MixedMission => "mixed_mission",
        }
    }

    /// Parses a CLI name back into a workload.
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::ALL.into_iter().find(|w| w.name() == s)
    }
}

/// One loadtest run's full parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadtestConfig {
    /// The workload shape.
    pub workload: Workload,
    /// Publisher/subscriber pairs (for fan-out shapes: subscribers).
    pub pairs: u32,
    /// Per-source target rate in Hz (timer-driven; quantized to the
    /// tick cadence).
    pub rate_hz: u64,
    /// Payload bytes per sample/event/call (file size for
    /// [`Workload::FileMulticast`]).
    pub payload_bytes: usize,
    /// Warmup/settle time before the first measurement window (ms).
    pub warmup_ms: u64,
    /// Length of one measurement window (ms).
    pub window_ms: u64,
    /// Number of measurement windows.
    pub windows: u32,
    /// Metrics-sampler period (ms); 0 disables the sampler (the
    /// overhead gate's baseline leg).
    pub sample_period_ms: u64,
    /// Netsim seed; same seed ⇒ byte-identical report.
    pub seed: u64,
}

impl LoadtestConfig {
    /// The checked-in baseline parameters of `workload` — what
    /// `BENCH_loadtest_<workload>.json` is generated from.
    pub fn baseline(workload: Workload) -> LoadtestConfig {
        let base = LoadtestConfig {
            workload,
            pairs: 4,
            rate_hz: 200,
            payload_bytes: 64,
            warmup_ms: 300,
            window_ms: 500,
            windows: 3,
            sample_period_ms: 125,
            seed: 17,
        };
        match workload {
            Workload::VarFanout => LoadtestConfig { pairs: 8, ..base },
            Workload::EventFlood => base,
            Workload::RpcEcho => LoadtestConfig { rate_hz: 100, ..base },
            Workload::FileMulticast => LoadtestConfig { rate_hz: 20, payload_bytes: 2048, ..base },
            Workload::MixedMission => LoadtestConfig { pairs: 6, rate_hz: 100, ..base },
        }
    }

    fn source_period(&self) -> ProtoDuration {
        ProtoDuration::from_micros((1_000_000 / self.rate_hz.max(1)).max(TICK_US))
    }
}

/// One measurement window's results (index 0 is the all-windows
/// aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowReport {
    /// 1-based window index; 0 for the overall aggregate.
    pub index: u32,
    /// Window start, virtual µs.
    pub start_us: u64,
    /// Window end, virtual µs.
    pub end_us: u64,
    /// Samples/events/calls/files the sources offered in the window.
    pub offered: u64,
    /// Deliveries completed in the window (fleet-wide).
    pub delivered: u64,
    /// Fleet-wide delivery rate: `delivered / window` (Hz).
    pub achieved_hz: u64,
    /// Application goodput: `delivered × payload × 8 / window` (bit/s).
    pub goodput_bps: u64,
    /// Latency of the deliveries in the window (per-node histograms
    /// merged, then bucket-diffed against the window start).
    pub latency: LatencySummary,
}

/// Everything one loadtest run measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadtestReport {
    /// The parameters that produced it.
    pub config: LoadtestConfig,
    /// Per-window results, first window first.
    pub windows: Vec<WindowReport>,
    /// Aggregate over all measurement windows (index 0).
    pub overall: WindowReport,
    /// Metrics-sampler activity during the run (0 when disabled).
    pub metrics_samples: u64,
    /// Node frames the sampler retained.
    pub metrics_frames: u64,
    /// Link frames the sampler retained.
    pub metrics_links: u64,
}

/// Merges per-node latency histograms into the fleet-wide distribution
/// the reporter quotes percentiles from. Count-additive bucket by
/// bucket (asserted by the property test below).
pub fn merge_node_histograms<'a, I>(hists: I) -> LatencyHistogram
where
    I: IntoIterator<Item = &'a LatencyHistogram>,
{
    let mut merged = LatencyHistogram::default();
    for h in hists {
        merged.merge(h);
    }
    merged
}

// ---------------------------------------------------------------------------
// Workload services (rate-controlled, never-ending variants of the
// bench scenario services)
// ---------------------------------------------------------------------------

struct LoadVarPub {
    port: VarPort<Vec<u8>>,
    payload: usize,
    period: ProtoDuration,
}

impl Service for LoadVarPub {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-varpub")
            .provides_var(&self.port, VarQos::periodic(self.period, self.period.saturating_mul(8)))
            .build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(self.period, Some(self.period));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        ctx.publish_to(&self.port, payload_of(self.payload));
    }
}

struct LoadVarSink {
    channel: String,
}

impl Service for LoadVarSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-varsink")
            .subscribe_variable(&self.channel, VarQos::default())
            .build()
    }
}

struct LoadEventPub {
    port: EventPort<Vec<u8>>,
    payload: usize,
    period: ProtoDuration,
}

impl Service for LoadEventPub {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-evpub").provides_event(&self.port).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(self.period, Some(self.period));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        ctx.emit_to(&self.port, payload_of(self.payload));
    }
}

struct LoadEventSink {
    channel: String,
}

impl Service for LoadEventSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-evsink")
            .subscribe_event(&self.channel, EventQos::default())
            .build()
    }
}

struct LoadCaller {
    echo: FnPort<(Vec<u8>,), Vec<u8>>,
    payload: usize,
    period: ProtoDuration,
}

impl Service for LoadCaller {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-caller").requires_fn(&self.echo).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(self.period, Some(self.period));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        // Open loop at the target rate: the RTT histogram is recorded by
        // the container when the reply lands, so no reply tracking here.
        let _ = ctx.call_fn(&self.echo, (payload_of(self.payload),));
    }
}

struct LoadEcho {
    port: FnPort<(Vec<u8>,), Vec<u8>>,
}

impl Service for LoadEcho {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-echo").provides_fn(&self.port).build()
    }
    fn on_call(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _f: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        let (data,) = self.port.decode_args(args).map_err(|e| e.to_string())?;
        Ok(self.port.encode_ret(data))
    }
}

/// Shared publish-time probe: `published_at[revision - 1]` is the
/// virtual µs revision `revision` was published at (file revisions are
/// minted 1-based and sequentially).
type FileProbe = Arc<Mutex<Vec<u64>>>;

/// Per-node completion-latency histograms recorded by the file sinks.
type FileLatencies = Arc<Mutex<BTreeMap<u32, LatencyHistogram>>>;

struct LoadFilePub {
    resource: String,
    size: usize,
    period: ProtoDuration,
    published_at: FileProbe,
}

impl Service for LoadFilePub {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-filepub").file_resource(&self.resource).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(self.period, Some(self.period));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        self.published_at.lock().unwrap().push(ctx.now().as_micros());
        ctx.publish_file(&self.resource, Bytes::from(payload_of(self.size)));
    }
}

struct LoadFileSink {
    resource: String,
    published_at: FileProbe,
    latencies: FileLatencies,
}

impl Service for LoadFileSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("load-filesink").subscribe_file(&self.resource).build()
    }
    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, ev: &FileEvent) {
        if let FileEvent::Received { revision, .. } = ev {
            let stamp = self.published_at.lock().unwrap().get(*revision as usize - 1).copied();
            if let Some(at) = stamp {
                let us = ctx.now().as_micros().saturating_sub(at);
                self.latencies.lock().unwrap().entry(ctx.local_node().0).or_default().record(us);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet assembly and the measurement loop
// ---------------------------------------------------------------------------

struct Fleet {
    h: SimHarness,
    publishers: Vec<NodeId>,
    subscribers: Vec<NodeId>,
    file_latencies: Option<FileLatencies>,
}

fn load_container(name: &str, node: NodeId) -> ContainerConfig {
    let mut cfg = ContainerConfig::new(name, node);
    cfg.trace = TraceConfig::with_capacity(128);
    cfg
}

fn build_fleet(cfg: &LoadtestConfig) -> Fleet {
    let mut h = SimHarness::new(NetConfig::default().with_seed(cfg.seed));
    h.set_tick_us(TICK_US);
    let period = cfg.source_period();
    let mut publishers = Vec::new();
    let mut subscribers = Vec::new();
    let mut file_latencies = None;
    match cfg.workload {
        Workload::VarFanout => {
            h.add_container(load_container("load-pub", NodeId(1)));
            h.add_service(
                NodeId(1),
                Box::new(LoadVarPub {
                    port: VarPort::new("load/var"),
                    payload: cfg.payload_bytes,
                    period,
                }),
            );
            publishers.push(NodeId(1));
            for i in 0..cfg.pairs {
                let node = NodeId(101 + i);
                h.add_container(load_container("load-sub", node));
                h.add_service(node, Box::new(LoadVarSink { channel: "load/var".to_string() }));
                subscribers.push(node);
            }
        }
        Workload::EventFlood => {
            for i in 0..cfg.pairs {
                let (pn, sn) = (NodeId(1 + i), NodeId(101 + i));
                let channel = format!("load/ev{i}");
                h.add_container(load_container("load-pub", pn));
                h.add_service(
                    pn,
                    Box::new(LoadEventPub {
                        port: EventPort::new(&channel),
                        payload: cfg.payload_bytes,
                        period,
                    }),
                );
                h.add_container(load_container("load-sub", sn));
                h.add_service(sn, Box::new(LoadEventSink { channel }));
                publishers.push(pn);
                subscribers.push(sn);
            }
        }
        Workload::RpcEcho => {
            for i in 0..cfg.pairs {
                let (cn, en) = (NodeId(1 + i), NodeId(101 + i));
                let function = format!("load/echo{i}");
                h.add_container(load_container("load-caller", cn));
                h.add_service(
                    cn,
                    Box::new(LoadCaller {
                        echo: FnPort::new(&function),
                        payload: cfg.payload_bytes,
                        period,
                    }),
                );
                h.add_container(load_container("load-echo", en));
                h.add_service(en, Box::new(LoadEcho { port: FnPort::new(&function) }));
                publishers.push(cn);
                subscribers.push(en);
            }
        }
        Workload::FileMulticast => {
            let published_at: FileProbe = Arc::new(Mutex::new(Vec::new()));
            let latencies: FileLatencies = Arc::new(Mutex::new(BTreeMap::new()));
            h.add_container(load_container("load-pub", NodeId(1)));
            h.add_service(
                NodeId(1),
                Box::new(LoadFilePub {
                    resource: "load/file".to_string(),
                    size: cfg.payload_bytes,
                    period,
                    published_at: published_at.clone(),
                }),
            );
            publishers.push(NodeId(1));
            for i in 0..cfg.pairs {
                let node = NodeId(101 + i);
                h.add_container(load_container("load-sub", node));
                h.add_service(
                    node,
                    Box::new(LoadFileSink {
                        resource: "load/file".to_string(),
                        published_at: published_at.clone(),
                        latencies: latencies.clone(),
                    }),
                );
                subscribers.push(node);
            }
            file_latencies = Some(latencies);
        }
        Workload::MixedMission => {
            for i in 0..cfg.pairs {
                let (pn, sn) = (NodeId(1 + i), NodeId(101 + i));
                h.add_container(load_container("load-pub", pn));
                h.add_container(load_container("load-sub", sn));
                match i % 3 {
                    0 => {
                        let channel = format!("load/var{i}");
                        h.add_service(
                            pn,
                            Box::new(LoadVarPub {
                                port: VarPort::new(&channel),
                                payload: cfg.payload_bytes,
                                period,
                            }),
                        );
                        h.add_service(sn, Box::new(LoadVarSink { channel }));
                    }
                    1 => {
                        let channel = format!("load/ev{i}");
                        h.add_service(
                            pn,
                            Box::new(LoadEventPub {
                                port: EventPort::new(&channel),
                                payload: cfg.payload_bytes,
                                period,
                            }),
                        );
                        h.add_service(sn, Box::new(LoadEventSink { channel }));
                    }
                    _ => {
                        let function = format!("load/echo{i}");
                        h.add_service(
                            pn,
                            Box::new(LoadCaller {
                                echo: FnPort::new(&function),
                                payload: cfg.payload_bytes,
                                period,
                            }),
                        );
                        h.add_service(sn, Box::new(LoadEcho { port: FnPort::new(&function) }));
                    }
                }
                publishers.push(pn);
                subscribers.push(sn);
            }
        }
    }
    if cfg.sample_period_ms > 0 {
        h.enable_metrics(MetricsConfig {
            period: ProtoDuration::from_millis(cfg.sample_period_ms),
            capacity: 16 * 1024,
        });
    }
    h.start_all();
    Fleet { h, publishers, subscribers, file_latencies }
}

/// Cumulative counters at one instant; windows are snapshot deltas.
#[derive(Clone, Copy, Default)]
struct Snap {
    offered: u64,
    delivered: u64,
    hist: LatencyHistogram,
}

fn stats_of(fleet: &Fleet, node: NodeId) -> marea_core::ContainerStats {
    fleet.h.container(node).map(|c| c.stats()).unwrap_or_default()
}

fn snap(fleet: &Fleet, workload: Workload) -> Snap {
    let mut s = Snap::default();
    match workload {
        Workload::VarFanout => {
            for &n in &fleet.publishers {
                s.offered += stats_of(fleet, n).vars_published;
            }
            for &n in &fleet.subscribers {
                let st = stats_of(fleet, n);
                s.delivered += st.var_samples_delivered;
                s.hist.merge(&st.publish_to_deliver);
            }
        }
        Workload::EventFlood => {
            for &n in &fleet.publishers {
                s.offered += stats_of(fleet, n).events_published;
            }
            for &n in &fleet.subscribers {
                let st = stats_of(fleet, n);
                s.delivered += st.events_delivered;
                s.hist.merge(&st.event_to_deliver);
            }
        }
        Workload::RpcEcho => {
            for &n in &fleet.publishers {
                let st = stats_of(fleet, n);
                s.offered += st.calls_made;
                s.delivered += st.call_rtt.count();
                s.hist.merge(&st.call_rtt);
            }
        }
        Workload::FileMulticast => {
            for &n in &fleet.publishers {
                s.offered += stats_of(fleet, n).files_published;
            }
            for &n in &fleet.subscribers {
                s.delivered += stats_of(fleet, n).files_received;
            }
            if let Some(lat) = &fleet.file_latencies {
                let map = lat.lock().unwrap();
                s.hist = merge_node_histograms(map.values());
            }
        }
        Workload::MixedMission => {
            for &n in fleet.publishers.iter().chain(&fleet.subscribers) {
                let st = stats_of(fleet, n);
                s.offered += st.vars_published + st.events_published + st.calls_made;
                s.delivered += st.var_samples_delivered + st.events_delivered + st.call_rtt.count();
                s.hist.merge(&st.publish_to_deliver);
                s.hist.merge(&st.event_to_deliver);
                s.hist.merge(&st.call_rtt);
            }
        }
    }
    s
}

fn window_report(
    index: u32,
    start_us: u64,
    end_us: u64,
    before: &Snap,
    after: &Snap,
    payload_bytes: usize,
) -> WindowReport {
    let dur_us = end_us.saturating_sub(start_us).max(1);
    let offered = after.offered.saturating_sub(before.offered);
    let delivered = after.delivered.saturating_sub(before.delivered);
    let hist = after.hist.saturating_diff(&before.hist);
    let achieved_hz = delivered.saturating_mul(1_000_000) / dur_us;
    let goodput_bps =
        (delivered as u128 * payload_bytes as u128 * 8 * 1_000_000 / dur_us as u128) as u64;
    WindowReport {
        index,
        start_us,
        end_us,
        offered,
        delivered,
        achieved_hz,
        goodput_bps,
        latency: LatencySummary::of(&hist),
    }
}

/// Runs one loadtest end to end: build the fleet, warm up, measure
/// `windows` windows, aggregate. Deterministic per config.
pub fn run_loadtest(cfg: &LoadtestConfig) -> LoadtestReport {
    let mut fleet = build_fleet(cfg);
    fleet.h.run_for_millis(cfg.warmup_ms);
    let mut snaps = vec![snap(&fleet, cfg.workload)];
    let mut marks = vec![fleet.h.now().as_micros()];
    for _ in 0..cfg.windows {
        fleet.h.run_for_millis(cfg.window_ms);
        snaps.push(snap(&fleet, cfg.workload));
        marks.push(fleet.h.now().as_micros());
    }
    let windows: Vec<WindowReport> = (1..snaps.len())
        .map(|i| {
            window_report(
                i as u32,
                marks[i - 1],
                marks[i],
                &snaps[i - 1],
                &snaps[i],
                cfg.payload_bytes,
            )
        })
        .collect();
    let last = snaps.len() - 1;
    let overall =
        window_report(0, marks[0], marks[last], &snaps[0], &snaps[last], cfg.payload_bytes);
    let (metrics_samples, metrics_frames, metrics_links) = match fleet.h.metrics() {
        Some(m) => (
            m.samples(),
            m.frames().count() as u64 + m.evicted_frames(),
            m.link_frames().count() as u64 + m.evicted_links(),
        ),
        None => (0, 0, 0),
    };
    LoadtestReport {
        config: *cfg,
        windows,
        overall,
        metrics_samples,
        metrics_frames,
        metrics_links,
    }
}

// ---------------------------------------------------------------------------
// Reporting and the regression gate
// ---------------------------------------------------------------------------

fn opt_json(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => {
            let _ = write!(out, "{x}");
        }
        None => out.push_str("null"),
    }
}

fn window_json(out: &mut String, w: &WindowReport) {
    let _ = write!(
        out,
        "{{\"index\": {}, \"start_us\": {}, \"end_us\": {}, \"offered\": {}, \"delivered\": {}, \
         \"achieved_hz\": {}, \"goodput_bps\": {}, \"count\": {}, \"p50_us\": ",
        w.index,
        w.start_us,
        w.end_us,
        w.offered,
        w.delivered,
        w.achieved_hz,
        w.goodput_bps,
        w.latency.count,
    );
    opt_json(out, w.latency.p50_us);
    out.push_str(", \"p99_us\": ");
    opt_json(out, w.latency.p99_us);
    out.push_str(", \"p999_us\": ");
    opt_json(out, w.latency.p999_us);
    out.push('}');
}

/// Renders the report as the byte-deterministic JSON document checked
/// in as `BENCH_loadtest_<workload>.json`.
pub fn report_json(r: &LoadtestReport) -> String {
    let c = &r.config;
    let mut out = String::with_capacity(2048);
    let _ = write!(
        out,
        "{{\n  \"workload\": \"{}\",\n  \"config\": {{\"pairs\": {}, \"rate_hz\": {}, \
         \"payload_bytes\": {}, \"warmup_ms\": {}, \"window_ms\": {}, \"windows\": {}, \
         \"sample_period_ms\": {}, \"seed\": {}, \"tick_us\": {}}},\n  \"windows\": [\n",
        c.workload.name(),
        c.pairs,
        c.rate_hz,
        c.payload_bytes,
        c.warmup_ms,
        c.window_ms,
        c.windows,
        c.sample_period_ms,
        c.seed,
        TICK_US,
    );
    for (i, w) in r.windows.iter().enumerate() {
        out.push_str("    ");
        window_json(&mut out, w);
        if i + 1 < r.windows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"overall\": ");
    window_json(&mut out, &r.overall);
    let _ = write!(
        out,
        ",\n  \"metrics\": {{\"samples\": {}, \"frames\": {}, \"links\": {}}}\n}}\n",
        r.metrics_samples, r.metrics_frames, r.metrics_links,
    );
    out
}

/// Extracts the overall section's value of `key` from a report document
/// (the overall object is the last place the window keys appear, so a
/// reverse search finds it without a JSON parser). `None` for `null`
/// or a missing key.
pub fn overall_metric(doc: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = doc.rfind(&tag)?;
    let rest = &doc[at + tag.len()..];
    if rest.starts_with("null") {
        return None;
    }
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The perf-regression gate: compares a fresh report against the
/// checked-in baseline and fails on gross drift — overall p99 rising
/// more than `p99_rise_pct` percent, or overall goodput dropping more
/// than `goodput_drop_pct` percent. A metric *presence* mismatch in
/// either direction (baseline has it, fresh doesn't, or vice versa)
/// is always a failure: a gate that compares an absent number against
/// a present one has nothing to gate on, and silently passing is how
/// regressions hide. Only `(None, None)` — the metric absent on both
/// sides — is ungated. Returns a human-readable summary on pass, the
/// list of violations on fail.
pub fn compare_overall(
    baseline: &str,
    fresh: &str,
    p99_rise_pct: u64,
    goodput_drop_pct: u64,
) -> Result<String, Vec<String>> {
    let mut failures = Vec::new();
    let base_good = overall_metric(baseline, "goodput_bps");
    let fresh_good = overall_metric(fresh, "goodput_bps");
    match (base_good, fresh_good) {
        (Some(b), Some(f)) if b > 0 && f * 100 < b * (100 - goodput_drop_pct.min(100)) => {
            failures.push(format!(
                "goodput dropped more than {goodput_drop_pct}%: baseline {b} bps, fresh {f} bps"
            ));
        }
        (Some(b), None) => {
            failures.push(format!("goodput vanished: baseline {b} bps, fresh report has none"));
        }
        (None, Some(f)) => {
            failures.push(format!(
                "goodput appeared: baseline has none, fresh reports {f} bps — \
                 baselines must be regenerated, not grown in place"
            ));
        }
        _ => {}
    }
    let base_p99 = overall_metric(baseline, "p99_us");
    let fresh_p99 = overall_metric(fresh, "p99_us");
    match (base_p99, fresh_p99) {
        (Some(b), Some(f)) if b > 0 && f * 100 > b * (100 + p99_rise_pct) => {
            failures
                .push(format!("p99 rose more than {p99_rise_pct}%: baseline {b}µs, fresh {f}µs"));
        }
        (Some(b), None) => {
            failures.push(format!("latency samples vanished: baseline p99 {b}µs, fresh has none"));
        }
        (None, Some(f)) => {
            failures.push(format!(
                "latency samples appeared: baseline p99 has none, fresh reports {f}µs — \
                 baselines must be regenerated, not grown in place"
            ));
        }
        _ => {}
    }
    if failures.is_empty() {
        Ok(format!(
            "goodput {} -> {} bps, p99 {} -> {} µs within thresholds (p99 +{p99_rise_pct}%, goodput -{goodput_drop_pct}%)",
            base_good.unwrap_or(0),
            fresh_good.unwrap_or(0),
            base_p99.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
            fresh_p99.map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
        ))
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(workload: Workload) -> LoadtestConfig {
        LoadtestConfig {
            workload,
            pairs: 2,
            rate_hz: 200,
            payload_bytes: 64,
            warmup_ms: 200,
            window_ms: 200,
            windows: 2,
            sample_period_ms: 50,
            seed: 23,
        }
    }

    #[test]
    fn loadtest_reports_are_byte_deterministic_per_seed() {
        for workload in [Workload::EventFlood, Workload::RpcEcho] {
            let cfg = quick(workload);
            let a = report_json(&run_loadtest(&cfg));
            let b = report_json(&run_loadtest(&cfg));
            assert_eq!(a, b, "{}: same seed must reproduce the report bytes", workload.name());
            let other = report_json(&run_loadtest(&LoadtestConfig { seed: 24, ..cfg }));
            assert!(
                !other.is_empty() && other.contains(workload.name()),
                "other-seed run still renders"
            );
        }
    }

    #[test]
    fn loadtest_delivers_and_measures_under_every_workload() {
        for workload in Workload::ALL {
            let cfg = LoadtestConfig {
                // File transfers need a slower source to complete.
                rate_hz: if workload == Workload::FileMulticast { 20 } else { 200 },
                payload_bytes: if workload == Workload::FileMulticast { 1024 } else { 64 },
                warmup_ms: 400,
                ..quick(workload)
            };
            let r = run_loadtest(&cfg);
            assert_eq!(r.windows.len(), 2, "{}", workload.name());
            assert!(r.overall.offered > 0, "{}: sources ran: {r:?}", workload.name());
            assert!(r.overall.delivered > 0, "{}: deliveries measured: {r:?}", workload.name());
            assert!(
                r.overall.latency.count > 0,
                "{}: latency histogram populated: {r:?}",
                workload.name()
            );
            assert!(r.metrics_samples > 0, "{}: sampler ran: {r:?}", workload.name());
            assert!(r.overall.goodput_bps > 0, "{}: goodput: {r:?}", workload.name());
        }
    }

    #[test]
    fn reporter_merge_preserves_count_additivity_and_quantile_monotonicity() {
        // Property sweep over deterministic pseudo-random per-node
        // histograms — the exact merge the loadtest reporter performs.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for round in 0..24 {
            let nodes = 2 + (round % 7) as usize;
            let mut per_node = Vec::new();
            for _ in 0..nodes {
                let mut h = LatencyHistogram::default();
                let n = 1 + next() % 400;
                for _ in 0..n {
                    let shift = (next() % 40) as u32;
                    h.record(next() >> shift);
                }
                per_node.push(h);
            }
            let merged = merge_node_histograms(per_node.iter());
            // Count additivity, total and bucket by bucket.
            let total: u64 = per_node.iter().map(LatencyHistogram::count).sum();
            assert_eq!(merged.count(), total, "round {round}: count additivity");
            for b in 0..marea_core::trace::HISTOGRAM_BUCKETS {
                let sum: u64 = per_node.iter().map(|h| h.buckets()[b]).sum();
                assert_eq!(merged.buckets()[b], sum, "round {round} bucket {b}");
            }
            // Quantile monotonicity on the merged distribution …
            let (p50, p99, p999) =
                (merged.p50_us().unwrap(), merged.p99_us().unwrap(), merged.p999_us().unwrap());
            assert!(p50 <= p99 && p99 <= p999, "round {round}: {p50} {p99} {p999}");
            // … and the merged quantiles bracket the per-node extremes:
            // no node's p50 floor is above the merged p999, and the
            // merged p999 never exceeds the largest per-node p999.
            let max_p999 = per_node.iter().filter_map(LatencyHistogram::p999_us).max().unwrap();
            assert!(p999 <= max_p999, "round {round}: merged p999 {p999} > max node {max_p999}");
            let min_p50 = per_node.iter().filter_map(LatencyHistogram::p50_us).min().unwrap();
            assert!(p50 >= min_p50, "round {round}: merged p50 {p50} < min node {min_p50}");
        }
    }

    #[test]
    fn regression_gate_trips_on_gross_drift_only() {
        let doc = |goodput: u64, p99: u64| {
            format!(
                "{{\n  \"overall\": {{\"goodput_bps\": {goodput}, \"count\": 5, \"p99_us\": {p99}}}\n}}\n"
            )
        };
        // Identical: pass.
        assert!(compare_overall(&doc(100_000, 2047), &doc(100_000, 2047), 25, 10).is_ok());
        // 5% goodput dip, p99 flat: pass.
        assert!(compare_overall(&doc(100_000, 2047), &doc(95_000, 2047), 25, 10).is_ok());
        // 20% goodput dip: fail.
        let err = compare_overall(&doc(100_000, 2047), &doc(80_000, 2047), 25, 10).unwrap_err();
        assert!(err[0].contains("goodput"), "{err:?}");
        // p99 doubled: fail.
        let err = compare_overall(&doc(100_000, 2047), &doc(100_000, 4095), 25, 10).unwrap_err();
        assert!(err[0].contains("p99"), "{err:?}");
        // Latency vanished: fail.
        let gone =
            "{\n  \"overall\": {\"goodput_bps\": 100000, \"count\": 0, \"p99_us\": null}\n}\n";
        let err = compare_overall(&doc(100_000, 2047), gone, 25, 10).unwrap_err();
        assert!(err[0].contains("vanished"), "{err:?}");
        // Null baseline p99: only goodput is gated.
        assert!(compare_overall(gone, gone, 25, 10).is_ok());
    }

    #[test]
    fn regression_gate_fails_on_metric_presence_mismatch() {
        // A report where both metrics exist, one where both are null,
        // and one where only goodput exists (p99 null).
        let full =
            "{\n  \"overall\": {\"goodput_bps\": 100000, \"count\": 5, \"p99_us\": 2047}\n}\n";
        let empty =
            "{\n  \"overall\": {\"goodput_bps\": null, \"count\": 0, \"p99_us\": null}\n}\n";
        let good_only =
            "{\n  \"overall\": {\"goodput_bps\": 100000, \"count\": 0, \"p99_us\": null}\n}\n";
        // Baseline has both, fresh has neither: both metrics vanished.
        let err = compare_overall(full, empty, 25, 10).unwrap_err();
        assert_eq!(err.len(), 2, "{err:?}");
        assert!(err[0].contains("goodput vanished"), "{err:?}");
        assert!(err[1].contains("latency samples vanished"), "{err:?}");
        // Baseline has neither, fresh has both: both metrics appeared.
        let err = compare_overall(empty, full, 25, 10).unwrap_err();
        assert_eq!(err.len(), 2, "{err:?}");
        assert!(err[0].contains("goodput appeared"), "{err:?}");
        assert!(err[1].contains("latency samples appeared"), "{err:?}");
        // One-sided presence in one metric only.
        let err = compare_overall(good_only, full, 25, 10).unwrap_err();
        assert_eq!(err.len(), 1, "{err:?}");
        assert!(err[0].contains("latency samples appeared"), "{err:?}");
        let err = compare_overall(full, good_only, 25, 10).unwrap_err();
        assert_eq!(err.len(), 1, "{err:?}");
        assert!(err[0].contains("latency samples vanished"), "{err:?}");
        // Zero baseline goodput vanishing is still a presence mismatch.
        let zero_good =
            "{\n  \"overall\": {\"goodput_bps\": 0, \"count\": 0, \"p99_us\": null}\n}\n";
        let err = compare_overall(zero_good, empty, 25, 10).unwrap_err();
        assert_eq!(err.len(), 1, "{err:?}");
        assert!(err[0].contains("goodput vanished"), "{err:?}");
        // Absent on both sides stays ungated.
        assert!(compare_overall(empty, empty, 25, 10).is_ok());
    }

    #[test]
    fn overall_metric_reads_the_last_occurrence() {
        let doc = "{\n  \"windows\": [\n    {\"goodput_bps\": 1, \"p99_us\": 10}\n  ],\n  \
                   \"overall\": {\"goodput_bps\": 7, \"p99_us\": null}\n}\n";
        assert_eq!(overall_metric(doc, "goodput_bps"), Some(7));
        assert_eq!(overall_metric(doc, "p99_us"), None);
        assert_eq!(overall_metric(doc, "missing"), None);
    }

    /// Metrics-sampler wall-clock gate, C10-style: sampling at an
    /// aggressive 2 ms period must cost ≤5% against the sampler-off
    /// leg of the same flood. Wall-clock, so ignored by default; CI
    /// runs it in release.
    #[test]
    #[ignore = "wall-clock measurement; CI runs it in release"]
    fn metrics_overhead_stays_within_five_percent() {
        let run_cfg = |sampled: bool, rep: u64| LoadtestConfig {
            workload: Workload::EventFlood,
            pairs: 4,
            rate_hz: 1000,
            payload_bytes: 64,
            warmup_ms: 100,
            window_ms: 400,
            windows: 4,
            sample_period_ms: if sampled { 2 } else { 0 },
            seed: 900 + rep,
        };
        let time_once = |sampled: bool, rep: u64| {
            // marea-lint: allow(D2): wall-clock gate — measuring the real cost of sampling is the point
            let t0 = std::time::Instant::now();
            let _ = run_loadtest(&run_cfg(sampled, rep));
            t0.elapsed()
        };
        // Warm-up, then adjacent off/on pairs; gate on the cleanest
        // pair (ambient noise only inflates ratios at random, a real
        // regression inflates every pair).
        let _ = (time_once(false, 0), time_once(true, 0));
        let mut pairs = Vec::new();
        for rep in 1..=8 {
            let off = time_once(false, rep);
            let on = time_once(true, rep);
            pairs.push((on.as_secs_f64() / off.as_secs_f64().max(1e-9), on, off));
        }
        let (ratio, on, off) =
            pairs.iter().cloned().min_by(|a, b| a.0.total_cmp(&b.0)).expect("8 pairs");
        let overhead = ratio - 1.0;
        println!(
            "metrics gate: best-pair sampling overhead {:.2}% (sampled {on:?}, unsampled {off:?})",
            overhead * 100.0
        );
        assert!(
            overhead <= 0.05,
            "metrics gate: sampling overhead {:.2}% exceeds 5% in every pair",
            overhead * 100.0
        );
    }
}
