//! # marea-bench — scenario library for every experiment
//!
//! Each function here reproduces one figure or measurable claim of the
//! paper (see DESIGN.md §4 for the full index) on the deterministic
//! simulated LAN and returns the quantities the paper argues about:
//! virtual-time latencies, wire bytes, datagram counts, repair rounds.
//!
//! Two consumers use this library:
//!
//! * the `experiments` binary prints paper-style tables (deterministic,
//!   seed-driven — these are the numbers EXPERIMENTS.md records);
//! * the Criterion benches in `benches/` measure the *wall-clock* cost of
//!   the same scenarios (how expensive the middleware implementation is on
//!   the host CPU).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadtest;

use std::sync::{Arc, Mutex};

use bytes::Bytes;

use marea_core::{
    CallError, CallHandle, CallOptions, ContainerConfig, EventPort, EventQos, FileEvent, FnPort,
    Micros, NodeId, ProtoDuration, SchedulerKind, Service, ServiceContext, ServiceDescriptor,
    SimHarness, TimerId, TraceConfig, TypedCallHandle, VarDistribution, VarPort, VarQos,
};
use marea_netsim::tcpish::{TcpishConfig, TcpishEndpoint};
use marea_netsim::{Destination, LinkConfig, NetConfig, SimNet};
use marea_presentation::{Name, Value};
use marea_protocol::arq::{ArqConfig, ArqReceiver, ArqSender};
use marea_protocol::fec::{FecRate, FecReceiver, FecSender};
use marea_protocol::Message;

/// Latency distribution summary (virtual time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyResult {
    /// Samples measured.
    pub count: u64,
    /// Mean latency in µs.
    pub mean_us: f64,
    /// Maximum latency in µs.
    pub max_us: u64,
}

impl LatencyResult {
    fn from_samples(samples: &[u64]) -> LatencyResult {
        let count = samples.len() as u64;
        let mean_us = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        LatencyResult { count, mean_us, max_us: samples.iter().copied().max().unwrap_or(0) }
    }
}

fn lossy_net(seed: u64, loss: f64) -> NetConfig {
    NetConfig::default().with_seed(seed).with_default_link(LinkConfig::default().with_loss(loss))
}

fn payload_of(bytes: usize) -> Vec<u8> {
    vec![0xA5; bytes]
}

// Shared bench vocabulary: one constructor per name, used by both sides
// of each contract (the same pattern as `marea_services::names`).
fn echo_port() -> FnPort<(Vec<u8>,), Vec<u8>> {
    FnPort::new("bench/echo")
}

fn who_port() -> FnPort<(), u32> {
    FnPort::new("bench/who")
}

// ---------------------------------------------------------------------------
// C1: event latency vs remote-invocation round trip
// ---------------------------------------------------------------------------

struct EventBlaster {
    payload: usize,
    remaining: u32,
    port: EventPort<Vec<u8>>,
}

impl EventBlaster {
    fn new(payload: usize, remaining: u32) -> Self {
        EventBlaster { payload, remaining, port: EventPort::new("bench/ev") }
    }
}

impl Service for EventBlaster {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("blaster").provides_event(&self.port).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(2), Some(ProtoDuration::from_millis(2)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.emit_to(&self.port, payload_of(self.payload));
        }
    }
}

struct EventSink;

impl Service for EventSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("sink").subscribe_event("bench/ev", EventQos::default()).build()
    }
}

/// C1a: one-way event latency, publisher on node 1 → subscriber on node 2.
pub fn bench_event_latency(payload_bytes: usize, n: u32, loss: f64, seed: u64) -> LatencyResult {
    let mut h = SimHarness::new(lossy_net(seed, loss));
    h.set_tick_us(100);
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    h.add_container(ContainerConfig::new("sub", NodeId(2)));
    h.add_service(NodeId(1), Box::new(EventBlaster::new(payload_bytes, n)));
    h.add_service(NodeId(2), Box::new(EventSink));
    h.start_all();
    let budget_ms = 200 + n as u64 * 4;
    let mut waited = 0;
    while waited < budget_ms {
        h.run_for_millis(10);
        waited += 10;
        if h.container(NodeId(2)).unwrap().stats().events_delivered >= u64::from(n) {
            break;
        }
    }
    let s = h.container(NodeId(2)).unwrap().stats();
    LatencyResult {
        count: s.events_delivered,
        mean_us: s.event_latency_mean_us().unwrap_or(0.0),
        max_us: s.event_latency_max_us,
    }
}

struct RpcCaller {
    payload: usize,
    remaining: u32,
    inflight: Option<(TypedCallHandle<Vec<u8>>, Micros)>,
    rtts: Arc<Mutex<Vec<u64>>>,
    echo: FnPort<(Vec<u8>,), Vec<u8>>,
}

impl RpcCaller {
    fn new(payload: usize, remaining: u32, rtts: Arc<Mutex<Vec<u64>>>) -> Self {
        RpcCaller { payload, remaining, inflight: None, rtts, echo: echo_port() }
    }
}

impl Service for RpcCaller {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("caller").requires_fn(&self.echo).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(2), Some(ProtoDuration::from_millis(2)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        if self.inflight.is_none() && self.remaining > 0 {
            self.remaining -= 1;
            let h = ctx.call_fn(&self.echo, (payload_of(self.payload),));
            self.inflight = Some((h, ctx.now()));
        }
    }
    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        if let Some((h, sent)) = self.inflight.take() {
            if h.matches(handle) && h.decode(result).is_ok() {
                self.rtts.lock().unwrap().push(ctx.now().saturating_since(sent).as_micros());
            }
        }
    }
}

struct Echo {
    port: FnPort<(Vec<u8>,), Vec<u8>>,
}

impl Echo {
    fn new() -> Self {
        Echo { port: echo_port() }
    }
}

impl Service for Echo {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("echo").provides_fn(&self.port).build()
    }
    fn on_call(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _f: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        let (data,) = self.port.decode_args(args).map_err(|e| e.to_string())?;
        Ok(self.port.encode_ret(data))
    }
}

/// C1b: remote-invocation round trip for the equivalent payload.
pub fn bench_rpc_rtt(payload_bytes: usize, n: u32, loss: f64, seed: u64) -> LatencyResult {
    let mut h = SimHarness::new(lossy_net(seed, loss));
    h.set_tick_us(100);
    h.add_container(ContainerConfig::new("caller", NodeId(1)));
    h.add_container(ContainerConfig::new("server", NodeId(2)));
    let rtts = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(1), Box::new(RpcCaller::new(payload_bytes, n, rtts.clone())));
    h.add_service(NodeId(2), Box::new(Echo::new()));
    h.start_all();
    let budget_ms = 500 + n as u64 * 8;
    let mut waited = 0;
    while waited < budget_ms {
        h.run_for_millis(10);
        waited += 10;
        if rtts.lock().unwrap().len() >= n as usize {
            break;
        }
    }
    let samples = rtts.lock().unwrap().clone();
    LatencyResult::from_samples(&samples)
}

// ---------------------------------------------------------------------------
// C2: multicast vs unicast variable fan-out
// ---------------------------------------------------------------------------

/// Wire cost of distributing one variable stream to `n` subscribers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutResult {
    /// Datagrams the publisher's node emitted.
    pub publisher_datagrams: u64,
    /// Bytes the publisher's node emitted.
    pub publisher_bytes: u64,
    /// Samples delivered summed over all subscribers.
    pub delivered_samples: u64,
}

struct VarBlaster {
    remaining: u32,
    port: VarPort<Vec<u8>>,
}

impl VarBlaster {
    fn new(remaining: u32) -> Self {
        VarBlaster { remaining, port: VarPort::new("bench/var") }
    }
}

impl Service for VarBlaster {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("varpub")
            .provides_var(
                &self.port,
                VarQos::periodic(ProtoDuration::from_millis(5), ProtoDuration::from_millis(50)),
            )
            .build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(5), Some(ProtoDuration::from_millis(5)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.publish_to(&self.port, payload_of(32));
        }
    }
}

struct VarSink;

impl Service for VarSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("varsink")
            .subscribe_variable("bench/var", VarQos::default())
            .build()
    }
}

/// C2: publishes `samples` samples to `subscribers` nodes in either
/// distribution mode and reports the publisher's wire cost.
pub fn bench_var_fanout(
    subscribers: u32,
    samples: u32,
    multicast: bool,
    seed: u64,
) -> FanoutResult {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    let mut cfg = ContainerConfig::new("pub", NodeId(1));
    cfg.var_distribution =
        if multicast { VarDistribution::Multicast } else { VarDistribution::UnicastFanout };
    // Keep control-plane chatter fixed and small relative to data.
    cfg.heartbeat_period = ProtoDuration::from_secs(10);
    cfg.announce_period = ProtoDuration::from_secs(10);
    h.add_container(cfg);
    h.add_service(NodeId(1), Box::new(VarBlaster::new(samples)));
    for i in 0..subscribers {
        let node = NodeId(10 + i);
        let mut cfg = ContainerConfig::new("sub", node);
        cfg.heartbeat_period = ProtoDuration::from_secs(10);
        cfg.announce_period = ProtoDuration::from_secs(10);
        cfg.node_timeout = ProtoDuration::from_secs(60);
        h.add_container(cfg);
        h.add_service(node, Box::new(VarSink));
    }
    // Publishers must not expire subscribers during the long quiet phases.
    h.container_mut(NodeId(1)).unwrap();
    h.start_all();
    // Settle discovery, then reset counters so only steady-state data
    // traffic is measured.
    h.run_for_millis(200);
    h.network().reset_stats();
    h.run_for_millis(u64::from(samples) * 5 + 200);
    let net = h.network().stats();
    let delivered: u64 = (0..subscribers)
        .map(|i| h.container(NodeId(10 + i)).unwrap().stats().var_samples_delivered)
        .sum();
    FanoutResult {
        publisher_datagrams: net.node(1).sent,
        publisher_bytes: net.node(1).sent_bytes,
        delivered_samples: delivered,
    }
}

// ---------------------------------------------------------------------------
// C3: middleware ARQ vs simulated TCP under loss (protocol level)
// ---------------------------------------------------------------------------

/// One side of the C3 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableRunCost {
    /// Per-message delivery latency (virtual time, production → in-order
    /// delivery at the receiver).
    pub latency: LatencyResult,
    /// Virtual µs from first send to last in-order delivery.
    pub completion_us: u64,
    /// Wire bytes sent (both directions, including acks/handshake).
    pub wire_bytes: u64,
    /// Datagrams sent.
    pub datagrams: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
}

impl ReliableRunCost {
    /// Application goodput in bits per virtual second: `payload_bytes`
    /// delivered over the run's completion time. Integer arithmetic so
    /// the persisted JSON is byte-identical across machines.
    pub fn goodput_bps(&self, payload_bytes: u64) -> u64 {
        if self.completion_us == 0 {
            return 0;
        }
        payload_bytes * 8 * 1_000_000 / self.completion_us
    }
}

/// C3a: `n` event-sized messages, one every `interval_us`, over the
/// middleware's ARQ channel. Events are *sporadic* (the paper's use case:
/// "punctual and important facts"), so per-message latency is the metric.
pub fn bench_arq_under_loss(
    loss: f64,
    n: u32,
    msg_len: usize,
    interval_us: u64,
    seed: u64,
) -> ReliableRunCost {
    let net = SimNet::new(lossy_net(seed, loss));
    let a = net.socket(1);
    let b = net.socket(2);
    let mut tx = ArqSender::new(0, ArqConfig::default());
    let mut rx = ArqReceiver::new(0, 256);
    let mut send_times: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = 0u32;
    let mut delivered = 0u32;
    let mut retx = 0u64;
    let mut now_us = 0u64;
    while delivered < n && now_us < 600_000_000 {
        // Produce the next sporadic event when due.
        if sent < n && now_us >= u64::from(sent) * interval_us && tx.can_send() {
            let mut v = vec![0u8; msg_len];
            v[0] = sent as u8;
            send_times.push(now_us);
            sent += 1;
            let msg = tx.send(Bytes::from(v), Micros(now_us)).unwrap();
            let _ = a.send(Destination::Unicast(2), msg.encode_tagged());
        }
        let (retransmits, _failed) = tx.poll(Micros(now_us));
        retx += retransmits.len() as u64;
        for m in retransmits {
            let _ = a.send(Destination::Unicast(2), m.encode_tagged());
        }
        net.advance_to(now_us);
        let mut got_any = false;
        while let Some((_, frame)) = b.recv() {
            if let Ok(Message::RelData { seq, payload, .. }) = Message::decode_tagged(&frame) {
                for _ in rx.on_data(seq, payload) {
                    latencies.push(now_us - send_times[delivered as usize]);
                    delivered += 1;
                }
                got_any = true;
            }
        }
        if got_any {
            let _ = b.send(Destination::Unicast(1), rx.make_ack().encode_tagged());
        }
        while let Some((_, frame)) = a.recv() {
            if let Ok(Message::RelAck { cumulative, sack, .. }) = Message::decode_tagged(&frame) {
                tx.on_ack(cumulative, sack);
            }
        }
        now_us += 1_000;
    }
    let s = net.stats();
    ReliableRunCost {
        latency: LatencyResult::from_samples(&latencies),
        completion_us: now_us,
        wire_bytes: s.bytes_sent,
        datagrams: s.datagrams_sent,
        retransmissions: retx,
    }
}

/// C9: the C3a workload with the adaptive FEC layer threaded below ARQ —
/// `RelData` wrapped into XOR parity groups, erased shards rebuilt from
/// parity instead of waiting out a retransmission timer, the receiver's
/// loss estimate riding back on the acks to drive the code rate. Same
/// tick structure and socket discipline as [`bench_arq_under_loss`] so
/// the two are directly comparable.
pub fn bench_arq_fec_under_loss(
    loss: f64,
    n: u32,
    msg_len: usize,
    interval_us: u64,
    seed: u64,
) -> ReliableRunCost {
    /// Mirror of `ReliableLink`'s partial-group age budget.
    const FLUSH_AFTER_US: u64 = 5_000;
    let net = SimNet::new(lossy_net(seed, loss));
    let a = net.socket(1);
    let b = net.socket(2);
    let mut tx = ArqSender::new(0, ArqConfig::default());
    let mut rx = ArqReceiver::new(0, 256);
    let mut fec_tx = FecSender::new(0, FecRate::Max);
    let mut fec_rx = FecReceiver::new();
    let mut group_opened_us: Option<u64> = None;
    let mut send_times: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = 0u32;
    let mut delivered = 0u32;
    let mut retx = 0u64;
    let mut now_us = 0u64;
    while delivered < n && now_us < 600_000_000 {
        let mut wire: Vec<Message> = Vec::new();
        if sent < n && now_us >= u64::from(sent) * interval_us && tx.can_send() {
            let mut v = vec![0u8; msg_len];
            v[0] = sent as u8;
            send_times.push(now_us);
            sent += 1;
            let msg = tx.send(Bytes::from(v), Micros(now_us)).unwrap();
            fec_tx.wrap(msg, &mut wire);
        }
        let (retransmits, _failed) = tx.poll(Micros(now_us));
        retx += retransmits.len() as u64;
        for m in retransmits {
            fec_tx.wrap(m, &mut wire);
        }
        // Age out a partial group so sporadic traffic still gets repair
        // shards within a bounded window.
        if fec_tx.has_open_group() {
            match group_opened_us {
                Some(opened) if now_us.saturating_sub(opened) >= FLUSH_AFTER_US => {
                    fec_tx.flush(&mut wire);
                    group_opened_us = None;
                }
                Some(_) => {}
                None => group_opened_us = Some(now_us),
            }
        } else {
            group_opened_us = None;
        }
        for m in wire {
            let _ = a.send(Destination::Unicast(2), m.encode_tagged());
        }
        net.advance_to(now_us);
        let mut got_any = false;
        while let Some((_, frame)) = b.recv() {
            if let Ok(Message::FecShard { group, index, k, r, payload, .. }) =
                Message::decode_tagged(&frame)
            {
                let mut inner = Vec::new();
                fec_rx.on_shard(group, index, k, r, &payload, &mut inner);
                for tagged in inner {
                    if let Ok(Message::RelData { seq, payload, .. }) =
                        Message::decode_tagged(&tagged)
                    {
                        for _ in rx.on_data(seq, payload) {
                            latencies.push(now_us - send_times[delivered as usize]);
                            delivered += 1;
                        }
                        got_any = true;
                    }
                }
            }
        }
        if got_any {
            let ack = rx.make_ack_with_loss(fec_rx.loss_permille());
            let _ = b.send(Destination::Unicast(1), ack.encode_tagged());
        }
        while let Some((_, frame)) = a.recv() {
            if let Ok(Message::RelAck { cumulative, sack, loss_permille, .. }) =
                Message::decode_tagged(&frame)
            {
                fec_tx.on_loss_report(loss_permille);
                tx.on_ack(cumulative, sack);
            }
        }
        now_us += 1_000;
    }
    let s = net.stats();
    ReliableRunCost {
        latency: LatencyResult::from_samples(&latencies),
        completion_us: now_us,
        wire_bytes: s.bytes_sent,
        datagrams: s.datagrams_sent,
        retransmissions: retx,
    }
}

/// One row of the C9 goodput comparison (see [`bench_fec_loss_sweep`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FecLossRow {
    /// Configured link loss in permille.
    pub loss_permille: u32,
    /// Application payload carried by each run (`n × msg_len` bytes).
    pub payload_bytes: u64,
    /// Plain ARQ (retransmission round-trips only).
    pub arq: ReliableRunCost,
    /// ARQ with the adaptive FEC layer below it.
    pub arq_fec: ReliableRunCost,
    /// The simulated generic TCP stack.
    pub tcp: ReliableRunCost,
}

/// Fold several seeded runs of the same workload into one cost line:
/// completion/wire/retransmission totals add, the latency tail keeps
/// the worst max and the sample-weighted mean. Goodput over the summed
/// payload then measures the stack, not one RNG draw.
fn merge_runs(runs: &[ReliableRunCost]) -> ReliableRunCost {
    let count: u64 = runs.iter().map(|r| r.latency.count).sum();
    let mean_us = if count == 0 {
        0.0
    } else {
        runs.iter().map(|r| r.latency.mean_us * r.latency.count as f64).sum::<f64>() / count as f64
    };
    ReliableRunCost {
        latency: LatencyResult {
            count,
            mean_us,
            max_us: runs.iter().map(|r| r.latency.max_us).max().unwrap_or(0),
        },
        completion_us: runs.iter().map(|r| r.completion_us).sum(),
        wire_bytes: runs.iter().map(|r| r.wire_bytes).sum(),
        datagrams: runs.iter().map(|r| r.datagrams).sum(),
        retransmissions: runs.iter().map(|r| r.retransmissions).sum(),
    }
}

/// C9: bulk goodput of plain ARQ vs ARQ+FEC vs tcpish across a loss
/// sweep — the claim the FEC layer exists to win: at radio-grade loss,
/// parity repair keeps goodput up where pure retransmission collapses
/// into RTO stalls. Each point aggregates three seeded runs so the
/// comparison measures the coding gain, not one lucky loss pattern.
pub fn bench_fec_loss_sweep(n: u32, msg_len: usize, seed: u64) -> Vec<FecLossRow> {
    const RUNS: u64 = 3;
    let seeds = || (0..RUNS).map(move |i| seed + i);
    [0.0, 0.05, 0.10, 0.20, 0.30]
        .iter()
        .map(|&loss| FecLossRow {
            loss_permille: (loss * 1000.0) as u32,
            payload_bytes: RUNS * u64::from(n) * msg_len as u64,
            arq: merge_runs(
                &seeds().map(|s| bench_arq_under_loss(loss, n, msg_len, 0, s)).collect::<Vec<_>>(),
            ),
            arq_fec: merge_runs(
                &seeds()
                    .map(|s| bench_arq_fec_under_loss(loss, n, msg_len, 0, s))
                    .collect::<Vec<_>>(),
            ),
            tcp: merge_runs(
                &seeds().map(|s| bench_tcp_under_loss(loss, n, msg_len, 0, s)).collect::<Vec<_>>(),
            ),
        })
        .collect()
}

/// C3b: the same sporadic workload over the simulated generic TCP stack.
pub fn bench_tcp_under_loss(
    loss: f64,
    n: u32,
    msg_len: usize,
    interval_us: u64,
    seed: u64,
) -> ReliableRunCost {
    let net = SimNet::new(lossy_net(seed, loss));
    let a = net.socket(1);
    let b = net.socket(2);
    let mut client = TcpishEndpoint::client(TcpishConfig::default());
    let mut server = TcpishEndpoint::server(TcpishConfig::default());
    let syn = client.connect(0);
    let _ = a.send(Destination::Unicast(2), Bytes::from(syn));
    let mut send_times: Vec<u64> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = 0u32;
    let mut delivered = 0u32;
    let mut now_us = 0u64;
    while delivered < n && now_us < 600_000_000 {
        if sent < n && now_us >= u64::from(sent) * interval_us {
            let mut v = vec![0u8; msg_len];
            v[0] = sent as u8;
            send_times.push(now_us);
            sent += 1;
            client.send_message(&v);
        }
        for seg in client.poll(now_us) {
            let _ = a.send(Destination::Unicast(2), Bytes::from(seg));
        }
        for seg in server.poll(now_us) {
            let _ = b.send(Destination::Unicast(1), Bytes::from(seg));
        }
        net.advance_to(now_us);
        while let Some((_, seg)) = b.recv() {
            let (outs, msgs) = server.on_segment(&seg, now_us);
            for _ in msgs {
                latencies.push(now_us - send_times[delivered as usize]);
                delivered += 1;
            }
            for o in outs {
                let _ = b.send(Destination::Unicast(1), Bytes::from(o));
            }
        }
        while let Some((_, seg)) = a.recv() {
            let (outs, _msgs) = client.on_segment(&seg, now_us);
            for o in outs {
                let _ = a.send(Destination::Unicast(2), Bytes::from(o));
            }
        }
        now_us += 1_000;
    }
    let s = net.stats();
    ReliableRunCost {
        latency: LatencyResult::from_samples(&latencies),
        completion_us: now_us,
        wire_bytes: s.bytes_sent,
        datagrams: s.datagrams_sent,
        retransmissions: client.stats().retransmissions,
    }
}

// ---------------------------------------------------------------------------
// C4: file distribution — multicast MFTP vs per-subscriber unicast
// ---------------------------------------------------------------------------

/// Outcome of one file-distribution run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileRunResult {
    /// Virtual milliseconds until every subscriber completed.
    pub completion_ms: u64,
    /// Bytes sent by the publisher node.
    pub publisher_bytes: u64,
    /// Datagrams sent by the publisher node.
    pub publisher_datagrams: u64,
    /// Subscribers that completed.
    pub completed: u32,
}

struct FilePublisher {
    data: Bytes,
}

impl Service for FilePublisher {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("fp").file_resource("bench/file").build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.publish_file("bench/file", self.data.clone());
    }
}

struct FileSink {
    done: Arc<Mutex<Vec<(u32, Micros)>>>,
}

impl Service for FileSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("fsink").subscribe_file("bench/file").build()
    }
    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, ev: &FileEvent) {
        if let FileEvent::Received { .. } = ev {
            self.done.lock().unwrap().push((ctx.local_node().0, ctx.now()));
        }
    }
}

/// C4: distributes `size` bytes to `subscribers` nodes via the MFTP-style
/// multicast transfer.
pub fn bench_file_multicast(size: usize, subscribers: u32, loss: f64, seed: u64) -> FileRunResult {
    let mut h = SimHarness::new(lossy_net(seed, loss));
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    let data: Vec<u8> = (0..size).map(|i| (i % 250) as u8).collect();
    h.add_service(NodeId(1), Box::new(FilePublisher { data: Bytes::from(data) }));
    let done = Arc::new(Mutex::new(Vec::new()));
    for i in 0..subscribers {
        let node = NodeId(10 + i);
        h.add_container(ContainerConfig::new("sub", node));
        h.add_service(node, Box::new(FileSink { done: done.clone() }));
    }
    h.start_all();
    let budget = 60_000u64;
    let mut waited = 0;
    while waited < budget {
        h.run_for_millis(20);
        waited += 20;
        if done.lock().unwrap().len() as u32 >= subscribers {
            break;
        }
    }
    let completions = done.lock().unwrap();
    let net = h.network().stats();
    FileRunResult {
        completion_ms: completions.iter().map(|(_, t)| t.as_millis()).max().unwrap_or(budget),
        publisher_bytes: net.node(1).sent_bytes,
        publisher_datagrams: net.node(1).sent,
        completed: completions.len() as u32,
    }
}

/// C4 baseline: the same payload moved to each subscriber by a dedicated
/// transfer (what unicast fan-out costs). Implemented as `subscribers`
/// sequential single-subscriber runs; costs add.
pub fn bench_file_unicast_equivalent(
    size: usize,
    subscribers: u32,
    loss: f64,
    seed: u64,
) -> FileRunResult {
    let mut total = FileRunResult {
        completion_ms: 0,
        publisher_bytes: 0,
        publisher_datagrams: 0,
        completed: 0,
    };
    for i in 0..subscribers {
        let r = bench_file_multicast(size, 1, loss, seed.wrapping_add(u64::from(i)));
        total.completion_ms = total.completion_ms.max(r.completion_ms);
        total.publisher_bytes += r.publisher_bytes;
        total.publisher_datagrams += r.publisher_datagrams;
        total.completed += r.completed;
    }
    total
}

/// C4c: the same-node bypass versus a loopback network transfer.
///
/// Returns `(bypass_deliveries, wire_bytes)` — the bypass moves zero wire
/// bytes for the file itself.
pub fn bench_file_bypass(size: usize, seed: u64) -> (u64, u64) {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.add_container(ContainerConfig::new("solo", NodeId(1)));
    let data: Vec<u8> = vec![7u8; size];
    h.add_service(NodeId(1), Box::new(FilePublisher { data: Bytes::from(data) }));
    let done = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(1), Box::new(FileSink { done }));
    h.start_all();
    h.run_for_millis(500);
    let stats = h.container(NodeId(1)).unwrap().stats();
    (stats.file_bypass_deliveries, h.network().stats().bytes_sent)
}

// ---------------------------------------------------------------------------
// C5: scheduler priority vs FIFO under handler load
// ---------------------------------------------------------------------------

struct LoadedPublisher {
    bg_per_tick: u32,
    remaining_events: u32,
    bg: VarPort<u32>,
    prio: EventPort<u64>,
}

impl LoadedPublisher {
    fn new(bg_per_tick: u32, remaining_events: u32) -> Self {
        LoadedPublisher {
            bg_per_tick,
            remaining_events,
            bg: VarPort::new("bench/bg"),
            prio: EventPort::new("bench/prio"),
        }
    }
}

impl Service for LoadedPublisher {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("loaded")
            .provides_var(&self.bg, VarQos::aperiodic(ProtoDuration::from_secs(1)))
            .provides_event(&self.prio)
            .build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(5), Some(ProtoDuration::from_millis(5)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        // A storm of low-priority variable work …
        for i in 0..self.bg_per_tick {
            ctx.publish_to(&self.bg, i);
        }
        // … and one latency-critical event.
        if self.remaining_events > 0 {
            self.remaining_events -= 1;
            ctx.emit_to(&self.prio, ctx.now().as_micros());
        }
    }
}

struct LoadedSink;

impl Service for LoadedSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("loadsink")
            .subscribe_variable("bench/bg", VarQos::default())
            .subscribe_event("bench/prio", EventQos::default())
            .build()
    }
}

/// C5: event delivery latency under background handler load, for a given
/// scheduler policy. The consumer container's budget is deliberately small
/// so queued work spans ticks and ordering matters.
pub fn bench_scheduler_latency(
    kind: SchedulerKind,
    bg_per_tick: u32,
    n_events: u32,
    seed: u64,
) -> LatencyResult {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.set_tick_us(500);
    h.add_container(ContainerConfig::new("pub", NodeId(1)));
    let mut cfg = ContainerConfig::new("sub", NodeId(2));
    cfg.scheduler = kind;
    cfg.tick_budget = 64;
    h.add_container(cfg);
    h.add_service(NodeId(1), Box::new(LoadedPublisher::new(bg_per_tick, n_events)));
    h.add_service(NodeId(2), Box::new(LoadedSink));
    h.start_all();
    h.run_for_millis(u64::from(n_events) * 5 + 500);
    let s = h.container(NodeId(2)).unwrap().stats();
    LatencyResult {
        count: s.events_delivered,
        mean_us: s.event_latency_mean_us().unwrap_or(0.0),
        max_us: s.event_latency_max_us,
    }
}

// ---------------------------------------------------------------------------
// C5b: per-subscription QoS priority under bulk event load
// ---------------------------------------------------------------------------

/// Outcome of the C5b QoS-priority scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosPriorityResult {
    /// Latency of the critical-event subscription (virtual time).
    pub critical: LatencyResult,
    /// Bulk events actually delivered to handlers.
    pub bulk_delivered: u64,
    /// Bulk deliveries dropped by the subscription's inbox bound.
    pub queue_drops: u64,
}

fn bulk_event_port() -> EventPort<u32> {
    EventPort::new("bench/bulk")
}

fn critical_event_port() -> EventPort<u64> {
    EventPort::new("bench/critical")
}

/// Emits a storm of bulk events plus one latency-critical event per tick.
struct QosLoadedPublisher {
    bulk_per_tick: u32,
    remaining_critical: u32,
    bulk: EventPort<u32>,
    critical: EventPort<u64>,
}

impl Service for QosLoadedPublisher {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("qos-loaded")
            .provides_event(&self.bulk)
            .provides_event(&self.critical)
            .build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(5), Some(ProtoDuration::from_millis(5)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        for i in 0..self.bulk_per_tick {
            ctx.emit_to(&self.bulk, i);
        }
        if self.remaining_critical > 0 {
            self.remaining_critical -= 1;
            ctx.emit_to(&self.critical, ctx.now().as_micros());
        }
    }
}

/// Subscribes to both channels; the bulk subscription's contract is the
/// experiment variable.
struct QosSink {
    bulk_qos: EventQos,
    critical_latencies: Arc<Mutex<Vec<u64>>>,
    bulk_seen: Arc<Mutex<u64>>,
    bulk: EventPort<u32>,
    critical: EventPort<u64>,
}

impl Service for QosSink {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("qos-sink")
            .subscribe_to_event(&self.bulk, self.bulk_qos)
            .subscribe_to_event(&self.critical, EventQos::default())
            .build()
    }
    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        _value: Option<&Value>,
        stamp: Micros,
    ) {
        if self.critical.matches(name) {
            self.critical_latencies
                .lock()
                .unwrap()
                .push(ctx.now().saturating_since(stamp).as_micros());
        } else if self.bulk.matches(name) {
            *self.bulk_seen.lock().unwrap() += 1;
        }
    }
}

/// C5b: a bulk event flood and a sparse critical stream share one
/// consumer container whose tick budget is deliberately small, so the
/// flood outruns the handler capacity and queued work spans ticks. With
/// `contract = true` the bulk subscription declares the
/// [`EventQos::bulk`] profile (background priority lane, bounded inbox);
/// with `false` both subscriptions ride the default event lane — the
/// pre-profile behaviour the contract is compared against.
pub fn bench_qos_priority(
    contract: bool,
    bulk_per_tick: u32,
    n_critical: u32,
    seed: u64,
) -> QosPriorityResult {
    let bulk_qos =
        if contract { EventQos::bulk().with_queue_bound(64) } else { EventQos::default() };
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.set_tick_us(500);
    let mut cfg = ContainerConfig::new("solo", NodeId(1));
    cfg.tick_budget = 64;
    h.add_container(cfg);
    h.add_service(
        NodeId(1),
        Box::new(QosLoadedPublisher {
            bulk_per_tick,
            remaining_critical: n_critical,
            bulk: bulk_event_port(),
            critical: critical_event_port(),
        }),
    );
    let critical_latencies = Arc::new(Mutex::new(Vec::new()));
    let bulk_seen = Arc::new(Mutex::new(0u64));
    h.add_service(
        NodeId(1),
        Box::new(QosSink {
            bulk_qos,
            critical_latencies: critical_latencies.clone(),
            bulk_seen: bulk_seen.clone(),
            bulk: bulk_event_port(),
            critical: critical_event_port(),
        }),
    );
    h.start_all();
    h.run_for_millis(u64::from(n_critical) * 5 + 500);
    let latencies = critical_latencies.lock().unwrap().clone();
    let bulk_delivered = *bulk_seen.lock().unwrap();
    let drops = h
        .container(NodeId(1))
        .unwrap()
        .event_qos_stats("bench/bulk")
        .map(|s| s.queue_drops)
        .unwrap_or(0);
    QosPriorityResult {
        critical: LatencyResult::from_samples(&latencies),
        bulk_delivered,
        queue_drops: drops,
    }
}

// ---------------------------------------------------------------------------
// C10: flight-recorder overhead
// ---------------------------------------------------------------------------

/// One leg of the C10 comparison: the C5 loaded flood (background var
/// storm plus sparse critical events across the LAN) with the flight
/// recorder either on (default [`TraceConfig`]) or off.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOverheadRun {
    /// Critical-event latency distribution (virtual time).
    pub critical: LatencyResult,
    /// Background var samples delivered to the subscriber.
    pub vars_delivered: u64,
    /// Flight-recorder events captured across the fleet (ring contents
    /// plus evictions) — 0 when disabled.
    pub trace_events: u64,
    /// publish→deliver histogram population on the subscriber — 0 when
    /// disabled.
    pub histogram_count: u64,
    /// Wire traffic. The trace id rides every sample frame, so the two
    /// legs differ slightly — and deterministically.
    pub wire_bytes: u64,
}

/// C10: one deterministic flood run with the recorder on or off. All
/// returned quantities are virtual-time/counter-valued, so the same
/// (traced, …, seed) tuple reproduces them byte-identically; the
/// wall-clock cost of the same run is what the `--ignored` overhead
/// gate in `tests` measures.
pub fn bench_trace_overhead_run(
    traced: bool,
    bg_per_tick: u32,
    n_events: u32,
    seed: u64,
) -> TraceOverheadRun {
    let trace = if traced { TraceConfig::default() } else { TraceConfig::disabled() };
    bench_trace_overhead_with(trace, bg_per_tick, n_events, seed)
}

/// [`bench_trace_overhead_run`] with full control over the recorder
/// config (e.g. to size the ring differently from the default).
pub fn bench_trace_overhead_with(
    trace: TraceConfig,
    bg_per_tick: u32,
    n_events: u32,
    seed: u64,
) -> TraceOverheadRun {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.set_tick_us(500);
    let mut pub_cfg = ContainerConfig::new("pub", NodeId(1));
    pub_cfg.trace = trace;
    h.add_container(pub_cfg);
    let mut sub_cfg = ContainerConfig::new("sub", NodeId(2));
    sub_cfg.scheduler = SchedulerKind::Priority;
    sub_cfg.tick_budget = 64;
    sub_cfg.trace = trace;
    h.add_container(sub_cfg);
    h.add_service(NodeId(1), Box::new(LoadedPublisher::new(bg_per_tick, n_events)));
    h.add_service(NodeId(2), Box::new(LoadedSink));
    h.start_all();
    h.run_for_millis(u64::from(n_events) * 5 + 500);
    let s = h.container(NodeId(2)).unwrap().stats();
    let trace_events =
        h.trace_rings().iter().map(|(_, r)| r.len() as u64 + r.evicted()).sum::<u64>();
    TraceOverheadRun {
        critical: LatencyResult {
            count: s.events_delivered,
            mean_us: s.event_latency_mean_us().unwrap_or(0.0),
            max_us: s.event_latency_max_us,
        },
        vars_delivered: s.var_samples_delivered,
        trace_events,
        histogram_count: s.publish_to_deliver.count(),
        wire_bytes: h.network().stats().bytes_sent,
    }
}

// ---------------------------------------------------------------------------
// C6: failover timing
// ---------------------------------------------------------------------------

/// Outcome of the failover scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverResult {
    /// Virtual ms between the crash and the first reply served by the
    /// backup provider.
    pub blackout_ms: u64,
    /// Calls that surfaced an error to the application.
    pub errors: u32,
    /// Transparent failovers the middleware performed.
    pub failovers: u64,
}

type FailoverOutcomes = Arc<Mutex<Vec<(u64, Result<u32, String>)>>>;

struct FailoverCaller {
    outcomes: FailoverOutcomes,
    who: FnPort<(), u32>,
}

impl FailoverCaller {
    fn new(outcomes: FailoverOutcomes) -> Self {
        FailoverCaller { outcomes, who: who_port() }
    }
}

impl Service for FailoverCaller {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("focaller").requires_fn(&self.who).build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(50), Some(ProtoDuration::from_millis(50)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        ctx.call_fn_with(&self.who, (), CallOptions::default().pinned(NodeId(2)));
    }
    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        _h: CallHandle,
        result: Result<Value, CallError>,
    ) {
        self.outcomes.lock().unwrap().push((
            ctx.now().as_millis(),
            result.map(|v| v.as_u64().unwrap_or(0) as u32).map_err(|e| e.to_string()),
        ));
    }
}

struct WhoAmI {
    node: u32,
    port: FnPort<(), u32>,
}

impl WhoAmI {
    fn new(node: u32) -> Self {
        WhoAmI { node, port: who_port() }
    }
}

impl Service for WhoAmI {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("who").provides_fn(&self.port).build()
    }
    fn on_call(
        &mut self,
        _ctx: &mut ServiceContext<'_>,
        _f: &Name,
        _a: &[Value],
    ) -> Result<Value, String> {
        Ok(self.port.encode_ret(self.node))
    }
}

/// C6: crashes the pinned provider mid-run and measures recovery.
pub fn bench_failover(seed: u64) -> FailoverResult {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.add_container(ContainerConfig::new("client", NodeId(1)));
    h.add_container(ContainerConfig::new("primary", NodeId(2)));
    h.add_container(ContainerConfig::new("backup", NodeId(3)));
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    h.add_service(NodeId(1), Box::new(FailoverCaller::new(outcomes.clone())));
    h.add_service(NodeId(2), Box::new(WhoAmI::new(2)));
    h.add_service(NodeId(3), Box::new(WhoAmI::new(3)));
    h.start_all();
    h.run_for_millis(2_000);
    let crash_at = h.now().as_millis();
    h.crash_node(NodeId(2));
    h.run_for_millis(8_000);
    let outcomes = outcomes.lock().unwrap();
    let first_backup = outcomes
        .iter()
        .find(|(t, r)| *t > crash_at && *r == Ok(3))
        .map(|(t, _)| *t)
        .unwrap_or(u64::MAX);
    FailoverResult {
        blackout_ms: first_backup.saturating_sub(crash_at),
        errors: outcomes.iter().filter(|(_, r)| r.is_err()).count() as u32,
        failovers: h.container(NodeId(1)).unwrap().stats().call_failovers,
    }
}

// ---------------------------------------------------------------------------
// C8: chaos-scenario failover (recovery-time objective)
// ---------------------------------------------------------------------------

/// Outcome of the chaos corpus' `publisher_failover` scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFailoverResult {
    /// Virtual ms between the scripted crash and the first successful
    /// call strictly after it (the invariant-measured recovery time).
    pub recovery_ms: u64,
    /// Invariant violations recorded over the whole run (0 = pass).
    pub violations: u32,
    /// Successful call replies over the run.
    pub calls_ok: u64,
    /// Faults injected by the schedule.
    pub events_applied: u32,
}

/// C8: runs the chaos corpus' `publisher_failover` scenario with the
/// container-default ("full") timing profile and reports the recovery
/// time its [`RtoRecovery`](marea_core::scenario::RtoRecovery) invariant
/// measured — crash detection + transparent call failover, end to end,
/// followed by a clean rejoin of the restarted primary.
pub fn bench_scenario_failover(seed: u64) -> ScenarioFailoverResult {
    use marea_core::scenario::corpus;
    let cfg = corpus::ScenarioConfig::full(seed);
    let mut chaos = corpus::build("publisher_failover", &cfg).expect("corpus scenario");
    let report = chaos.run();
    let recoveries = chaos.probes.recoveries_us.lock().expect("rto sink").clone();
    ScenarioFailoverResult {
        recovery_ms: recoveries.first().map(|us| us / 1000).unwrap_or(u64::MAX),
        violations: report.violations.len() as u32,
        calls_ok: chaos.probes.calls_ok.load(std::sync::atomic::Ordering::Relaxed),
        events_applied: report.events_applied as u32,
    }
}

// ---------------------------------------------------------------------------
// F2: local vs remote delivery through the container
// ---------------------------------------------------------------------------

/// Mean one-way event latency when publisher and subscriber share a
/// container (local path) vs sit on different nodes (network path).
pub fn bench_local_vs_remote_event(n: u32, seed: u64) -> (LatencyResult, LatencyResult) {
    // Local: both services in one container.
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.set_tick_us(100);
    h.add_container(ContainerConfig::new("solo", NodeId(1)));
    h.add_service(NodeId(1), Box::new(EventBlaster::new(32, n)));
    h.add_service(NodeId(1), Box::new(EventSink));
    h.start_all();
    h.run_for_millis(u64::from(n) * 4 + 100);
    let s = h.container(NodeId(1)).unwrap().stats();
    let local = LatencyResult {
        count: s.events_delivered,
        mean_us: s.event_latency_mean_us().unwrap_or(0.0),
        max_us: s.event_latency_max_us,
    };
    let remote = bench_event_latency(32, n, 0.0, seed.wrapping_add(1));
    (local, remote)
}

// ---------------------------------------------------------------------------
// C11: swarm scale — sim-core throughput vs fleet size
// ---------------------------------------------------------------------------

/// Container tick cadence of every swarm-scale run (µs).
pub const SWARM_TICK_US: u64 = 500;
/// Virtual settle time before the measurement window (ms).
pub const SWARM_SETTLE_MS: u64 = 300;
/// Virtual length of the measurement window (ms).
pub const SWARM_WINDOW_MS: u64 = 1_000;
/// The node counts the C11 sweep visits.
pub const SWARM_NODE_COUNTS: [u32; 4] = [16, 64, 256, 1024];

/// One row of the C11 swarm-scale sweep: a fleet of `nodes` containers
/// in a beacon ring, measured over [`SWARM_WINDOW_MS`] of virtual time
/// after discovery settles. Every field is virtual-time/counter-valued,
/// so the same `(nodes, seed)` pair reproduces the row byte for byte;
/// the *wall-clock* cost of the identical run is what
/// [`bench_swarm_ticks_per_sec`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmScaleRow {
    /// Fleet size.
    pub nodes: u32,
    /// Container ticks executed inside the window (steps × nodes).
    pub ticks: u64,
    /// Window length in virtual ms.
    pub virtual_ms: u64,
    /// Ring-beacon events delivered across the fleet in the window.
    pub beacons_delivered: u64,
    /// Datagrams the whole fleet put on the wire in the window.
    pub datagrams: u64,
    /// Wire bytes the whole fleet sent in the window.
    pub wire_bytes: u64,
    /// Whether every node saw every other node alive at the end.
    pub full_mesh: bool,
}

/// Ring beacon: node `i` publishes `swarm/b<i>` and subscribes to its
/// predecessor's beacon, so data-plane traffic grows linearly with the
/// fleet while the control plane (heartbeats, announcements) carries
/// the quadratic part the digest gossip exists to flatten.
struct SwarmBeacon {
    port: EventPort<u64>,
    watches: String,
}

impl SwarmBeacon {
    fn new(own: u32, prev: u32) -> Self {
        SwarmBeacon {
            port: EventPort::new(&format!("swarm/b{own}")),
            watches: format!("swarm/b{prev}"),
        }
    }
}

impl Service for SwarmBeacon {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("swarm-beacon")
            .provides_event(&self.port)
            .subscribe_event(&self.watches, EventQos::default())
            .build()
    }
    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(ProtoDuration::from_millis(50), Some(ProtoDuration::from_millis(50)));
    }
    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        ctx.emit_to(&self.port, ctx.now().as_micros());
    }
}

/// Builds the C11 fleet: `nodes` containers in a beacon ring with an
/// announce cadence short enough that the window exercises the digest
/// path, not just heartbeats.
fn swarm_fleet(nodes: u32, seed: u64) -> SimHarness {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    h.set_tick_us(SWARM_TICK_US);
    for i in 1..=nodes {
        let mut cfg = ContainerConfig::new("swarm", NodeId(i));
        cfg.announce_period = ProtoDuration::from_millis(400);
        h.add_container(cfg);
        let prev = if i == 1 { nodes } else { i - 1 };
        h.add_service(NodeId(i), Box::new(SwarmBeacon::new(i, prev)));
    }
    h
}

fn swarm_beacons_delivered(h: &SimHarness) -> u64 {
    h.nodes().iter().map(|&n| h.container(n).unwrap().stats().events_delivered).sum()
}

/// C11: one deterministic swarm-scale measurement at `nodes` containers.
pub fn bench_swarm_scale_row(nodes: u32, seed: u64) -> SwarmScaleRow {
    let mut h = swarm_fleet(nodes, seed);
    h.start_all();
    h.run_for_millis(SWARM_SETTLE_MS);
    h.network().reset_stats();
    let before = swarm_beacons_delivered(&h);
    h.run_for_millis(SWARM_WINDOW_MS);
    let net = h.network().stats();
    let ids = h.nodes();
    let full_mesh =
        ids.iter().all(|&a| ids.iter().all(|&b| h.container(a).unwrap().directory().node_alive(b)));
    SwarmScaleRow {
        nodes,
        ticks: SWARM_WINDOW_MS * 1_000 / SWARM_TICK_US * u64::from(nodes),
        virtual_ms: SWARM_WINDOW_MS,
        beacons_delivered: swarm_beacons_delivered(&h) - before,
        datagrams: net.datagrams_sent,
        wire_bytes: net.bytes_sent,
        full_mesh,
    }
}

/// C11: the full sweep over [`SWARM_NODE_COUNTS`].
pub fn bench_swarm_scale(seed: u64) -> Vec<SwarmScaleRow> {
    SWARM_NODE_COUNTS.iter().map(|&n| bench_swarm_scale_row(n, seed)).collect()
}

/// Wall-clock throughput of the identical [`bench_swarm_scale_row`]
/// run: container ticks executed per host second inside the window.
/// Machine-dependent by construction — EXPERIMENTS.md quotes it for the
/// trajectory, the `--ignored` release floor test gates it in CI.
pub fn bench_swarm_ticks_per_sec(nodes: u32, seed: u64) -> f64 {
    let mut h = swarm_fleet(nodes, seed);
    h.start_all();
    h.run_for_millis(SWARM_SETTLE_MS);
    // marea-lint: allow(D2): wall-clock bench — host ticks/sec is the quantity measured
    let t0 = std::time::Instant::now();
    h.run_for_millis(SWARM_WINDOW_MS);
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    (SWARM_WINDOW_MS * 1_000 / SWARM_TICK_US * u64::from(nodes)) as f64 / elapsed
}

// ---------------------------------------------------------------------------
// F1: discovery time
// ---------------------------------------------------------------------------

/// Virtual ms until every container of an `n`-node fleet sees every other
/// node alive.
pub fn bench_discovery(n: u32, seed: u64) -> u64 {
    let mut h = SimHarness::new(NetConfig::default().with_seed(seed));
    for i in 0..n {
        h.add_container(ContainerConfig::new("node", NodeId(1 + i)));
    }
    h.start_all();
    for waited in 1..=2_000u64 {
        h.run_for_millis(1);
        let full_mesh = (0..n).all(|i| {
            let c = h.container(NodeId(1 + i)).unwrap();
            (0..n).all(|j| c.directory().node_alive(NodeId(1 + j)))
        });
        if full_mesh {
            return waited;
        }
    }
    u64::MAX
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_latency_beats_rpc_rtt() {
        let ev = bench_event_latency(64, 20, 0.0, 1);
        let rpc = bench_rpc_rtt(64, 20, 0.0, 1);
        assert_eq!(ev.count, 20);
        assert_eq!(rpc.count, 20);
        assert!(
            ev.mean_us < rpc.mean_us,
            "C1 shape: event {:.0}µs < rpc {:.0}µs",
            ev.mean_us,
            rpc.mean_us
        );
    }

    #[test]
    fn multicast_fanout_is_flat_unicast_grows() {
        let m1 = bench_var_fanout(1, 50, true, 2);
        let m8 = bench_var_fanout(8, 50, true, 2);
        let u8_ = bench_var_fanout(8, 50, false, 2);
        assert!(m8.delivered_samples >= 8 * 40, "{m8:?}");
        // Multicast publisher cost stays ~flat with subscriber count …
        assert!(
            m8.publisher_datagrams < m1.publisher_datagrams * 2,
            "multicast flat: {m1:?} vs {m8:?}"
        );
        // … while unicast fan-out pays per subscriber.
        assert!(
            u8_.publisher_datagrams > m8.publisher_datagrams * 4,
            "unicast grows: {m8:?} vs {u8_:?}"
        );
    }

    #[test]
    fn arq_beats_tcp_under_loss() {
        // Sporadic events, one every 20 ms, 5% loss.
        let arq = bench_arq_under_loss(0.05, 50, 64, 20_000, 3);
        let tcp = bench_tcp_under_loss(0.05, 50, 64, 20_000, 3);
        assert_eq!(arq.latency.count, 50);
        assert_eq!(tcp.latency.count, 50);
        assert!(
            arq.latency.mean_us < tcp.latency.mean_us,
            "C3 shape under 5% loss: arq mean {:.0}µs < tcp mean {:.0}µs",
            arq.latency.mean_us,
            tcp.latency.mean_us
        );
        assert!(
            arq.latency.max_us < tcp.latency.max_us,
            "C3 shape: arq max {}µs < tcp max {}µs (rto + hol)",
            arq.latency.max_us,
            tcp.latency.max_us
        );
    }

    #[test]
    fn scenario_failover_recovers_within_objective() {
        let r = bench_scenario_failover(808);
        assert_eq!(r.violations, 0, "no invariant violations: {r:?}");
        assert_eq!(r.events_applied, 2, "crash + restart were injected");
        assert!(r.recovery_ms < 4_000, "C8 shape: recovery {}ms < 4s objective", r.recovery_ms);
        assert!(r.calls_ok > 20, "client kept being served: {r:?}");
    }

    #[test]
    fn multicast_file_beats_unicast_equivalent() {
        let m = bench_file_multicast(64 * 1024, 4, 0.0, 4);
        let u = bench_file_unicast_equivalent(64 * 1024, 4, 0.0, 4);
        assert_eq!(m.completed, 4);
        assert_eq!(u.completed, 4);
        assert!(
            m.publisher_bytes * 2 < u.publisher_bytes,
            "C4 shape: multicast {} B ≪ unicast {} B",
            m.publisher_bytes,
            u.publisher_bytes
        );
    }

    #[test]
    fn priority_scheduler_caps_event_latency_under_load() {
        // 640 background samples per burst against a 64-task budget keep
        // the FIFO backlog ~10 ticks deep, so the shape gap survives small
        // wire-framing shifts (the burst previously drained in 3 ticks,
        // leaving the assertion one tick from flipping).
        let prio = bench_scheduler_latency(SchedulerKind::Priority, 640, 20, 5);
        let fifo = bench_scheduler_latency(SchedulerKind::Fifo, 640, 20, 5);
        assert!(prio.count > 0 && fifo.count > 0);
        assert!(
            prio.max_us * 2 < fifo.max_us,
            "C5 shape: priority max {}µs ≪ fifo max {}µs",
            prio.max_us,
            fifo.max_us
        );
    }

    #[test]
    fn qos_priority_contract_caps_critical_latency() {
        let with = bench_qos_priority(true, 400, 20, 5);
        let without = bench_qos_priority(false, 400, 20, 5);
        assert!(with.critical.count > 0 && without.critical.count > 0);
        assert!(
            with.critical.max_us * 2 < without.critical.max_us,
            "C5b shape: contract max {}µs ≪ no-contract max {}µs",
            with.critical.max_us,
            without.critical.max_us
        );
        assert!(with.queue_drops > 0, "the bulk inbox bound engaged: {with:?}");
        assert_eq!(without.queue_drops, 0, "no bound declared, nothing dropped: {without:?}");
        assert!(with.bulk_delivered > 0, "bulk still flows, just later: {with:?}");
    }

    #[test]
    fn failover_recovers_quickly_without_errors() {
        let r = bench_failover(6);
        assert!(r.blackout_ms < 2_000, "{r:?}");
        assert!(r.failovers >= 1, "{r:?}");
    }

    #[test]
    fn fec_goodput_beats_plain_arq_at_radio_loss() {
        // CI smoke gate for the C9 claim: at radio-grade loss (≥10%),
        // parity repair must strictly out-run pure retransmission.
        let rows = bench_fec_loss_sweep(120, 64, 9);
        for row in rows.iter().filter(|r| r.loss_permille >= 100) {
            let arq = row.arq.goodput_bps(row.payload_bytes);
            let fec = row.arq_fec.goodput_bps(row.payload_bytes);
            assert!(
                fec > arq,
                "C9 shape at {}‰ loss: arq+fec {} bps must beat arq {} bps",
                row.loss_permille,
                fec,
                arq
            );
        }
        // ARQ and ARQ+FEC must complete every transfer (three seeded
        // runs of 120 messages each per point). tcpish is allowed to
        // time out at 30% loss — its RTO collapse is the comparison
        // point, not a gate.
        for row in &rows {
            assert_eq!(row.arq.latency.count, 360, "{row:?}");
            assert_eq!(row.arq_fec.latency.count, 360, "{row:?}");
        }
    }

    #[test]
    fn local_delivery_is_faster_than_remote() {
        let (local, remote) = bench_local_vs_remote_event(20, 7);
        assert!(local.count > 0 && remote.count > 0);
        assert!(
            local.mean_us <= remote.mean_us,
            "F2 shape: local {:.0}µs <= remote {:.0}µs",
            local.mean_us,
            remote.mean_us
        );
    }

    #[test]
    fn discovery_converges_fast() {
        let ms = bench_discovery(6, 8);
        assert!(ms < 200, "6-node mesh discovered in {ms} ms");
    }

    #[test]
    fn bypass_moves_no_wire_bytes() {
        let (bypass, wire) = bench_file_bypass(1024 * 1024, 9);
        assert_eq!(bypass, 1);
        assert!(wire < 20_000, "only control plane: {wire}");
    }

    #[test]
    fn trace_overhead_run_is_deterministic_and_recorder_gated() {
        let on = bench_trace_overhead_run(true, 400, 20, 11);
        let on2 = bench_trace_overhead_run(true, 400, 20, 11);
        assert_eq!(on, on2, "C10: same seed, same traced run");
        let off = bench_trace_overhead_run(false, 400, 20, 11);
        let off2 = bench_trace_overhead_run(false, 400, 20, 11);
        assert_eq!(off, off2, "C10: same seed, same untraced run");
        // Both legs complete the same workload …
        assert_eq!(on.critical.count, 20);
        assert_eq!(off.critical.count, 20);
        assert!(on.vars_delivered > 1_000 && off.vars_delivered > 1_000);
        // … and only the traced leg feeds the recorder.
        assert!(on.trace_events > 1_000, "recorder captured the flood: {on:?}");
        assert!(on.histogram_count > 1_000, "publish→deliver histogram populated: {on:?}");
        assert_eq!(off.trace_events, 0, "{off:?}");
        assert_eq!(off.histogram_count, 0, "{off:?}");
    }

    #[test]
    fn swarm_scale_row_is_deterministic_and_converged() {
        let a = bench_swarm_scale_row(64, 13);
        let b = bench_swarm_scale_row(64, 13);
        assert_eq!(a, b, "C11: same seed, same row");
        assert!(a.full_mesh, "64-node fleet converged: {a:?}");
        // 64 beacons at 20 Hz over a 1 s window, minus scheduling slack.
        assert!(a.beacons_delivered > 64 * 15, "ring beacons flow: {a:?}");
        assert!(a.datagrams > 0 && a.wire_bytes > 0, "{a:?}");
        assert_eq!(a.ticks, 2_000 * 64, "{a:?}");
    }

    /// C11 wall-clock gate: the 256-node fleet must tick fast enough
    /// that swarm scenarios stay affordable. Wall-clock, so ignored by
    /// default; CI runs it in release. The floor is set ~4× under the
    /// post-refactor measurement (1.07M ticks/sec, 12.3× the 87,055 of
    /// the per-tick full-map sweeps) so CI noise can't trip it, while a
    /// return of the sweeps (≈12× slower) would.
    #[test]
    #[ignore = "wall-clock measurement; CI runs it in release"]
    fn swarm_ticks_per_sec_floor_at_256_nodes() {
        let best = (0..3).map(|rep| bench_swarm_ticks_per_sec(256, 21 + rep)).fold(0f64, f64::max);
        println!("C11 gate: best 256-node throughput {best:.0} ticks/sec");
        assert!(best >= 250_000.0, "C11 gate: {best:.0} ticks/sec under the 250k floor");
    }

    /// C10 wall-clock gate: tracing the loaded flood must cost ≤5% in
    /// ticks/sec. Wall-clock, so ignored by default; CI runs it in
    /// release (`cargo test --release -- --ignored trace_overhead`).
    #[test]
    #[ignore = "wall-clock measurement; CI runs it in release"]
    fn trace_overhead_stays_within_five_percent() {
        let time_once = |traced: bool, rep: u64| {
            // marea-lint: allow(D2): wall-clock gate — measuring the real cost of tracing is the point
            let t0 = std::time::Instant::now();
            let _ = bench_trace_overhead_run(traced, 800, 100, 700 + rep);
            t0.elapsed()
        };
        // Warm-up, then time the legs in adjacent off/on pairs so
        // clock-speed drift (turbo, thermal, noisy CI neighbours) hits
        // both sides of each ratio equally, and gate on the cleanest
        // pair: ambient noise only inflates ratios at random, while a
        // real regression inflates every pair.
        let _ = (time_once(false, 0), time_once(true, 0));
        let mut pairs = Vec::new();
        for rep in 1..=8 {
            let off = time_once(false, rep);
            let on = time_once(true, rep);
            pairs.push((on.as_secs_f64() / off.as_secs_f64().max(1e-9), on, off));
        }
        let (ratio, on, off) =
            pairs.iter().cloned().min_by(|a, b| a.0.total_cmp(&b.0)).expect("8 pairs");
        let overhead = ratio - 1.0;
        println!(
            "C10 gate: best-pair tracing overhead {:.2}% (traced {on:?}, untraced {off:?})",
            overhead * 100.0
        );
        assert!(
            overhead <= 0.05,
            "C10 gate: tracing overhead {:.2}% exceeds 5% in every pair (best: traced {on:?}, untraced {off:?})",
            overhead * 100.0
        );
    }
}
