//! marea-trace — query the flight recorder of a chaos-scenario run.
//!
//! Re-runs a named corpus scenario under its seed and dumps what the
//! per-node flight recorders captured. Everything is deterministic: the
//! scenario name and seed fully determine the output, byte for byte, so
//! a violation seen in CI reproduces on any machine with the same two
//! arguments.
//!
//! Usage:
//!
//! ```text
//! marea-trace list
//! marea-trace <scenario> [--seed N] [--json] dump
//!     [--node N] [--kind LABEL] [--channel NAME] [--last N]
//! marea-trace <scenario> [--seed N] [--json] chain <origin:counter>
//! marea-trace <scenario> [--seed N] [--json] violations
//! marea-trace <scenario> [--seed N] [--json] histo
//! ```
//!
//! `dump` (the default) prints every recorded event in causal order;
//! `chain` assembles the cross-node journey of one trace id; `histo`
//! prints each node's latency histograms (publish→deliver, call RTT,
//! RTO recovery); `violations` replays the run's invariant breaches
//! complete with the flight-recorder tail and assembled causal chain —
//! the same evidence the scenario corpus attaches in CI.

use marea_core::scenario::corpus::{self, ScenarioConfig};
use marea_core::scenario::{ScenarioReport, Violation};
use marea_core::trace::{render_event, LatencyHistogram, TraceEvent, TraceId};
use marea_core::{NodeId, SimHarness};

enum Mode {
    Dump,
    Chain(TraceId),
    Violations,
    Histo,
}

struct Opts {
    scenario: String,
    seed: u64,
    mode: Mode,
    node: Option<u32>,
    kind: Option<String>,
    channel: Option<String>,
    last: Option<usize>,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: marea-trace <scenario|list> [--seed N] [--json] \
         [dump [--node N] [--kind LABEL] [--channel NAME] [--last N] \
         | chain <origin:counter> | violations | histo]"
    );
    std::process::exit(2)
}

fn parse_trace_id(s: &str) -> Option<TraceId> {
    let (origin, counter) = s.split_once(':')?;
    Some(TraceId::new(NodeId(origin.parse().ok()?), counter.parse().ok()?))
}

fn parse_args() -> Opts {
    let mut raw = std::env::args().skip(1);
    let scenario = match raw.next() {
        Some(s) => s,
        None => usage(),
    };
    let mut opts = Opts {
        scenario,
        seed: 42,
        mode: Mode::Dump,
        node: None,
        kind: None,
        channel: None,
        last: None,
        json: false,
    };
    let value = |raw: &mut dyn Iterator<Item = String>, flag: &str| match raw.next() {
        Some(v) => v,
        None => {
            eprintln!("error: {flag} needs a value");
            std::process::exit(2);
        }
    };
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--seed" => opts.seed = value(&mut raw, "--seed").parse().unwrap_or_else(|_| usage()),
            "--node" => {
                opts.node = Some(value(&mut raw, "--node").parse().unwrap_or_else(|_| usage()))
            }
            "--kind" => opts.kind = Some(value(&mut raw, "--kind")),
            "--channel" => opts.channel = Some(value(&mut raw, "--channel")),
            "--last" => {
                opts.last = Some(value(&mut raw, "--last").parse().unwrap_or_else(|_| usage()))
            }
            "--json" => opts.json = true,
            "dump" => opts.mode = Mode::Dump,
            "chain" => {
                let id = value(&mut raw, "chain");
                opts.mode = Mode::Chain(parse_trace_id(&id).unwrap_or_else(|| {
                    eprintln!("error: chain id must be <origin:counter>, got `{id}`");
                    std::process::exit(2);
                }));
            }
            "violations" => opts.mode = Mode::Violations,
            "histo" => opts.mode = Mode::Histo,
            _ => usage(),
        }
    }
    opts
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_json(node: NodeId, ev: &TraceEvent) -> String {
    format!(
        "{{\"at_us\": {}, \"node\": {}, \"incarnation\": {}, \"kind\": \"{}\", \
         \"trace\": \"{}\", \"peer\": {}, \"seq\": {}, \"name\": {}}}",
        ev.at.0,
        node.0,
        ev.incarnation,
        ev.kind.label(),
        ev.trace,
        ev.peer.map(|p| p.0.to_string()).unwrap_or_else(|| "null".into()),
        ev.seq,
        match &ev.name {
            Some(n) => format!("\"{}\"", json_escape(n.as_str())),
            None => "null".into(),
        }
    )
}

/// Every recorded event across every ring, in the same deterministic
/// causal order [`assemble_chain`](marea_core::trace::assemble_chain)
/// uses.
fn all_events(h: &SimHarness) -> Vec<(NodeId, TraceEvent)> {
    let mut out: Vec<(NodeId, TraceEvent)> = Vec::new();
    for (node, ring) in h.trace_rings() {
        out.extend(ring.events().map(|ev| (node, ev.clone())));
    }
    out.sort_by_key(|(node, ev)| (ev.at, *node, ev.incarnation, ev.kind, ev.seq));
    out
}

fn dump(h: &SimHarness, opts: &Opts) {
    let mut events = all_events(h);
    events.retain(|(node, ev)| {
        opts.node.is_none_or(|n| node.0 == n)
            && opts.kind.as_deref().is_none_or(|k| ev.kind.label() == k)
            && opts
                .channel
                .as_deref()
                .is_none_or(|c| ev.name.as_ref().map(|n| n.as_str()) == Some(c))
    });
    if let Some(last) = opts.last {
        let skip = events.len().saturating_sub(last);
        events.drain(..skip);
    }
    if opts.json {
        let body: Vec<String> =
            events.iter().map(|(node, ev)| format!("    {}", event_json(*node, ev))).collect();
        println!("{{\n  \"events\": [\n{}\n  ]\n}}", body.join(",\n"));
    } else {
        for (node, ev) in &events {
            println!("{}", render_event(*node, ev));
        }
        println!("-- {} events", events.len());
        for (node, ring) in h.trace_rings() {
            if ring.evicted() > 0 {
                println!("-- n{}: {} older events evicted from the ring", node.0, ring.evicted());
            }
        }
    }
}

fn chain(h: &SimHarness, trace: TraceId, json: bool) {
    let links = h.trace_chain(trace);
    if json {
        let body: Vec<String> =
            links.iter().map(|(node, ev)| format!("    {}", event_json(*node, ev))).collect();
        println!("{{\n  \"trace\": \"{trace}\",\n  \"chain\": [\n{}\n  ]\n}}", body.join(",\n"));
    } else if links.is_empty() {
        println!("no recorded events carry trace {trace}");
    } else {
        println!("causal chain of trace {trace}:");
        for (node, ev) in &links {
            println!("{}", render_event(*node, ev));
        }
    }
}

fn violation_text(v: &Violation) {
    let node = v.node.map(|n| format!("n{}", n.0)).unwrap_or_else(|| "-".into());
    let channel = v.channel.as_ref().map(|c| c.as_str()).unwrap_or("-");
    println!("VIOLATION {} at {}us node={} channel={}", v.invariant, v.at.0, node, channel);
    println!("  {}", v.detail);
    if !v.trace.is_empty() {
        println!("  flight recorder tail:");
        for line in &v.trace {
            println!("  {line}");
        }
    }
    if !v.chain.is_empty() {
        println!("  causal chain:");
        for line in &v.chain {
            println!("  {line}");
        }
    }
}

fn violations(report: &ScenarioReport, json: bool) -> i32 {
    if json {
        let body: Vec<String> = report
            .violations
            .iter()
            .map(|v| {
                let lines = |ls: &[String]| {
                    ls.iter()
                        .map(|l| format!("\"{}\"", json_escape(l)))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                format!(
                    "    {{\"invariant\": \"{}\", \"at_us\": {}, \"node\": {}, \
                     \"channel\": {}, \"detail\": \"{}\", \"trace\": [{}], \"chain\": [{}]}}",
                    json_escape(&v.invariant),
                    v.at.0,
                    v.node.map(|n| n.0.to_string()).unwrap_or_else(|| "null".into()),
                    v.channel
                        .as_ref()
                        .map(|c| format!("\"{}\"", json_escape(c.as_str())))
                        .unwrap_or_else(|| "null".into()),
                    json_escape(&v.detail),
                    lines(&v.trace),
                    lines(&v.chain),
                )
            })
            .collect();
        println!("{{\n  \"violations\": [\n{}\n  ]\n}}", body.join(",\n"));
    } else if report.violations.is_empty() {
        println!("no violations: {} checks passed", report.checks_run);
    } else {
        for v in &report.violations {
            violation_text(v);
        }
    }
    i32::from(!report.violations.is_empty())
}

fn histo_row(label: &str, h: &LatencyHistogram) -> String {
    // Empty histograms emit the same field set as populated ones
    // (`count=0`, `-` bounds) so text-mode output parses uniformly,
    // mirroring the JSON mode's explicit nulls.
    let bound = |v: Option<u64>| v.map(|x| format!("{x}us")).unwrap_or_else(|| "-".into());
    format!(
        "  {label:<18} count={:<8} p50<={} p99<={} p999<={}",
        h.count(),
        bound(h.p50_us()),
        bound(h.p99_us()),
        bound(h.p999_us())
    )
}

fn histo_json(label: &str, h: &LatencyHistogram) -> String {
    format!(
        "\"{label}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        h.count(),
        h.p50_us().map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
        h.p99_us().map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
        h.p999_us().map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
    )
}

fn histo(h: &SimHarness, json: bool) {
    let mut nodes: Vec<NodeId> = h.trace_rings().iter().map(|(n, _)| *n).collect();
    nodes.sort();
    if json {
        let body: Vec<String> = nodes
            .iter()
            .filter_map(|n| h.container(*n).map(|c| (n, c.stats())))
            .map(|(n, s)| {
                format!(
                    "    {{\"node\": {}, {}, {}, {}, {}}}",
                    n.0,
                    histo_json("publish_to_deliver", &s.publish_to_deliver),
                    histo_json("event_to_deliver", &s.event_to_deliver),
                    histo_json("call_rtt", &s.call_rtt),
                    histo_json("rto_recovery", &s.rto_recovery),
                )
            })
            .collect();
        println!("{{\n  \"nodes\": [\n{}\n  ]\n}}", body.join(",\n"));
    } else {
        for n in nodes {
            let Some(c) = h.container(n) else { continue };
            let s = c.stats();
            println!("n{}:", n.0);
            println!("{}", histo_row("publish_to_deliver", &s.publish_to_deliver));
            println!("{}", histo_row("event_to_deliver", &s.event_to_deliver));
            println!("{}", histo_row("call_rtt", &s.call_rtt));
            println!("{}", histo_row("rto_recovery", &s.rto_recovery));
        }
    }
}

fn main() {
    let opts = parse_args();
    if opts.scenario == "list" {
        for name in corpus::NAMES {
            println!("{name}");
        }
        return;
    }
    let cfg = ScenarioConfig::quick(opts.seed);
    let Some(mut chaos) = corpus::build(&opts.scenario, &cfg) else {
        eprintln!(
            "error: unknown scenario `{}`; known: {}",
            opts.scenario,
            corpus::NAMES.join(", ")
        );
        std::process::exit(2);
    };
    let report = chaos.run();
    let h = chaos.runner.harness();
    let code = match &opts.mode {
        Mode::Dump => {
            dump(h, &opts);
            0
        }
        Mode::Chain(id) => {
            chain(h, *id, opts.json);
            0
        }
        Mode::Violations => violations(&report, opts.json),
        Mode::Histo => {
            histo(h, opts.json);
            0
        }
    };
    std::process::exit(code);
}
