//! `marea-loadtest` — rate-controlled workload generator over the sim
//! harness, with the metrics timeline sampling underneath.
//!
//! ```text
//! marea-loadtest list
//! marea-loadtest <workload|all> [--pairs N] [--rate HZ] [--payload BYTES]
//!     [--warmup-ms N] [--window-ms N] [--windows N] [--sample-period-ms N]
//!     [--seed N] [--json PATH] [--out-dir DIR]
//! marea-loadtest compare <baseline.json> <fresh.json>
//!     [--p99-pct N] [--goodput-pct N]
//! ```
//!
//! Without flags a workload runs at its checked-in baseline
//! parameters, so `marea-loadtest all --out-dir .` regenerates every
//! `BENCH_loadtest_<workload>.json` byte for byte; `compare` is the CI
//! perf-regression gate over two such documents.

use std::process::ExitCode;

use marea_bench::loadtest::{
    compare_overall, report_json, run_loadtest, LoadtestConfig, LoadtestReport, Workload,
    GOODPUT_DROP_PCT, P99_RISE_PCT,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: marea-loadtest list\n       marea-loadtest <workload|all> [--pairs N] [--rate HZ] \
         [--payload BYTES]\n           [--warmup-ms N] [--window-ms N] [--windows N] \
         [--sample-period-ms N]\n           [--seed N] [--json PATH] [--out-dir DIR]\n       \
         marea-loadtest compare <baseline.json> <fresh.json> [--p99-pct N] [--goodput-pct N]\n\
         workloads: {}",
        Workload::ALL.map(Workload::name).join(" ")
    );
    ExitCode::from(2)
}

fn parse_u64(flag: &str, value: Option<String>) -> Result<u64, String> {
    let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse().map_err(|_| format!("{flag}: `{v}` is not a number"))
}

fn print_text(report: &LoadtestReport) {
    let c = &report.config;
    println!(
        "workload {}: pairs={} rate={}Hz payload={}B warmup={}ms window={}ms seed={}",
        c.workload.name(),
        c.pairs,
        c.rate_hz,
        c.payload_bytes,
        c.warmup_ms,
        c.window_ms,
        c.seed
    );
    println!(
        "  {:<8} {:>9} {:>10} {:>9} {:>12} {:>7} {:>8} {:>8} {:>8}",
        "window",
        "offered",
        "delivered",
        "rate_hz",
        "goodput_bps",
        "count",
        "p50_us",
        "p99_us",
        "p999_us"
    );
    let cell = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "-".into());
    let row = |label: String, w: &marea_bench::loadtest::WindowReport| {
        println!(
            "  {:<8} {:>9} {:>10} {:>9} {:>12} {:>7} {:>8} {:>8} {:>8}",
            label,
            w.offered,
            w.delivered,
            w.achieved_hz,
            w.goodput_bps,
            w.latency.count,
            cell(w.latency.p50_us),
            cell(w.latency.p99_us),
            cell(w.latency.p999_us)
        );
    };
    for w in &report.windows {
        row(w.index.to_string(), w);
    }
    row("overall".into(), &report.overall);
    println!(
        "  metrics: {} samples, {} node frames, {} link frames",
        report.metrics_samples, report.metrics_frames, report.metrics_links
    );
}

fn run(
    workloads: &[Workload],
    overrides: &[(String, u64)],
    json: Option<&str>,
    out_dir: Option<&str>,
) -> Result<(), String> {
    if json.is_some() && workloads.len() != 1 {
        return Err("--json takes a single workload; use --out-dir with `all`".into());
    }
    for &workload in workloads {
        let mut cfg = LoadtestConfig::baseline(workload);
        for (flag, v) in overrides {
            match flag.as_str() {
                "--pairs" => cfg.pairs = *v as u32,
                "--rate" => cfg.rate_hz = *v,
                "--payload" => cfg.payload_bytes = *v as usize,
                "--warmup-ms" => cfg.warmup_ms = *v,
                "--window-ms" => cfg.window_ms = *v,
                "--windows" => cfg.windows = *v as u32,
                "--sample-period-ms" => cfg.sample_period_ms = *v,
                "--seed" => cfg.seed = *v,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if cfg.windows == 0 || cfg.window_ms == 0 {
            return Err("--windows and --window-ms must be positive".into());
        }
        let report = run_loadtest(&cfg);
        if let Some(dir) = out_dir {
            let path = format!("{dir}/BENCH_loadtest_{}.json", workload.name());
            std::fs::write(&path, report_json(&report)).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        } else if let Some(path) = json {
            std::fs::write(path, report_json(&report)).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        } else {
            print_text(&report);
        }
    }
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let mut paths = Vec::new();
    let mut p99_pct = P99_RISE_PCT;
    let mut goodput_pct = GOODPUT_DROP_PCT;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--p99-pct" => p99_pct = parse_u64("--p99-pct", it.next())?,
            "--goodput-pct" => goodput_pct = parse_u64("--goodput-pct", it.next())?,
            _ => paths.push(arg),
        }
    }
    let [baseline, fresh] = paths.as_slice() else {
        return Err("compare needs exactly two report paths".into());
    };
    let base = std::fs::read_to_string(baseline).map_err(|e| format!("{baseline}: {e}"))?;
    let new = std::fs::read_to_string(fresh).map_err(|e| format!("{fresh}: {e}"))?;
    match compare_overall(&base, &new, p99_pct, goodput_pct) {
        Ok(summary) => {
            println!("{fresh}: {summary}");
            Ok(())
        }
        Err(violations) => Err(format!("{fresh}: REGRESSION\n  {}", violations.join("\n  "))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "list" => {
            for w in Workload::ALL {
                let b = LoadtestConfig::baseline(w);
                println!(
                    "{:<16} pairs={} rate={}Hz payload={}B",
                    w.name(),
                    b.pairs,
                    b.rate_hz,
                    b.payload_bytes
                );
            }
            Ok(())
        }
        "compare" => compare(&args[1..]),
        name => {
            let workloads: Vec<Workload> = if name == "all" {
                Workload::ALL.to_vec()
            } else if let Some(w) = Workload::parse(name) {
                vec![w]
            } else {
                eprintln!("unknown workload `{name}`");
                return usage();
            };
            let mut overrides = Vec::new();
            let mut json = None;
            let mut out_dir = None;
            let mut it = args[1..].iter().cloned();
            let mut bad = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--json" => json = it.next(),
                    "--out-dir" => out_dir = it.next(),
                    flag if flag.starts_with("--") => match parse_u64(flag, it.next()) {
                        Ok(v) => overrides.push((flag.to_string(), v)),
                        Err(e) => bad = Some(e),
                    },
                    other => bad = Some(format!("unexpected argument `{other}`")),
                }
            }
            match bad {
                Some(e) => Err(e),
                None => run(&workloads, &overrides, json.as_deref(), out_dir.as_deref()),
            }
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("marea-loadtest: {e}");
            ExitCode::FAILURE
        }
    }
}
