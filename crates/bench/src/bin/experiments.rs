//! Regenerates every figure/claim table recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run -p marea-bench --release --bin experiments [-- <id>...]`
//! where `<id>` is one of `f1 f2 f3 f4 c1 c2 c3 c4 c5 c6 c7 c8 c9 c10
//! c11` or `all` (default). All numbers are virtual-time/deterministic:
//! identical on every machine.
//!
//! `--json <section> <path>` additionally writes one section's numbers
//! as a machine-readable document, where `<section>` is `suite` (the
//! full table set), `fec` (the C9 loss sweep), `trace` (the C10
//! flight-recorder comparison) or `swarm` (the C11 fleet-size sweep);
//! `--json all <dir>` writes every section
//! to its checked-in filename inside `<dir>`. The checked-in copies at
//! the repo root regenerate with
//! `cargo run -p marea-bench --release --bin experiments -- --json all .`
//! (`BENCH_experiments.json`, `BENCH_fec_loss.json`,
//! `BENCH_trace_overhead.json`, `BENCH_swarm_scale.json`). The
//! pre-unification spellings
//! `--json <path>`, `--json-fec <path>` and `--json-trace <path>` are
//! kept as deprecated aliases for `--json suite|fec|trace <path>`.

use marea_bench::*;
use marea_core::SchedulerKind;

/// One `--json` request: which document, written where.
#[derive(Clone, Copy, PartialEq, Eq)]
enum JsonSection {
    Suite,
    Fec,
    Trace,
    Swarm,
    All,
}

impl JsonSection {
    fn parse(s: &str) -> Option<JsonSection> {
        match s {
            "suite" => Some(JsonSection::Suite),
            "fec" => Some(JsonSection::Fec),
            "trace" => Some(JsonSection::Trace),
            "swarm" => Some(JsonSection::Swarm),
            "all" => Some(JsonSection::All),
            _ => None,
        }
    }
}

fn main() {
    let mut json_requests: Vec<(JsonSection, String)> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("error: {flag} needs an output path");
        std::process::exit(2);
    };
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--json" => match raw.next() {
                Some(tok) => match JsonSection::parse(&tok) {
                    Some(section) => match raw.next() {
                        Some(path) => json_requests.push((section, path)),
                        None => missing(&format!("--json {tok}")),
                    },
                    // Deprecated alias: a bare path means the full suite.
                    None => {
                        eprintln!("note: `--json <path>` is deprecated; use `--json suite <path>`");
                        json_requests.push((JsonSection::Suite, tok));
                    }
                },
                None => missing("--json"),
            },
            "--json-fec" => match raw.next() {
                Some(path) => {
                    eprintln!("note: `--json-fec` is deprecated; use `--json fec <path>`");
                    json_requests.push((JsonSection::Fec, path));
                }
                None => missing("--json-fec"),
            },
            "--json-trace" => match raw.next() {
                Some(path) => {
                    eprintln!("note: `--json-trace` is deprecated; use `--json trace <path>`");
                    json_requests.push((JsonSection::Trace, path));
                }
                None => missing("--json-trace"),
            },
            _ => args.push(a),
        }
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    if want("f1") {
        f1_discovery();
    }
    if want("f2") {
        f2_local_vs_remote();
    }
    if want("c1") {
        c1_event_vs_rpc();
    }
    if want("c2") {
        c2_fanout();
    }
    if want("c3") {
        c3_arq_vs_tcp();
    }
    if want("c4") {
        c4_file_distribution();
    }
    if want("c5") {
        c5_scheduler();
    }
    if want("c6") {
        c6_failover();
    }
    if want("c7") {
        c7_bypass();
    }
    if want("c8") {
        c8_scenario_failover();
    }
    if want("c9") {
        c9_fec_loss();
    }
    if want("c10") {
        c10_trace_overhead();
    }
    if want("c11") {
        c11_swarm_scale();
    }

    // Each document always covers its full section regardless of which
    // ids were requested above, so the checked-in copies never depend
    // on the table selection.
    let write_doc = |path: &str, doc: String| match std::fs::write(path, doc) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(2);
        }
    };
    for (section, path) in json_requests {
        match section {
            JsonSection::Suite => write_doc(&path, json_document()),
            JsonSection::Fec => write_doc(&path, fec_json_document()),
            JsonSection::Trace => write_doc(&path, trace_json_document()),
            JsonSection::Swarm => write_doc(&path, swarm_json_document()),
            JsonSection::All => {
                write_doc(&format!("{path}/BENCH_experiments.json"), json_document());
                write_doc(&format!("{path}/BENCH_fec_loss.json"), fec_json_document());
                write_doc(&format!("{path}/BENCH_trace_overhead.json"), trace_json_document());
                write_doc(&format!("{path}/BENCH_swarm_scale.json"), swarm_json_document());
            }
        }
    }
}

/// The full suite as JSON. Runs every experiment with the same
/// parameters the tables use — all virtual-time, so the output is
/// byte-identical on every machine and safe to check in.
fn json_document() -> String {
    fn section(out: &mut String, last: bool, id: &str, rows: Vec<String>) {
        out.push_str(&format!("  \"{id}\": [\n"));
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]");
        out.push_str(if last { "\n" } else { ",\n" });
    }

    let mut out = String::from("{\n");

    let f1 = [2u32, 4, 8, 16]
        .iter()
        .map(|&n| {
            let ms = bench_discovery(n, 100 + u64::from(n));
            format!("    {{\"nodes\": {n}, \"full_mesh_ms\": {ms}}}")
        })
        .collect();
    section(&mut out, false, "f1_discovery", f1);

    let (local, remote) = bench_local_vs_remote_event(100, 200);
    let f2 = vec![
        format!(
            "    {{\"path\": \"same container\", \"mean_us\": {:.3}, \"max_us\": {}}}",
            local.mean_us, local.max_us
        ),
        format!(
            "    {{\"path\": \"across the LAN\", \"mean_us\": {:.3}, \"max_us\": {}}}",
            remote.mean_us, remote.max_us
        ),
    ];
    section(&mut out, false, "f2_local_vs_remote", f2);

    let c1 = [8usize, 64, 512]
        .iter()
        .map(|&payload| {
            let ev = bench_event_latency(payload, 100, 0.0, 300);
            let rpc = bench_rpc_rtt(payload, 100, 0.0, 300);
            format!(
                "    {{\"payload_bytes\": {payload}, \"event_mean_us\": {:.3}, \
                 \"rpc_mean_us\": {:.3}}}",
                ev.mean_us, rpc.mean_us
            )
        })
        .collect();
    section(&mut out, false, "c1_event_vs_rpc", c1);

    let c2 = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&subs| {
            let m = bench_var_fanout(subs, 100, true, 400);
            let u = bench_var_fanout(subs, 100, false, 400);
            format!(
                "    {{\"subscribers\": {subs}, \"multicast_datagrams\": {}, \
                 \"unicast_datagrams\": {}, \"unicast_bytes\": {}}}",
                m.publisher_datagrams, u.publisher_datagrams, u.publisher_bytes
            )
        })
        .collect();
    section(&mut out, false, "c2_fanout", c2);

    let c3 = [0.0, 0.001, 0.01, 0.05, 0.10]
        .iter()
        .map(|&loss| {
            let arq = bench_arq_under_loss(loss, 100, 64, 20_000, 500);
            let tcp = bench_tcp_under_loss(loss, 100, 64, 20_000, 500);
            format!(
                "    {{\"loss\": {loss}, \"arq_mean_us\": {:.3}, \"tcp_mean_us\": {:.3}, \
                 \"arq_max_us\": {}, \"tcp_max_us\": {}, \"arq_bytes\": {}, \"tcp_bytes\": {}}}",
                arq.latency.mean_us,
                tcp.latency.mean_us,
                arq.latency.max_us,
                tcp.latency.max_us,
                arq.wire_bytes,
                tcp.wire_bytes
            )
        })
        .collect();
    section(&mut out, false, "c3_arq_vs_tcp", c3);

    let c4 = [
        (64 * 1024usize, 4u32, 0.0),
        (64 * 1024, 16, 0.0),
        (1024 * 1024, 4, 0.0),
        (1024 * 1024, 16, 0.0),
        (1024 * 1024, 8, 0.02),
        (4 * 1024 * 1024, 8, 0.0),
    ]
    .iter()
    .map(|&(size, subs, loss)| {
        let m = bench_file_multicast(size, subs, loss, 600);
        let u = bench_file_unicast_equivalent(size, subs, loss, 600);
        format!(
            "    {{\"size_bytes\": {size}, \"subscribers\": {subs}, \"loss\": {loss}, \
             \"multicast_bytes\": {}, \"unicast_bytes\": {}, \"multicast_completion_ms\": {}}}",
            m.publisher_bytes, u.publisher_bytes, m.completion_ms
        )
    })
    .collect();
    section(&mut out, false, "c4_file_distribution", c4);

    let c5 = [0u32, 50, 150, 400]
        .iter()
        .map(|&bg| {
            let p = bench_scheduler_latency(SchedulerKind::Priority, bg, 50, 700);
            let f = bench_scheduler_latency(SchedulerKind::Fifo, bg, 50, 700);
            format!(
                "    {{\"background_per_tick\": {bg}, \"priority_mean_us\": {:.3}, \
                 \"fifo_mean_us\": {:.3}, \"priority_max_us\": {}, \"fifo_max_us\": {}}}",
                p.mean_us, f.mean_us, p.max_us, f.max_us
            )
        })
        .collect();
    section(&mut out, false, "c5_scheduler", c5);

    let mut c5b = Vec::new();
    for bulk in [150u32, 400, 800] {
        for contract in [false, true] {
            let r = bench_qos_priority(contract, bulk, 50, 700);
            c5b.push(format!(
                "    {{\"bulk_per_tick\": {bulk}, \"contract\": {contract}, \
                 \"critical_mean_us\": {:.3}, \"critical_max_us\": {}, \
                 \"bulk_delivered\": {}, \"queue_drops\": {}}}",
                r.critical.mean_us, r.critical.max_us, r.bulk_delivered, r.queue_drops
            ));
        }
    }
    section(&mut out, false, "c5b_qos_contract", c5b);

    let c6 = [800u64, 801, 802]
        .iter()
        .map(|&seed| {
            let r = bench_failover(seed);
            format!(
                "    {{\"seed\": {seed}, \"blackout_ms\": {}, \"app_errors\": {}, \
                 \"failovers\": {}}}",
                r.blackout_ms, r.errors, r.failovers
            )
        })
        .collect();
    section(&mut out, false, "c6_failover", c6);

    let c7 = [64 * 1024usize, 1024 * 1024, 8 * 1024 * 1024]
        .iter()
        .map(|&size| {
            let (deliveries, wire) = bench_file_bypass(size, 900);
            format!(
                "    {{\"size_bytes\": {size}, \"bypass_deliveries\": {deliveries}, \
                 \"control_wire_bytes\": {wire}}}"
            )
        })
        .collect();
    section(&mut out, false, "c7_bypass", c7);

    let c8 = [810u64, 811, 812]
        .iter()
        .map(|&seed| {
            let r = bench_scenario_failover(seed);
            format!(
                "    {{\"seed\": {seed}, \"recovery_ms\": {}, \"violations\": {}, \
                 \"calls_ok\": {}, \"faults_applied\": {}}}",
                r.recovery_ms, r.violations, r.calls_ok, r.events_applied
            )
        })
        .collect();
    section(&mut out, false, "c8_scenario_failover", c8);

    section(&mut out, true, "c10_trace_overhead", c10_rows());

    out.push('}');
    out.push('\n');
    out
}

/// C9 parameters shared by the table, the JSON document and the CI
/// smoke gate in `marea_bench::tests` — bulk mode (back-to-back sends)
/// so goodput, not the send interval, is what the sweep measures.
const C9_N: u32 = 200;
const C9_MSG_LEN: usize = 64;
const C9_SEED: u64 = 9;

/// The C9 loss sweep as JSON. Everything is virtual-time and the
/// goodput division is integer, so the document is byte-identical on
/// every machine and safe to check in.
fn fec_json_document() -> String {
    let mut out = String::from("{\n  \"c9_fec_loss\": [\n");
    let rows = bench_fec_loss_sweep(C9_N, C9_MSG_LEN, C9_SEED);
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"loss_permille\": {}, \"payload_bytes\": {}, \
                 \"arq_goodput_bps\": {}, \"arq_fec_goodput_bps\": {}, \
                 \"tcp_goodput_bps\": {}, \"arq_completion_us\": {}, \
                 \"arq_fec_completion_us\": {}, \"arq_wire_bytes\": {}, \
                 \"arq_fec_wire_bytes\": {}, \"arq_retransmissions\": {}, \
                 \"arq_fec_retransmissions\": {}}}",
                r.loss_permille,
                r.payload_bytes,
                r.arq.goodput_bps(r.payload_bytes),
                r.arq_fec.goodput_bps(r.payload_bytes),
                r.tcp.goodput_bps(r.payload_bytes),
                r.arq.completion_us,
                r.arq_fec.completion_us,
                r.arq.wire_bytes,
                r.arq_fec.wire_bytes,
                r.arq.retransmissions,
                r.arq_fec.retransmissions,
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn c9_fec_loss() {
    banner(
        "C9",
        "bulk goodput under radio loss: plain ARQ vs ARQ+FEC vs TCP",
        "§4.2 — repair data reconstructs erased frames without paying the retransmission RTT",
    );
    println!(
        "   {:<8} {:>14} {:>16} {:>14} {:>10} {:>12} {:>12}",
        "loss", "arq bps", "arq+fec bps", "tcp bps", "fec gain", "arq retx", "fec retx"
    );
    for r in bench_fec_loss_sweep(C9_N, C9_MSG_LEN, C9_SEED) {
        let arq = r.arq.goodput_bps(r.payload_bytes);
        let fec = r.arq_fec.goodput_bps(r.payload_bytes);
        println!(
            "   {:<8} {:>14} {:>16} {:>14} {:>9.1}x {:>12} {:>12}",
            format!("{:.0}%", r.loss_permille as f64 / 10.0),
            arq,
            fec,
            r.tcp.goodput_bps(r.payload_bytes),
            fec as f64 / arq.max(1) as f64,
            r.arq.retransmissions,
            r.arq_fec.retransmissions,
        );
    }
}

fn banner(id: &str, title: &str, anchor: &str) {
    println!("\n== {id}: {title}");
    println!("   paper anchor: {anchor}");
}

fn f1_discovery() {
    banner("F1", "fleet discovery time", "Fig. 1 — services distributed over nodes");
    println!("   {:<8} {:>18}", "nodes", "full-mesh (ms)");
    for n in [2u32, 4, 8, 16] {
        let ms = bench_discovery(n, 100 + u64::from(n));
        println!("   {n:<8} {ms:>18}");
    }
}

fn f2_local_vs_remote() {
    banner(
        "F2",
        "in-container vs networked delivery",
        "Fig. 2 — the container communicates services locally or across the LAN",
    );
    let (local, remote) = bench_local_vs_remote_event(100, 200);
    println!("   {:<22} {:>12} {:>12}", "path", "mean (µs)", "max (µs)");
    println!("   {:<22} {:>12.0} {:>12}", "same container", local.mean_us, local.max_us);
    println!("   {:<22} {:>12.0} {:>12}", "across the LAN", remote.mean_us, remote.max_us);
    if local.mean_us < 1.0 {
        println!("   → local delivery completes within the same tick (no frames, no links)");
    } else {
        println!(
            "   → local bypass is {:.1}x faster (no frames, no links)",
            remote.mean_us / local.mean_us
        );
    }
}

fn c1_event_vs_rpc() {
    banner(
        "C1",
        "event one-way latency vs remote-invocation round trip",
        "§4.3 — \"events seem faster than their function equivalent\"",
    );
    println!(
        "   {:<10} {:>16} {:>16} {:>10}",
        "payload", "event mean (µs)", "rpc mean (µs)", "rpc/event"
    );
    for payload in [8usize, 64, 512] {
        let ev = bench_event_latency(payload, 100, 0.0, 300);
        let rpc = bench_rpc_rtt(payload, 100, 0.0, 300);
        println!(
            "   {:<10} {:>16.0} {:>16.0} {:>9.1}x",
            payload,
            ev.mean_us,
            rpc.mean_us,
            rpc.mean_us / ev.mean_us.max(1.0)
        );
    }
}

fn c2_fanout() {
    banner(
        "C2",
        "variable distribution wire cost vs subscriber count",
        "§4.1 — multicast \"allows optimizing the bandwidth use\"",
    );
    println!(
        "   {:<6} {:>18} {:>18} {:>18} {:>10}",
        "subs", "multicast dgrams", "unicast dgrams", "unicast bytes", "ratio"
    );
    for subs in [1u32, 2, 4, 8, 16, 32] {
        let m = bench_var_fanout(subs, 100, true, 400);
        let u = bench_var_fanout(subs, 100, false, 400);
        println!(
            "   {:<6} {:>18} {:>18} {:>18} {:>9.1}x",
            subs,
            m.publisher_datagrams,
            u.publisher_datagrams,
            u.publisher_bytes,
            u.publisher_datagrams as f64 / m.publisher_datagrams.max(1) as f64
        );
    }
}

fn c3_arq_vs_tcp() {
    banner(
        "C3",
        "sporadic event delivery: middleware ARQ vs generic TCP",
        "§4.2 — app-layer retransmission \"more efficient ... than the generic case provided by the TCP stack\"",
    );
    println!(
        "   {:<8} {:>14} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "loss", "arq mean µs", "tcp mean µs", "arq max µs", "tcp max µs", "arq bytes", "tcp bytes"
    );
    for loss in [0.0, 0.001, 0.01, 0.05, 0.10] {
        let arq = bench_arq_under_loss(loss, 100, 64, 20_000, 500);
        let tcp = bench_tcp_under_loss(loss, 100, 64, 20_000, 500);
        println!(
            "   {:<8} {:>14.0} {:>14.0} {:>14} {:>14} {:>12} {:>12}",
            format!("{:.1}%", loss * 100.0),
            arq.latency.mean_us,
            tcp.latency.mean_us,
            arq.latency.max_us,
            tcp.latency.max_us,
            arq.wire_bytes,
            tcp.wire_bytes,
        );
    }
}

fn c4_file_distribution() {
    banner(
        "C4",
        "file distribution: multicast MFTP vs unicast-equivalent",
        "§4.4 — \"huge performance benefits\" of the dedicated primitive",
    );
    println!(
        "   {:<10} {:<6} {:<6} {:>16} {:>16} {:>10} {:>14}",
        "size", "subs", "loss", "mcast bytes", "ucast bytes", "saving", "mcast ms"
    );
    for (size, subs, loss) in [
        (64 * 1024, 4u32, 0.0),
        (64 * 1024, 16, 0.0),
        (1024 * 1024, 4, 0.0),
        (1024 * 1024, 16, 0.0),
        (1024 * 1024, 8, 0.02),
        (4 * 1024 * 1024, 8, 0.0),
    ] {
        let m = bench_file_multicast(size, subs, loss, 600);
        let u = bench_file_unicast_equivalent(size, subs, loss, 600);
        println!(
            "   {:<10} {:<6} {:<6} {:>16} {:>16} {:>9.1}x {:>14}",
            format!("{}KiB", size / 1024),
            subs,
            format!("{:.0}%", loss * 100.0),
            m.publisher_bytes,
            u.publisher_bytes,
            u.publisher_bytes as f64 / m.publisher_bytes.max(1) as f64,
            m.completion_ms,
        );
    }
}

fn c5_scheduler() {
    banner(
        "C5",
        "event handler latency under load: priority vs FIFO scheduler",
        "§6 — \"a simple thread pool with fixed priorities for each named primitive\"",
    );
    println!(
        "   {:<22} {:>14} {:>14} {:>14} {:>14}",
        "background load", "prio mean µs", "fifo mean µs", "prio max µs", "fifo max µs"
    );
    for bg in [0u32, 50, 150, 400] {
        let p = bench_scheduler_latency(SchedulerKind::Priority, bg, 50, 700);
        let f = bench_scheduler_latency(SchedulerKind::Fifo, bg, 50, 700);
        println!(
            "   {:<22} {:>14.0} {:>14.0} {:>14} {:>14}",
            format!("{bg} samples/tick"),
            p.mean_us,
            f.mean_us,
            p.max_us,
            f.max_us
        );
    }

    println!(
        "\n   C5b — per-subscription QoS contract (EventQos::bulk + bounded inbox)\n   \
         {:<22} {:>16} {:>16} {:>14} {:>12}",
        "bulk load", "critical mean µs", "critical max µs", "bulk delivered", "queue drops"
    );
    for bulk in [150u32, 400, 800] {
        for contract in [false, true] {
            let r = bench_qos_priority(contract, bulk, 50, 700);
            println!(
                "   {:<22} {:>16.0} {:>16} {:>14} {:>12}",
                format!("{bulk}/tick {}", if contract { "(contract)" } else { "(default)" }),
                r.critical.mean_us,
                r.critical.max_us,
                r.bulk_delivered,
                r.queue_drops
            );
        }
    }
}

fn c6_failover() {
    banner(
        "C6",
        "provider failover",
        "§4.3 — \"redirect requests to the redundant service ... continue its mission\"",
    );
    println!("   {:<8} {:>16} {:>14} {:>12}", "seed", "blackout (ms)", "app errors", "failovers");
    for seed in [800u64, 801, 802] {
        let r = bench_failover(seed);
        println!("   {:<8} {:>16} {:>14} {:>12}", seed, r.blackout_ms, r.errors, r.failovers);
    }
}

fn c8_scenario_failover() {
    banner(
        "C8",
        "chaos scenario: publisher failover recovery time",
        "§4.3 — crash detection + transparent failover, measured by the RTO invariant",
    );
    println!(
        "   {:<8} {:>16} {:>12} {:>12} {:>12}",
        "seed", "recovery (ms)", "violations", "calls ok", "faults"
    );
    for seed in [810u64, 811, 812] {
        let r = bench_scenario_failover(seed);
        println!(
            "   {:<8} {:>16} {:>12} {:>12} {:>12}",
            seed, r.recovery_ms, r.violations, r.calls_ok, r.events_applied
        );
    }
}

fn c7_bypass() {
    banner(
        "C7",
        "same-node file bypass",
        "§4.4 — \"the transfer is bypassed by the container as direct access to the resource\"",
    );
    println!("   {:<10} {:>20} {:>22}", "size", "bypass deliveries", "wire bytes (control)");
    for size in [64 * 1024usize, 1024 * 1024, 8 * 1024 * 1024] {
        let (deliveries, wire) = bench_file_bypass(size, 900);
        println!("   {:<10} {:>20} {:>22}", format!("{}KiB", size / 1024), deliveries, wire);
    }
}

/// C10 parameters shared by the table, the JSON document and the CI
/// regeneration gate: the same worst-case flood the wall-clock gate in
/// `marea_bench::tests::trace_overhead_stays_within_five_percent` times
/// (every sample is tiny, so tracing cost has nowhere to hide).
const C10_BG_PER_TICK: u32 = 800;
const C10_EVENTS: u32 = 100;
const C10_SEED: u64 = 710;

fn c10_rows() -> Vec<String> {
    [true, false]
        .iter()
        .map(|&traced| {
            let r = bench_trace_overhead_run(traced, C10_BG_PER_TICK, C10_EVENTS, C10_SEED);
            format!(
                "    {{\"traced\": {traced}, \"vars_delivered\": {}, \
                 \"critical_events\": {}, \"critical_mean_us\": {:.1}, \
                 \"critical_max_us\": {}, \"trace_events\": {}, \
                 \"histogram_count\": {}, \"wire_bytes\": {}}}",
                r.vars_delivered,
                r.critical.count,
                r.critical.mean_us,
                r.critical.max_us,
                r.trace_events,
                r.histogram_count,
                r.wire_bytes,
            )
        })
        .collect()
}

/// The C10 flight-recorder overhead comparison as JSON. Only
/// virtual-time quantities appear (latencies, wire bytes, recorder
/// counts) so the document is byte-identical on every machine; the
/// wall-clock side of the claim is the ignored release-mode gate test
/// named in `wall_clock_gate`, which CI runs alongside the diff.
fn trace_json_document() -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"params\": {{\"bg_per_tick\": {C10_BG_PER_TICK}, \
         \"critical_events\": {C10_EVENTS}, \"seed\": {C10_SEED}}},\n"
    ));
    out.push_str("  \"c10_trace_overhead\": [\n");
    out.push_str(&c10_rows().join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(
        "  \"wall_clock_gate\": \"trace_overhead_stays_within_five_percent: \
         traced wall-clock <= 1.05x untraced, release mode\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}

/// C11 seed shared by the table and the JSON document, so the
/// checked-in copy regenerates from the same runs the table prints.
const C11_SEED: u64 = 1_100;

fn c11_rows() -> Vec<marea_bench::SwarmScaleRow> {
    bench_swarm_scale(C11_SEED)
}

/// The C11 fleet-size sweep as JSON. Every field is virtual-time or a
/// deterministic counter, so the document is byte-identical on every
/// machine; the wall-clock ticks/sec side of the swarm claim is the
/// ignored release-mode floor test named in `wall_clock_gate`.
fn swarm_json_document() -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"params\": {{\"tick_us\": {SWARM_TICK_US}, \"settle_ms\": {SWARM_SETTLE_MS}, \
         \"window_ms\": {SWARM_WINDOW_MS}, \"seed\": {C11_SEED}}},\n"
    ));
    out.push_str("  \"c11_swarm_scale\": [\n");
    let body: Vec<String> = c11_rows()
        .iter()
        .map(|r| {
            format!(
                "    {{\"nodes\": {}, \"ticks\": {}, \"virtual_ms\": {}, \
                 \"beacons_delivered\": {}, \"datagrams\": {}, \"wire_bytes\": {}, \
                 \"full_mesh\": {}}}",
                r.nodes,
                r.ticks,
                r.virtual_ms,
                r.beacons_delivered,
                r.datagrams,
                r.wire_bytes,
                r.full_mesh,
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(
        "  \"wall_clock_gate\": \"swarm_ticks_per_sec_floor_at_256_nodes: \
         >= 250k container ticks/sec at 256 nodes, release mode\"\n",
    );
    out.push('}');
    out.push('\n');
    out
}

fn c11_swarm_scale() {
    banner(
        "C11",
        "swarm scale: sim-core wire cost vs fleet size",
        "DESIGN.md §10 — due-date scheduling + digest gossip keep the control plane subquadratic per period",
    );
    println!(
        "   {:<8} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "nodes", "ticks", "beacons", "datagrams", "wire bytes", "full mesh"
    );
    for r in c11_rows() {
        println!(
            "   {:<8} {:>12} {:>12} {:>12} {:>14} {:>10}",
            r.nodes, r.ticks, r.beacons_delivered, r.datagrams, r.wire_bytes, r.full_mesh
        );
    }
    println!("   wall-clock gate: tests::swarm_ticks_per_sec_floor_at_256_nodes (release, >=250k)");
}

fn c10_trace_overhead() {
    banner(
        "C10",
        "flight-recorder overhead: traced vs untraced worst-case flood",
        "DESIGN.md §8 — the recorder must be cheap enough to leave on in flight",
    );
    println!(
        "   {:<10} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "recorder", "vars", "criticals", "mean us", "max us", "trace evts", "wire bytes"
    );
    let mut wire = [0u64; 2];
    for (i, traced) in [true, false].into_iter().enumerate() {
        let r = bench_trace_overhead_run(traced, C10_BG_PER_TICK, C10_EVENTS, C10_SEED);
        wire[i] = r.wire_bytes;
        println!(
            "   {:<10} {:>10} {:>10} {:>12.1} {:>12} {:>12} {:>12}",
            if traced { "on" } else { "off" },
            r.vars_delivered,
            r.critical.count,
            r.critical.mean_us,
            r.critical.max_us,
            r.trace_events,
            r.wire_bytes,
        );
    }
    println!(
        "   wire overhead of trace ids: {:.2}% ({} extra bytes)",
        (wire[0] as f64 / wire[1] as f64 - 1.0) * 100.0,
        wire[0] - wire[1],
    );
    println!("   wall-clock gate: tests::trace_overhead_stays_within_five_percent (release, <=5%)");
}
