//! The discrete-event network core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{LinkConfig, NetConfig};
use crate::stats::NetStats;

/// Where a datagram is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// One node.
    Unicast(u32),
    /// Every member of a multicast group (except the sender).
    Multicast(u32),
    /// Every registered node (except the sender).
    Broadcast,
}

/// Error returned by [`SimSocket::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// Payload exceeds the sender's link MTU (datagram networks do not
    /// fragment here; the protocol layer must).
    PayloadExceedsMtu {
        /// Attempted payload size.
        size: usize,
        /// Link MTU.
        mtu: usize,
    },
    /// The sending node was removed from the network.
    UnknownNode(u32),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::PayloadExceedsMtu { size, mtu } => {
                write!(f, "payload of {size} bytes exceeds mtu {mtu}")
            }
            SendError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl Error for SendError {}

#[derive(Debug)]
struct NodeState {
    inbox: VecDeque<(u32, Bytes)>,
    groups: HashSet<u32>,
    /// Sender's shared-medium serialization horizon (µs).
    tx_busy_until: u64,
}

#[derive(Debug)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    src: u32,
    dst: u32,
    payload: Bytes,
}

// BinaryHeap is a max-heap; order by Reverse((deliver_at, seq)).
impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// Node ids in ascending order: the sanctioned deterministic walk for
/// broadcast/multicast replication (lint rule D1 bans raw hash-map
/// iteration on send paths; `fn sorted_*` bodies are the one place the
/// raw walk may live).
fn sorted_node_ids(nodes: &HashMap<u32, NodeState>) -> Vec<u32> {
    let mut ids: Vec<u32> = nodes.keys().copied().collect();
    ids.sort_unstable();
    ids
}

#[derive(Debug)]
struct SimNetInner {
    now_us: u64,
    rng: SmallRng,
    default_link: LinkConfig,
    links: HashMap<(u32, u32), LinkConfig>,
    partitions: HashSet<(u32, u32)>,
    nodes: HashMap<u32, NodeState>,
    inflight: BinaryHeap<Reverse<InFlight>>,
    next_seq: u64,
    stats: NetStats,
}

impl SimNetInner {
    fn link(&self, src: u32, dst: u32) -> LinkConfig {
        self.links.get(&(src, dst)).copied().unwrap_or(self.default_link)
    }

    fn partitioned(&self, a: u32, b: u32) -> bool {
        self.partitions.contains(&(a, b)) || self.partitions.contains(&(b, a))
    }

    fn enqueue_replica(&mut self, src: u32, dst: u32, payload: &Bytes, depart_at: u64) {
        if self.partitioned(src, dst) {
            self.stats.dropped_partition += 1;
            return;
        }
        let link = self.link(src, dst);
        let observed = self.stats.per_link.entry((src, dst)).or_default();
        observed.attempts += 1;
        if self.rng.gen::<f64>() < link.loss {
            observed.lost += 1;
            self.stats.dropped_loss += 1;
            return;
        }
        let jitter = if link.jitter_us > 0 { self.rng.gen_range(0..=link.jitter_us) } else { 0 };
        let deliver_at = depart_at + link.latency_us + jitter;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.push(Reverse(InFlight {
            deliver_at,
            seq,
            src,
            dst,
            payload: clone_bytes(payload),
        }));
    }

    fn send(&mut self, src: u32, dest: Destination, payload: Bytes) -> Result<(), SendError> {
        let mtu = self.link_mtu(src);
        if payload.len() > mtu {
            self.stats.dropped_mtu += 1;
            return Err(SendError::PayloadExceedsMtu { size: payload.len(), mtu });
        }
        let now = self.now_us;
        let tx_time = self.default_link.tx_time_us(payload.len());
        let depart_at = {
            let node = self.nodes.get_mut(&src).ok_or(SendError::UnknownNode(src))?;
            let start = node.tx_busy_until.max(now);
            node.tx_busy_until = start + tx_time;
            node.tx_busy_until
        };
        self.stats.datagrams_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        let node_stats = self.stats.per_node.entry(src).or_default();
        node_stats.sent += 1;
        node_stats.sent_bytes += payload.len() as u64;

        let targets: Vec<u32> = match dest {
            Destination::Unicast(dst) => {
                if self.nodes.contains_key(&dst) {
                    vec![dst]
                } else {
                    Vec::new()
                }
            }
            Destination::Multicast(group) => sorted_node_ids(&self.nodes)
                .into_iter()
                .filter(|id| {
                    *id != src && self.nodes.get(id).is_some_and(|st| st.groups.contains(&group))
                })
                .collect(),
            Destination::Broadcast => {
                sorted_node_ids(&self.nodes).into_iter().filter(|id| *id != src).collect()
            }
        };
        if targets.is_empty() {
            self.stats.no_receiver += 1;
            return Ok(());
        }
        // `targets` is already sorted: replica order decides how the RNG
        // stream maps onto datagrams (determinism regardless of hash
        // order).
        for dst in targets {
            self.enqueue_replica(src, dst, &payload, depart_at);
        }
        Ok(())
    }

    fn link_mtu(&self, src: u32) -> usize {
        // The sender's NIC MTU: use the default link's MTU unless a
        // src-specific override exists (keyed (src,src)).
        self.links.get(&(src, src)).map(|l| l.mtu).unwrap_or(self.default_link.mtu)
    }

    fn step(&mut self) -> Option<u64> {
        let Reverse(event) = self.inflight.pop()?;
        self.now_us = self.now_us.max(event.deliver_at);
        if let Some(node) = self.nodes.get_mut(&event.dst) {
            self.stats.datagrams_delivered += 1;
            self.stats.bytes_delivered += event.payload.len() as u64;
            let ns = self.stats.per_node.entry(event.dst).or_default();
            ns.delivered += 1;
            ns.delivered_bytes += event.payload.len() as u64;
            node.inbox.push_back((event.src, event.payload));
        }
        Some(self.now_us)
    }
}

fn clone_bytes(b: &Bytes) -> Bytes {
    b.clone() // cheap refcount bump; replicas share the buffer
}

/// Handle to the shared simulated network.
///
/// Cloning is cheap; all clones observe the same virtual time and state.
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct SimNet {
    inner: Arc<Mutex<SimNetInner>>,
}

impl SimNet {
    /// Creates a network from `config`.
    pub fn new(config: NetConfig) -> Self {
        SimNet {
            inner: Arc::new(Mutex::new(SimNetInner {
                now_us: 0,
                rng: SmallRng::seed_from_u64(config.seed),
                default_link: config.default_link,
                links: HashMap::new(),
                partitions: HashSet::new(),
                nodes: HashMap::new(),
                inflight: BinaryHeap::new(),
                next_seq: 0,
                stats: NetStats::default(),
            })),
        }
    }

    /// Registers (or re-attaches to) node `id` and returns its socket.
    pub fn socket(&self, id: u32) -> SimSocket {
        let mut inner = self.inner.lock();
        inner.nodes.entry(id).or_insert_with(|| NodeState {
            inbox: VecDeque::new(),
            groups: HashSet::new(),
            tx_busy_until: 0,
        });
        SimSocket { net: self.clone(), node: id }
    }

    /// Removes a node: pending deliveries to it vanish (counted as
    /// delivered to nobody), and subsequent sends from it fail. Models a
    /// crashed avionics box for the failover experiments.
    pub fn remove_node(&self, id: u32) {
        let mut inner = self.inner.lock();
        inner.nodes.remove(&id);
    }

    /// `true` if the node is registered.
    pub fn has_node(&self, id: u32) -> bool {
        self.inner.lock().nodes.contains_key(&id)
    }

    /// Installs a directed link override between two nodes.
    pub fn set_link(&self, src: u32, dst: u32, link: LinkConfig) {
        self.inner.lock().links.insert((src, dst), link);
    }

    /// Installs a symmetric link override.
    pub fn set_link_symmetric(&self, a: u32, b: u32, link: LinkConfig) {
        let mut inner = self.inner.lock();
        inner.links.insert((a, b), link);
        inner.links.insert((b, a), link);
    }

    /// Replaces the default link applied to pairs without an override.
    pub fn set_default_link(&self, link: LinkConfig) {
        self.inner.lock().default_link = link;
    }

    /// Blocks (or unblocks) traffic between `a` and `b` in both directions.
    pub fn set_partition(&self, a: u32, b: u32, blocked: bool) {
        let mut inner = self.inner.lock();
        if blocked {
            inner.partitions.insert((a, b));
        } else {
            inner.partitions.remove(&(a, b));
            inner.partitions.remove(&(b, a));
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.inner.lock().now_us
    }

    /// Delivers the next in-flight datagram, advancing virtual time to its
    /// arrival. Returns the new time, or `None` when nothing is in flight.
    pub fn step(&self) -> Option<u64> {
        self.inner.lock().step()
    }

    /// Delivers every datagram due at or before `t_us`, then sets time to
    /// `t_us` (even if idle earlier).
    pub fn advance_to(&self, t_us: u64) {
        let mut inner = self.inner.lock();
        loop {
            match inner.inflight.peek() {
                Some(Reverse(ev)) if ev.deliver_at <= t_us => {
                    inner.step();
                }
                _ => break,
            }
        }
        inner.now_us = inner.now_us.max(t_us);
    }

    /// Delivers everything currently in flight (including cascades already
    /// queued); time ends at the last delivery.
    pub fn run_until_idle(&self) {
        while self.step().is_some() {}
    }

    /// Time of the next scheduled delivery.
    pub fn next_event_at(&self) -> Option<u64> {
        self.inner.lock().inflight.peek().map(|Reverse(ev)| ev.deliver_at)
    }

    /// Datagrams currently in flight.
    pub fn inflight_len(&self) -> usize {
        self.inner.lock().inflight.len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// Runs `f` against the live counters without cloning them — the
    /// metrics sampler's per-period hook ([`stats`](SimNet::stats)
    /// copies both per-node and per-link maps, which a periodic sample
    /// path cannot afford).
    pub fn with_stats<R>(&self, f: impl FnOnce(&NetStats) -> R) -> R {
        f(&self.inner.lock().stats)
    }

    /// Resets the counters (not the clock or state); benches call this
    /// between phases.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = NetStats::default();
    }
}

/// Per-node endpoint of a [`SimNet`].
#[derive(Debug, Clone)]
pub struct SimSocket {
    net: SimNet,
    node: u32,
}

impl SimSocket {
    /// This socket's node id.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The network this socket belongs to.
    pub fn network(&self) -> &SimNet {
        &self.net
    }

    /// Sends a datagram.
    ///
    /// # Errors
    ///
    /// [`SendError::PayloadExceedsMtu`] for oversized payloads,
    /// [`SendError::UnknownNode`] if this node was removed.
    pub fn send(&self, dest: Destination, payload: Bytes) -> Result<(), SendError> {
        self.net.inner.lock().send(self.node, dest, payload)
    }

    /// Pops the next delivered datagram, if any.
    pub fn recv(&self) -> Option<(u32, Bytes)> {
        let mut inner = self.net.inner.lock();
        inner.nodes.get_mut(&self.node)?.inbox.pop_front()
    }

    /// Number of datagrams waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.net.inner.lock().nodes.get(&self.node).map_or(0, |n| n.inbox.len())
    }

    /// Joins a multicast group.
    pub fn join(&self, group: u32) {
        let mut inner = self.net.inner.lock();
        if let Some(n) = inner.nodes.get_mut(&self.node) {
            n.groups.insert(group);
        }
    }

    /// Leaves a multicast group.
    pub fn leave(&self, group: u32) {
        let mut inner = self.net.inner.lock();
        if let Some(n) = inner.nodes.get_mut(&self.node) {
            n.groups.remove(&group);
        }
    }

    /// The sender-side MTU this socket sees.
    pub fn mtu(&self) -> usize {
        self.net.inner.lock().link_mtu(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LinkConfig, NetConfig};
    use crate::stats::LinkObserved;

    fn quiet_net(seed: u64) -> SimNet {
        SimNet::new(NetConfig::default().with_seed(seed))
    }

    #[test]
    fn unicast_delivers_with_latency() {
        let net = quiet_net(1);
        let a = net.socket(1);
        let b = net.socket(2);
        a.send(Destination::Unicast(2), Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.pending(), 0, "not before time advances");
        net.run_until_idle();
        assert!(net.now_us() >= 100, "default 100us latency");
        let (src, p) = b.recv().unwrap();
        assert_eq!((src, p.as_ref()), (1, b"x".as_ref()));
    }

    #[test]
    fn multicast_reaches_members_only() {
        let net = quiet_net(2);
        let a = net.socket(1);
        let b = net.socket(2);
        let c = net.socket(3);
        let d = net.socket(4);
        b.join(7);
        c.join(7);
        a.send(Destination::Multicast(7), Bytes::from_static(b"m")).unwrap();
        net.run_until_idle();
        assert_eq!(b.pending(), 1);
        assert_eq!(c.pending(), 1);
        assert_eq!(d.pending(), 0);
        // Sender counted once, deliveries per replica.
        let s = net.stats();
        assert_eq!(s.datagrams_sent, 1);
        assert_eq!(s.datagrams_delivered, 2);
    }

    #[test]
    fn sender_not_in_own_multicast() {
        let net = quiet_net(3);
        let a = net.socket(1);
        a.join(7);
        let b = net.socket(2);
        b.join(7);
        a.send(Destination::Multicast(7), Bytes::from_static(b"m")).unwrap();
        net.run_until_idle();
        assert_eq!(a.pending(), 0);
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let net = quiet_net(4);
        let socks: Vec<_> = (1..=4).map(|i| net.socket(i)).collect();
        socks[0].send(Destination::Broadcast, Bytes::from_static(b"b")).unwrap();
        net.run_until_idle();
        assert_eq!(socks[0].pending(), 0);
        for s in &socks[1..] {
            assert_eq!(s.pending(), 1);
        }
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed: u64| -> u64 {
            let net = SimNet::new(
                NetConfig::default()
                    .with_seed(seed)
                    .with_default_link(LinkConfig::default().with_loss(0.5)),
            );
            let a = net.socket(1);
            let _b = net.socket(2);
            for _ in 0..100 {
                a.send(Destination::Unicast(2), Bytes::from_static(b"p")).unwrap();
            }
            net.run_until_idle();
            net.stats().datagrams_delivered
        };
        let d1 = run(11);
        let d2 = run(11);
        let d3 = run(12);
        assert_eq!(d1, d2, "same seed, same trace");
        assert!(d1 > 20 && d1 < 80, "loss of ~50% observed ({d1}/100)");
        assert!(d1 != d3 || run(13) != d1, "different seeds eventually differ");
    }

    #[test]
    fn per_link_observed_loss_converges_on_the_configured_rate() {
        let net = SimNet::new(
            NetConfig::default()
                .with_seed(21)
                .with_default_link(LinkConfig::default().with_loss(0.2)),
        );
        let a = net.socket(1);
        let _b = net.socket(2);
        for _ in 0..2000 {
            a.send(Destination::Unicast(2), Bytes::from_static(b"p")).unwrap();
        }
        net.run_until_idle();
        let observed = net.stats().link_observed(1, 2);
        assert_eq!(observed.attempts, 2000);
        let permille = observed.loss_permille();
        assert!(
            (160..=240).contains(&permille),
            "measured {permille}‰ should converge on the configured 200‰"
        );
        // The reverse direction carried nothing.
        assert_eq!(net.stats().link_observed(2, 1), LinkObserved::default());
    }

    #[test]
    fn partition_drops_do_not_count_as_loss_attempts() {
        let net = quiet_net(22);
        let a = net.socket(1);
        let _b = net.socket(2);
        net.set_partition(1, 2, true);
        a.send(Destination::Unicast(2), Bytes::from_static(b"p")).unwrap();
        net.run_until_idle();
        // A partition is a topology fact, not link-quality signal: it must
        // not pollute the loss ground truth the FEC estimator is judged by.
        assert_eq!(net.stats().link_observed(1, 2), LinkObserved::default());
        assert_eq!(net.stats().dropped_partition, 1);
    }

    #[test]
    fn mtu_is_enforced() {
        let net = quiet_net(5);
        let a = net.socket(1);
        let _b = net.socket(2);
        let big = Bytes::from(vec![0u8; 2000]);
        let err = a.send(Destination::Unicast(2), big).unwrap_err();
        assert!(matches!(err, SendError::PayloadExceedsMtu { mtu: 1500, .. }));
        assert_eq!(net.stats().dropped_mtu, 1);
    }

    #[test]
    fn bandwidth_serializes_bursts() {
        // 1 Mbit/s: a 125-byte datagram takes 1 ms to serialize. Ten sent
        // back-to-back must arrive spread over ~10 ms, not together.
        let net = SimNet::new(NetConfig::default().with_default_link(
            LinkConfig::default().with_bandwidth_bps(Some(1_000_000)).with_latency_us(0),
        ));
        let a = net.socket(1);
        let _b = net.socket(2);
        for _ in 0..10 {
            a.send(Destination::Unicast(2), Bytes::from(vec![0u8; 125])).unwrap();
        }
        net.run_until_idle();
        assert!(net.now_us() >= 10_000, "serialization spread: now={}", net.now_us());
    }

    #[test]
    fn partition_blocks_both_directions() {
        let net = quiet_net(6);
        let a = net.socket(1);
        let b = net.socket(2);
        net.set_partition(1, 2, true);
        a.send(Destination::Unicast(2), Bytes::from_static(b"x")).unwrap();
        b.send(Destination::Unicast(1), Bytes::from_static(b"y")).unwrap();
        net.run_until_idle();
        assert_eq!(a.pending() + b.pending(), 0);
        assert_eq!(net.stats().dropped_partition, 2);
        net.set_partition(1, 2, false);
        a.send(Destination::Unicast(2), Bytes::from_static(b"x")).unwrap();
        net.run_until_idle();
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn link_override_applies() {
        let net = quiet_net(7);
        let a = net.socket(1);
        let _b = net.socket(2);
        net.set_link(1, 2, LinkConfig::default().with_latency_us(50_000));
        a.send(Destination::Unicast(2), Bytes::from_static(b"x")).unwrap();
        net.run_until_idle();
        assert!(net.now_us() >= 50_000);
    }

    #[test]
    fn removed_node_is_unreachable_and_cannot_send() {
        let net = quiet_net(8);
        let a = net.socket(1);
        let b = net.socket(2);
        a.send(Destination::Unicast(2), Bytes::from_static(b"x")).unwrap();
        net.remove_node(2);
        net.run_until_idle();
        assert!(matches!(
            b.send(Destination::Unicast(1), Bytes::new()),
            Err(SendError::UnknownNode(2))
        ));
        // Delivery to removed node silently vanished.
        assert_eq!(net.stats().datagrams_delivered, 0);
    }

    #[test]
    fn advance_to_moves_idle_clock() {
        let net = quiet_net(9);
        let _a = net.socket(1);
        net.advance_to(5_000);
        assert_eq!(net.now_us(), 5_000);
        // Does not go backwards.
        net.advance_to(1_000);
        assert_eq!(net.now_us(), 5_000);
    }

    #[test]
    fn delivery_order_is_stable_for_equal_times() {
        let net = SimNet::new(
            NetConfig::default().with_default_link(LinkConfig::default().with_bandwidth_bps(None)),
        );
        let a = net.socket(1);
        let b = net.socket(2);
        for i in 0..10u8 {
            a.send(Destination::Unicast(2), Bytes::from(vec![i])).unwrap();
        }
        net.run_until_idle();
        let mut got = Vec::new();
        while let Some((_, p)) = b.recv() {
            got.push(p[0]);
        }
        assert_eq!(got, (0..10).collect::<Vec<u8>>(), "fifo for same-time events");
    }

    #[test]
    fn jitter_spreads_arrivals() {
        let net = SimNet::new(NetConfig::default().with_seed(10).with_default_link(
            LinkConfig::default().with_jitter_us(10_000).with_bandwidth_bps(None),
        ));
        let a = net.socket(1);
        let _b = net.socket(2);
        let mut arrivals = Vec::new();
        for _ in 0..20 {
            a.send(Destination::Unicast(2), Bytes::from_static(b"j")).unwrap();
        }
        while let Some(t) = net.step() {
            arrivals.push(t);
        }
        let min = arrivals.iter().min().unwrap();
        let max = arrivals.iter().max().unwrap();
        assert!(max - min > 1_000, "jitter must spread arrivals ({min}..{max})");
    }

    #[test]
    fn stats_bytes_track_payloads() {
        let net = quiet_net(11);
        let a = net.socket(1);
        let b = net.socket(2);
        a.send(Destination::Unicast(2), Bytes::from(vec![0u8; 100])).unwrap();
        b.send(Destination::Unicast(1), Bytes::from(vec![0u8; 50])).unwrap();
        net.run_until_idle();
        let s = net.stats();
        assert_eq!(s.bytes_sent, 150);
        assert_eq!(s.bytes_delivered, 150);
        assert_eq!(s.node(1).sent_bytes, 100);
        assert_eq!(s.node(1).delivered_bytes, 50);
        assert_eq!(s.node(2).sent, 1);
    }

    #[test]
    fn unicast_to_unknown_counts_no_receiver() {
        let net = quiet_net(12);
        let a = net.socket(1);
        a.send(Destination::Unicast(99), Bytes::from_static(b"x")).unwrap();
        net.run_until_idle();
        assert_eq!(net.stats().no_receiver, 1);
    }
}
