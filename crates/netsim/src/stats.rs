//! Packet accounting, the measurement substrate for the bandwidth
//! experiments (C2: multicast vs unicast fan-out; C4: file distribution).

use std::collections::BTreeMap;

/// Per-directed-link replica counters, the ground truth the FEC layer's
/// in-band loss estimator is judged against (it must converge on
/// `lost / attempts` without ever seeing these numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkObserved {
    /// Replicas that reached the loss roll (post-partition-check).
    pub attempts: u64,
    /// Replicas the loss roll dropped.
    pub lost: u64,
}

impl LinkObserved {
    /// Measured loss rate in permille (0 with no traffic).
    pub fn loss_permille(&self) -> u16 {
        if self.attempts == 0 {
            return 0;
        }
        ((self.lost * 1000 / self.attempts).min(1000)) as u16
    }
}

/// Per-node counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Datagrams passed to `send` by this node.
    pub sent: u64,
    /// Payload bytes passed to `send` by this node.
    pub sent_bytes: u64,
    /// Datagram replicas delivered into this node's inbox.
    pub delivered: u64,
    /// Payload bytes delivered into this node's inbox.
    pub delivered_bytes: u64,
}

/// Network-wide counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams sent (one per `send` call, however many replicas result).
    pub datagrams_sent: u64,
    /// Payload bytes sent (counted once per `send` call).
    pub bytes_sent: u64,
    /// Replicas delivered to an inbox.
    pub datagrams_delivered: u64,
    /// Payload bytes delivered (counted per replica).
    pub bytes_delivered: u64,
    /// Replicas dropped by random loss.
    pub dropped_loss: u64,
    /// Sends dropped because the payload exceeded the link MTU.
    pub dropped_mtu: u64,
    /// Replicas dropped by an active partition.
    pub dropped_partition: u64,
    /// Sends addressed to a group/destination with no (other) member.
    pub no_receiver: u64,
    /// Per-node breakdown.
    pub per_node: BTreeMap<u32, NodeStats>,
    /// Per-directed-link `(src, dst)` loss accounting.
    pub per_link: BTreeMap<(u32, u32), LinkObserved>,
}

impl NetStats {
    /// Counters for one node (zero if never seen).
    pub fn node(&self, id: u32) -> NodeStats {
        self.per_node.get(&id).copied().unwrap_or_default()
    }

    /// Total replicas dropped for any reason.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_mtu + self.dropped_partition
    }

    /// Loss accounting of the directed link `src → dst` (zero if never
    /// used).
    pub fn link_observed(&self, src: u32, dst: u32) -> LinkObserved {
        self.per_link.get(&(src, dst)).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_lookup_defaults_to_zero() {
        let s = NetStats::default();
        assert_eq!(s.node(7), NodeStats::default());
        assert_eq!(s.link_observed(1, 2), LinkObserved::default());
        assert_eq!(s.total_dropped(), 0);
    }

    #[test]
    fn link_observed_loss_permille() {
        assert_eq!(LinkObserved::default().loss_permille(), 0);
        assert_eq!(LinkObserved { attempts: 10, lost: 1 }.loss_permille(), 100);
        assert_eq!(LinkObserved { attempts: 3, lost: 3 }.loss_permille(), 1000);
    }
}
