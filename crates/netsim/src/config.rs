//! Network and link configuration.

/// Characteristics of one directed link (or the network-wide default).
///
/// Defaults model a small switched Ethernet LAN of the kind the paper's
/// avionics nodes share: 100 µs propagation, no jitter, no loss, 100 Mbit/s,
/// 1500-byte MTU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way latency in microseconds.
    pub latency_us: u64,
    /// Additional uniformly distributed jitter in `[0, jitter_us]`.
    pub jitter_us: u64,
    /// Independent per-replica loss probability in `[0, 1]`.
    pub loss: f64,
    /// Serialization bandwidth in bits per second; `None` = infinite.
    pub bandwidth_bps: Option<u64>,
    /// Maximum datagram size in bytes; larger sends are dropped (and
    /// counted), mirroring a UDP stack without IP fragmentation.
    pub mtu: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_us: 100,
            jitter_us: 0,
            loss: 0.0,
            bandwidth_bps: Some(100_000_000),
            mtu: 1500,
        }
    }
}

impl LinkConfig {
    /// Sets the base latency (builder style).
    #[must_use]
    pub fn with_latency_us(mut self, v: u64) -> Self {
        self.latency_us = v;
        self
    }

    /// Sets the jitter bound (builder style).
    #[must_use]
    pub fn with_jitter_us(mut self, v: u64) -> Self {
        self.jitter_us = v;
        self
    }

    /// Sets the loss probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not within `[0, 1]`.
    #[must_use]
    pub fn with_loss(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "loss probability {v} outside [0,1]");
        self.loss = v;
        self
    }

    /// Sets the bandwidth (builder style).
    #[must_use]
    pub fn with_bandwidth_bps(mut self, v: Option<u64>) -> Self {
        self.bandwidth_bps = v;
        self
    }

    /// Sets the MTU (builder style).
    #[must_use]
    pub fn with_mtu(mut self, v: usize) -> Self {
        self.mtu = v;
        self
    }

    /// Transmission (serialization) time of `len` bytes on this link, µs.
    pub(crate) fn tx_time_us(&self, len: usize) -> u64 {
        match self.bandwidth_bps {
            Some(bps) if bps > 0 => (len as u64 * 8 * 1_000_000) / bps,
            _ => 0,
        }
    }

    /// Linear interpolation between two link characters at `t ∈ [0, 1]` —
    /// the ramp hook behind `LinkRamp` chaos events (radio degradation
    /// profiles: latency/jitter/loss ramp continuously, bandwidth ramps
    /// when both endpoints define it, and the MTU steps at the end of the
    /// window since a fractional MTU is meaningless).
    #[must_use]
    pub fn lerp(&self, to: &LinkConfig, t: f64) -> LinkConfig {
        let t = t.clamp(0.0, 1.0);
        let mix_u64 = |a: u64, b: u64| -> u64 {
            let v = a as f64 + (b as f64 - a as f64) * t;
            if v <= 0.0 {
                0
            } else {
                v.round() as u64
            }
        };
        LinkConfig {
            latency_us: mix_u64(self.latency_us, to.latency_us),
            jitter_us: mix_u64(self.jitter_us, to.jitter_us),
            loss: (self.loss + (to.loss - self.loss) * t).clamp(0.0, 1.0),
            bandwidth_bps: match (self.bandwidth_bps, to.bandwidth_bps) {
                (Some(a), Some(b)) => Some(mix_u64(a, b)),
                (a, b) => {
                    if t >= 1.0 {
                        b
                    } else {
                        a
                    }
                }
            },
            mtu: if t >= 1.0 { to.mtu } else { self.mtu },
        }
    }
}

/// Whole-network configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Link characteristics applied to every pair without an override.
    pub default_link: LinkConfig,
    /// PRNG seed: identical seeds reproduce identical packet traces.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { default_link: LinkConfig::default(), seed: 0xC0FFEE }
    }
}

impl NetConfig {
    /// Sets the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default link (builder style).
    #[must_use]
    pub fn with_default_link(mut self, link: LinkConfig) -> Self {
        self.default_link = link;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_math() {
        let l = LinkConfig::default().with_bandwidth_bps(Some(1_000_000)); // 1 Mbit/s
        assert_eq!(l.tx_time_us(125), 1_000); // 125 B = 1000 bits = 1 ms
        let inf = LinkConfig::default().with_bandwidth_bps(None);
        assert_eq!(inf.tx_time_us(100_000), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn loss_range_checked() {
        let _ = LinkConfig::default().with_loss(1.5);
    }

    #[test]
    fn lerp_ramps_continuously_and_steps_mtu_last() {
        let calm = LinkConfig::default();
        let storm = LinkConfig::default()
            .with_latency_us(20_100)
            .with_jitter_us(5_000)
            .with_loss(0.4)
            .with_bandwidth_bps(Some(50_000_000))
            .with_mtu(576);
        let mid = calm.lerp(&storm, 0.5);
        assert_eq!(mid.latency_us, 10_100);
        assert_eq!(mid.jitter_us, 2_500);
        assert!((mid.loss - 0.2).abs() < 1e-9);
        assert_eq!(mid.bandwidth_bps, Some(75_000_000));
        assert_eq!(mid.mtu, 1500, "mtu steps only at the end of the window");
        assert_eq!(calm.lerp(&storm, 0.0), calm);
        assert_eq!(calm.lerp(&storm, 1.0), storm);
        assert_eq!(calm.lerp(&storm, 7.5), storm, "t clamps to [0,1]");
    }

    #[test]
    fn builders_chain() {
        let l = LinkConfig::default()
            .with_latency_us(5)
            .with_jitter_us(2)
            .with_loss(0.25)
            .with_mtu(9000);
        assert_eq!(l.latency_us, 5);
        assert_eq!(l.jitter_us, 2);
        assert_eq!(l.loss, 0.25);
        assert_eq!(l.mtu, 9000);
        let c = NetConfig::default().with_seed(42).with_default_link(l);
        assert_eq!(c.seed, 42);
        assert_eq!(c.default_link, l);
    }
}
