//! A simulated TCP-like reliable byte stream — the *baseline* for the
//! paper's §4.2 claim.
//!
//! The paper argues that a purpose-built acknowledge/retransmit mechanism at
//! the middleware layer "is more efficient for event messages than the
//! generic case provided by the TCP stack". To measure that (experiment
//! C3), this module models the relevant behaviour of a generic TCP stack:
//!
//! * three-way handshake before any data moves;
//! * one in-order byte stream: a lost segment head-of-line-blocks every
//!   event behind it;
//! * cumulative acknowledgements only (no selective acknowledgement);
//! * a conservative retransmission timeout with the conventional **200 ms
//!   minimum** and exponential backoff, plus fast retransmit after three
//!   duplicate ACKs;
//! * a fixed receive window (no congestion control — the avionics LAN is
//!   not congestion-bound, and omitting it *favours* the baseline).
//!
//! Application messages are length-prefixed on the stream, as a real system
//! would frame them over TCP.
//!
//! Endpoints are poll-driven with explicit time, like every other MAREA
//! state machine, so they run over [`SimNet`](crate::SimNet) datagrams
//! (each segment = one datagram, dropped/delayed by the same link model
//! that carries the middleware's own traffic).

use std::collections::{BTreeMap, VecDeque};

/// Tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpishConfig {
    /// Maximum segment payload size in bytes.
    pub mss: usize,
    /// Send window (bytes in flight bound).
    pub window: usize,
    /// Minimum / initial retransmission timeout in µs (conventional 200 ms).
    pub min_rto_us: u64,
    /// Backoff cap in µs.
    pub max_rto_us: u64,
}

impl Default for TcpishConfig {
    fn default() -> Self {
        TcpishConfig { mss: 1400, window: 64 * 1024, min_rto_us: 200_000, max_rto_us: 2_000_000 }
    }
}

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpishState {
    /// No handshake yet.
    Closed,
    /// Client sent SYN.
    SynSent,
    /// Server answered SYN-ACK.
    SynReceived,
    /// Handshake complete, data may flow.
    Established,
}

/// Counters for the C3 bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpishStats {
    /// Segments transmitted (including control segments).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Total segment bytes transmitted (headers + payload).
    pub bytes_sent: u64,
}

const FLAG_SYN: u8 = 1;
const FLAG_ACK: u8 = 2;
const HEADER_LEN: usize = 1 + 8 + 8;

fn encode_segment(flags: u8, seq: u64, ack: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(flags);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&ack.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn decode_segment(seg: &[u8]) -> Option<(u8, u64, u64, &[u8])> {
    if seg.len() < HEADER_LEN {
        return None;
    }
    let flags = seg[0];
    let seq = u64::from_le_bytes(seg[1..9].try_into().ok()?);
    let ack = u64::from_le_bytes(seg[9..17].try_into().ok()?);
    Some((flags, seq, ack, &seg[HEADER_LEN..]))
}

#[derive(Debug)]
struct InflightSeg {
    payload: Vec<u8>,
}

/// One endpoint of a simulated TCP-like connection.
#[derive(Debug)]
pub struct TcpishEndpoint {
    cfg: TcpishConfig,
    state: TcpishState,
    is_client: bool,
    // Send side.
    pending_stream: VecDeque<u8>,
    snd_una: u64,
    snd_nxt: u64,
    inflight: BTreeMap<u64, InflightSeg>,
    rto_us: u64,
    rto_deadline: Option<u64>,
    dup_acks: u32,
    // Receive side.
    rcv_nxt: u64,
    out_of_order: BTreeMap<u64, Vec<u8>>,
    rcv_stream: VecDeque<u8>,
    stats: TcpishStats,
}

impl TcpishEndpoint {
    /// Creates the client end (call [`TcpishEndpoint::connect`]).
    pub fn client(cfg: TcpishConfig) -> Self {
        Self::new(cfg, true)
    }

    /// Creates the server (passive) end.
    pub fn server(cfg: TcpishConfig) -> Self {
        Self::new(cfg, false)
    }

    fn new(cfg: TcpishConfig, is_client: bool) -> Self {
        TcpishEndpoint {
            cfg,
            state: TcpishState::Closed,
            is_client,
            pending_stream: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            inflight: BTreeMap::new(),
            rto_us: cfg.min_rto_us,
            rto_deadline: None,
            dup_acks: 0,
            rcv_nxt: 0,
            out_of_order: BTreeMap::new(),
            rcv_stream: VecDeque::new(),
            stats: TcpishStats::default(),
        }
    }

    /// Connection state.
    pub fn state(&self) -> TcpishState {
        self.state
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TcpishStats {
        self.stats
    }

    /// Bytes accepted for sending but not yet acknowledged end-to-end.
    pub fn unacked_len(&self) -> usize {
        self.pending_stream.len() + (self.snd_nxt - self.snd_una) as usize
    }

    /// Initiates the handshake; returns the SYN segment.
    ///
    /// # Panics
    ///
    /// Panics when called on a server endpoint or twice.
    pub fn connect(&mut self, now_us: u64) -> Vec<u8> {
        assert!(self.is_client, "connect on server endpoint");
        assert_eq!(self.state, TcpishState::Closed, "connect called twice");
        self.state = TcpishState::SynSent;
        self.arm_rto(now_us);
        self.count(HEADER_LEN);
        encode_segment(FLAG_SYN, 0, 0, &[])
    }

    /// Queues an application message (length-prefixed on the stream).
    pub fn send_message(&mut self, msg: &[u8]) {
        let len = u32::try_from(msg.len()).expect("message fits u32");
        self.pending_stream.extend(len.to_le_bytes());
        self.pending_stream.extend(msg.iter().copied());
    }

    /// Drives timers and window: returns segments to transmit now.
    pub fn poll(&mut self, now_us: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        // Handshake retransmission.
        if self.state == TcpishState::SynSent {
            if let Some(dl) = self.rto_deadline {
                if now_us >= dl {
                    self.backoff(now_us);
                    self.stats.retransmissions += 1;
                    self.count(HEADER_LEN);
                    out.push(encode_segment(FLAG_SYN, 0, 0, &[]));
                }
            }
            return out;
        }
        if self.state != TcpishState::Established && self.state != TcpishState::SynReceived {
            return out;
        }
        // Data RTO: retransmit the earliest unacked segment (go-back-one,
        // as a non-SACK stack does).
        if let Some(dl) = self.rto_deadline {
            if now_us >= dl && !self.inflight.is_empty() {
                let (&seq, seg) = self.inflight.iter().next().expect("nonempty");
                let retx = encode_segment(FLAG_ACK, seq, self.rcv_nxt, &seg.payload);
                self.stats.retransmissions += 1;
                self.count(retx.len());
                out.push(retx);
                self.backoff(now_us);
            }
        }
        // New data within the window.
        if self.state == TcpishState::Established {
            while !self.pending_stream.is_empty()
                && ((self.snd_nxt - self.snd_una) as usize) < self.cfg.window
            {
                let take = usize::min(
                    self.cfg.mss,
                    usize::min(
                        self.pending_stream.len(),
                        self.cfg.window - (self.snd_nxt - self.snd_una) as usize,
                    ),
                );
                if take == 0 {
                    break;
                }
                let payload: Vec<u8> = self.pending_stream.drain(..take).collect();
                let seq = self.snd_nxt;
                self.snd_nxt += take as u64;
                let seg = encode_segment(FLAG_ACK, seq, self.rcv_nxt, &payload);
                self.inflight.insert(seq, InflightSeg { payload });
                self.count(seg.len());
                out.push(seg);
                if self.rto_deadline.is_none() {
                    self.arm_rto(now_us);
                }
            }
        }
        out
    }

    /// Processes an incoming segment. Returns `(segments_to_send,
    /// application_messages_delivered)`.
    pub fn on_segment(&mut self, seg: &[u8], now_us: u64) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let Some((flags, seq, ack, payload)) = decode_segment(seg) else {
            return (Vec::new(), Vec::new());
        };
        let mut out = Vec::new();

        // Handshake.
        match self.state {
            TcpishState::Closed if !self.is_client && flags & FLAG_SYN != 0 => {
                self.state = TcpishState::SynReceived;
                self.arm_rto(now_us);
                self.count(HEADER_LEN);
                out.push(encode_segment(FLAG_SYN | FLAG_ACK, 0, 1, &[]));
                return (out, Vec::new());
            }
            TcpishState::SynSent if flags & FLAG_SYN != 0 && flags & FLAG_ACK != 0 => {
                self.state = TcpishState::Established;
                self.rto_deadline = None;
                self.rto_us = self.cfg.min_rto_us;
                self.count(HEADER_LEN);
                out.push(encode_segment(FLAG_ACK, 0, 1, &[]));
                // Data will flow on the next poll().
                return (out, Vec::new());
            }
            TcpishState::SynReceived if flags & FLAG_ACK != 0 && flags & FLAG_SYN == 0 => {
                self.state = TcpishState::Established;
                self.rto_deadline = None;
                self.rto_us = self.cfg.min_rto_us;
                // Fall through: the ACK may carry data.
            }
            TcpishState::SynSent if flags & FLAG_SYN != 0 => {
                // Simultaneous open not modelled.
                return (out, Vec::new());
            }
            _ => {}
        }

        if self.state != TcpishState::Established {
            return (out, Vec::new());
        }

        // ACK processing.
        if flags & FLAG_ACK != 0 && flags & FLAG_SYN == 0 {
            // ack values are offset by 1 from the handshake phantom byte;
            // we keep data sequence space independent (starting at 0), so
            // ignore the phantom ack==1 with no prior data.
            if ack > self.snd_una && ack <= self.snd_nxt {
                self.snd_una = ack;
                self.dup_acks = 0;
                self.inflight.retain(|&s, seg| s + seg.payload.len() as u64 > ack);
                self.rto_us = self.cfg.min_rto_us;
                self.rto_deadline =
                    if self.inflight.is_empty() { None } else { Some(now_us + self.rto_us) };
            } else if ack == self.snd_una && !self.inflight.is_empty() && payload.is_empty() {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit of the earliest unacked segment.
                    let (&s, seg) = self.inflight.iter().next().expect("nonempty");
                    let retx = encode_segment(FLAG_ACK, s, self.rcv_nxt, &seg.payload);
                    self.stats.retransmissions += 1;
                    self.count(retx.len());
                    out.push(retx);
                    self.dup_acks = 0;
                }
            }
        }

        // Data processing.
        let mut delivered = Vec::new();
        if !payload.is_empty() {
            if seq == self.rcv_nxt {
                self.rcv_stream.extend(payload.iter().copied());
                self.rcv_nxt += payload.len() as u64;
                // Drain contiguous out-of-order segments.
                while let Some(p) = self.out_of_order.remove(&self.rcv_nxt) {
                    self.rcv_nxt += p.len() as u64;
                    self.rcv_stream.extend(p);
                }
                delivered = self.extract_messages();
            } else if seq > self.rcv_nxt {
                self.out_of_order.entry(seq).or_insert_with(|| payload.to_vec());
            }
            // Every data segment triggers an ACK (dup ack when out of order).
            self.count(HEADER_LEN);
            out.push(encode_segment(FLAG_ACK, self.snd_nxt, self.rcv_nxt, &[]));
        }

        (out, delivered)
    }

    fn extract_messages(&mut self) -> Vec<Vec<u8>> {
        let mut msgs = Vec::new();
        loop {
            if self.rcv_stream.len() < 4 {
                break;
            }
            let len_bytes: Vec<u8> = self.rcv_stream.iter().take(4).copied().collect();
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            if self.rcv_stream.len() < 4 + len {
                break;
            }
            self.rcv_stream.drain(..4);
            msgs.push(self.rcv_stream.drain(..len).collect());
        }
        msgs
    }

    fn arm_rto(&mut self, now_us: u64) {
        self.rto_deadline = Some(now_us + self.rto_us);
    }

    fn backoff(&mut self, now_us: u64) {
        self.rto_us = (self.rto_us * 2).min(self.cfg.max_rto_us);
        self.arm_rto(now_us);
    }

    fn count(&mut self, wire_len: usize) {
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += wire_len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ferries segments between endpoints with optional deterministic loss,
    /// returning messages delivered to each side.
    fn exchange(
        a: &mut TcpishEndpoint,
        b: &mut TcpishEndpoint,
        now_us: u64,
        mut lose: impl FnMut() -> bool,
    ) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let mut to_b: VecDeque<Vec<u8>> = a.poll(now_us).into();
        let mut to_a: VecDeque<Vec<u8>> = b.poll(now_us).into();
        let mut a_msgs = Vec::new();
        let mut b_msgs = Vec::new();
        let mut budget = 1000;
        while (!to_a.is_empty() || !to_b.is_empty()) && budget > 0 {
            budget -= 1;
            if let Some(seg) = to_b.pop_front() {
                if !lose() {
                    let (outs, msgs) = b.on_segment(&seg, now_us);
                    to_a.extend(outs);
                    b_msgs.extend(msgs);
                }
            }
            if let Some(seg) = to_a.pop_front() {
                if !lose() {
                    let (outs, msgs) = a.on_segment(&seg, now_us);
                    to_b.extend(outs);
                    a_msgs.extend(msgs);
                }
            }
        }
        (a_msgs, b_msgs)
    }

    #[test]
    fn handshake_then_data() {
        let mut c = TcpishEndpoint::client(TcpishConfig::default());
        let mut s = TcpishEndpoint::server(TcpishConfig::default());
        let syn = c.connect(0);
        let (outs, _) = s.on_segment(&syn, 0);
        let (outs2, _) = c.on_segment(&outs[0], 0);
        let _ = s.on_segment(&outs2[0], 0);
        assert_eq!(c.state(), TcpishState::Established);
        assert_eq!(s.state(), TcpishState::Established);

        c.send_message(b"event-1");
        c.send_message(b"event-2");
        let (_, got) = exchange(&mut c, &mut s, 1_000, || false);
        assert_eq!(got, vec![b"event-1".to_vec(), b"event-2".to_vec()]);
    }

    #[test]
    fn data_before_established_is_queued() {
        let mut c = TcpishEndpoint::client(TcpishConfig::default());
        c.send_message(b"early");
        assert!(c.poll(0).is_empty(), "no data before handshake");
        assert_eq!(c.unacked_len(), 4 + 5);
    }

    #[test]
    fn syn_is_retransmitted_with_backoff() {
        let mut c = TcpishEndpoint::client(TcpishConfig::default());
        let _syn = c.connect(0);
        assert!(c.poll(100_000).is_empty(), "before min rto");
        let retx = c.poll(200_000);
        assert_eq!(retx.len(), 1, "syn retransmit at 200ms");
        assert!(c.poll(300_000).is_empty(), "backoff doubled to 400ms");
        assert_eq!(c.poll(600_001).len(), 1);
        assert_eq!(c.stats().retransmissions, 2);
    }

    #[test]
    fn lost_data_segment_recovers_via_rto() {
        let mut c = TcpishEndpoint::client(TcpishConfig::default());
        let mut s = TcpishEndpoint::server(TcpishConfig::default());
        // Handshake.
        let syn = c.connect(0);
        let (sa, _) = s.on_segment(&syn, 0);
        let (ack, _) = c.on_segment(&sa[0], 0);
        s.on_segment(&ack[0], 0);

        c.send_message(b"important");
        let segs = c.poll(0);
        assert_eq!(segs.len(), 1);
        // Segment lost. Nothing happens until min RTO.
        assert!(c.poll(199_999).is_empty());
        let retx = c.poll(200_000);
        assert_eq!(retx.len(), 1);
        let (_acks, msgs) = s.on_segment(&retx[0], 200_100);
        assert_eq!(msgs, vec![b"important".to_vec()]);
    }

    #[test]
    fn head_of_line_blocking_delays_later_messages() {
        let cfg = TcpishConfig { mss: 16, ..TcpishConfig::default() };
        let mut c = TcpishEndpoint::client(cfg);
        let mut s = TcpishEndpoint::server(cfg);
        let syn = c.connect(0);
        let (sa, _) = s.on_segment(&syn, 0);
        let (ack, _) = c.on_segment(&sa[0], 0);
        s.on_segment(&ack[0], 0);

        c.send_message(b"first-event!"); // 16 bytes with prefix -> seg 1
        c.send_message(b"second-event"); // seg 2
        let segs = c.poll(0);
        assert!(segs.len() >= 2);
        // Drop the first segment, deliver the rest: nothing must surface.
        let mut delivered = Vec::new();
        for seg in &segs[1..] {
            let (_o, msgs) = s.on_segment(seg, 100);
            delivered.extend(msgs);
        }
        assert!(delivered.is_empty(), "HoL: second event blocked behind first");
        // RTO recovers the head; both surface in order.
        let retx = c.poll(200_000);
        assert!(!retx.is_empty());
        let (_o, msgs) = s.on_segment(&retx[0], 200_100);
        assert_eq!(msgs, vec![b"first-event!".to_vec(), b"second-event".to_vec()]);
    }

    #[test]
    fn fast_retransmit_after_three_dup_acks() {
        let cfg = TcpishConfig { mss: 8, ..TcpishConfig::default() };
        let mut c = TcpishEndpoint::client(cfg);
        let mut s = TcpishEndpoint::server(cfg);
        let syn = c.connect(0);
        let (sa, _) = s.on_segment(&syn, 0);
        let (ack, _) = c.on_segment(&sa[0], 0);
        s.on_segment(&ack[0], 0);

        // Four segments; first lost.
        c.send_message(&[0xAA; 24]); // 28 bytes stream -> 4 segments of mss 8
        let segs = c.poll(0);
        assert_eq!(segs.len(), 4);
        let mut dup_acks = Vec::new();
        for seg in &segs[1..] {
            let (acks, msgs) = s.on_segment(seg, 10);
            assert!(msgs.is_empty());
            dup_acks.extend(acks);
        }
        assert_eq!(dup_acks.len(), 3);
        let mut retx = Vec::new();
        for a in &dup_acks {
            let (outs, _) = c.on_segment(a, 20);
            retx.extend(outs);
        }
        assert_eq!(retx.len(), 1, "third dup ack triggers fast retransmit");
        assert!(c.stats().retransmissions >= 1);
        let (_a, msgs) = s.on_segment(&retx[0], 30);
        assert_eq!(msgs.len(), 1, "stream repaired, message delivered");
    }

    #[test]
    fn window_caps_inflight_bytes() {
        let cfg = TcpishConfig { mss: 1000, window: 3000, ..TcpishConfig::default() };
        let mut c = TcpishEndpoint::client(cfg);
        let mut s = TcpishEndpoint::server(cfg);
        let syn = c.connect(0);
        let (sa, _) = s.on_segment(&syn, 0);
        let (ack, _) = c.on_segment(&sa[0], 0);
        s.on_segment(&ack[0], 0);

        c.send_message(&vec![1u8; 10_000]);
        let segs = c.poll(0);
        let sent: usize = segs.iter().map(|s| s.len() - HEADER_LEN).sum();
        assert!(sent <= 3000, "window respected, sent {sent}");
    }

    #[test]
    fn lossy_stream_eventually_delivers_everything() {
        let cfg = TcpishConfig { mss: 64, ..TcpishConfig::default() };
        let mut c = TcpishEndpoint::client(cfg);
        let mut s = TcpishEndpoint::server(cfg);

        // Deterministic loss pattern: drop every 6th transfer.
        let mut k = 0u32;
        let mut lose = move || {
            k += 1;
            k.is_multiple_of(6)
        };

        let mut now = 0u64;
        // Handshake with possible loss, driven by polls.
        let mut pending_to_s = vec![c.connect(now)];
        let mut pending_to_c: Vec<Vec<u8>> = Vec::new();
        for i in 0..20u8 {
            c.send_message(format!("msg-{i:02}").as_bytes());
        }
        let mut got = Vec::new();
        for _ in 0..2000 {
            for seg in std::mem::take(&mut pending_to_s) {
                if !lose() {
                    let (outs, msgs) = s.on_segment(&seg, now);
                    pending_to_c.extend(outs);
                    got.extend(msgs);
                }
            }
            for seg in std::mem::take(&mut pending_to_c) {
                if !lose() {
                    let (outs, msgs) = c.on_segment(&seg, now);
                    pending_to_s.extend(outs);
                    got.extend(msgs);
                }
            }
            pending_to_s.extend(c.poll(now));
            pending_to_c.extend(s.poll(now));
            now += 50_000;
            if got.len() == 20 {
                break;
            }
        }
        assert_eq!(got.len(), 20, "all messages delivered");
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m, format!("msg-{i:02}").as_bytes(), "in order");
        }
        assert!(s.stats().segments_sent > 0);
        assert!(c.stats().retransmissions > 0, "loss forced retransmissions");
    }

    #[test]
    fn garbage_segments_are_ignored() {
        let mut s = TcpishEndpoint::server(TcpishConfig::default());
        let (outs, msgs) = s.on_segment(&[1, 2, 3], 0);
        assert!(outs.is_empty() && msgs.is_empty());
    }
}
