//! # marea-netsim — deterministic avionics LAN simulator
//!
//! The paper's system ran on "low-cost computing devices connected by
//! network" — PC104-class boards on Ethernet, with UDP unicast/multicast and
//! TCP. This crate substitutes that hardware with a **discrete-event
//! simulated LAN** so the whole middleware runs deterministically on one
//! machine:
//!
//! * per-link latency, jitter, packet loss, bandwidth and MTU
//!   ([`LinkConfig`]);
//! * unicast, multicast groups and broadcast ([`Destination`]);
//! * a virtual clock ([`SimNet::now_us`]) advanced by event delivery
//!   ([`SimNet::step`]) or explicitly ([`SimNet::advance_to`]);
//! * per-packet accounting ([`NetStats`]) — the bandwidth experiments (C2,
//!   C4) read these counters;
//! * network fault injection: partitions and runtime-adjustable links;
//! * [`tcpish`] — a simulated TCP-like byte stream (handshake, cumulative
//!   ACKs, 200 ms minimum RTO, fast retransmit) used as the baseline the
//!   paper compares its application-layer ARQ against (§4.2, experiment C3).
//!
//! Determinism: all randomness (loss, jitter) comes from one seeded PRNG,
//! and simultaneous deliveries are tie-broken by enqueue order, so a given
//! seed always produces the identical packet trace.
//!
//! ## Example
//!
//! ```
//! use marea_netsim::{Destination, LinkConfig, NetConfig, SimNet};
//!
//! let net = SimNet::new(NetConfig::default().with_seed(7));
//! let a = net.socket(1);
//! let b = net.socket(2);
//! b.join(9);
//! a.send(Destination::Multicast(9), b"hello".as_ref().into()).unwrap();
//! net.run_until_idle();
//! let (src, payload) = b.recv().unwrap();
//! assert_eq!(src, 1);
//! assert_eq!(payload.as_ref(), b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod sim;
mod stats;
pub mod tcpish;

pub use config::{LinkConfig, NetConfig};
pub use sim::{Destination, SendError, SimNet, SimSocket};
pub use stats::{LinkObserved, NetStats, NodeStats};
