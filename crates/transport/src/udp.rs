//! Real UDP transport with a static peer table.
//!
//! Group and broadcast sends fan out as unicast datagrams to every peer in
//! the table (group membership is tracked locally from each peer's `join`
//! having been mirrored into its own transport — at this layer the sender
//! cannot know remote memberships, so groups deliver to *all* peers and the
//! container's protocol layer filters; this matches how the middleware
//! would run on a switch without IGMP snooping). On multicast-capable
//! deployments this transport would map [`TransportDestination::Group`] to
//! IP multicast groups exactly as the paper describes (§4.1); the fan-out
//! fallback preserves semantics at a measurable bandwidth cost (experiment
//! C2 quantifies precisely the saving real multicast buys back).

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};

use bytes::Bytes;

use crate::traits::{Transport, TransportDestination, TransportError};

/// Configuration for a [`UdpTransport`].
#[derive(Debug, Clone)]
pub struct UdpTransportConfig {
    /// This node's id.
    pub node: u32,
    /// Address to bind (e.g. `127.0.0.1:0`).
    pub bind: SocketAddr,
    /// Known peers: node id → address.
    pub peers: HashMap<u32, SocketAddr>,
    /// Advertised MTU (UDP datagrams up to this size are sent unfragmented).
    pub mtu: usize,
}

impl UdpTransportConfig {
    /// Creates a config with no peers yet.
    ///
    /// # Panics
    ///
    /// Panics if `bind` is not a parseable socket address.
    pub fn new(node: u32, bind: &str) -> Self {
        UdpTransportConfig {
            node,
            bind: bind.parse().expect("valid bind address"),
            peers: HashMap::new(),
            mtu: 1400,
        }
    }

    /// Adds a peer (builder style).
    #[must_use]
    pub fn with_peer(mut self, node: u32, addr: SocketAddr) -> Self {
        self.peers.insert(node, addr);
        self
    }
}

/// [`Transport`] over a non-blocking [`UdpSocket`].
#[derive(Debug)]
pub struct UdpTransport {
    node: u32,
    socket: UdpSocket,
    peers: HashMap<u32, SocketAddr>,
    addr_to_node: HashMap<SocketAddr, u32>,
    mtu: usize,
    buf: Vec<u8>,
}

impl UdpTransport {
    /// Binds the socket and builds the transport.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] when binding fails.
    pub fn bind(config: UdpTransportConfig) -> Result<Self, TransportError> {
        let socket = UdpSocket::bind(config.bind).map_err(|e| TransportError::Io(e.to_string()))?;
        socket.set_nonblocking(true).map_err(|e| TransportError::Io(e.to_string()))?;
        let addr_to_node = config.peers.iter().map(|(n, a)| (*a, *n)).collect();
        Ok(UdpTransport {
            node: config.node,
            socket,
            peers: config.peers,
            addr_to_node,
            mtu: config.mtu,
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// The locally bound address (for building peer tables in tests).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the OS cannot report the address.
    pub fn local_addr(&self) -> Result<SocketAddr, TransportError> {
        self.socket.local_addr().map_err(|e| TransportError::Io(e.to_string()))
    }

    /// Adds or replaces a peer at runtime.
    pub fn add_peer(&mut self, node: u32, addr: SocketAddr) {
        self.peers.insert(node, addr);
        self.addr_to_node.insert(addr, node);
    }
}

impl Transport for UdpTransport {
    fn local_node(&self) -> u32 {
        self.node
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn send(&mut self, dest: TransportDestination, frame: Bytes) -> Result<(), TransportError> {
        if frame.len() > self.mtu {
            return Err(TransportError::PayloadTooLarge { size: frame.len(), mtu: self.mtu });
        }
        let targets: Vec<SocketAddr> = match dest {
            TransportDestination::Node(n) => {
                let addr =
                    self.peers.get(&n).copied().ok_or(TransportError::UnknownDestination(n))?;
                vec![addr]
            }
            TransportDestination::Group(_) | TransportDestination::Broadcast => {
                self.peers.values().copied().collect()
            }
        };
        for addr in targets {
            self.socket.send_to(&frame, addr).map_err(|e| TransportError::Io(e.to_string()))?;
        }
        Ok(())
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, from)) => {
                // Unknown senders are accepted with a synthetic id of
                // u32::MAX; the protocol layer reads the true node id from
                // the frame header anyway.
                let node = self.addr_to_node.get(&from).copied().unwrap_or(u32::MAX);
                Some((node, Bytes::copy_from_slice(&self.buf[..n])))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            Err(_) => None,
        }
    }

    fn join(&mut self, _group: u32) {
        // Fan-out emulation: membership is implicit (all peers).
    }

    fn leave(&mut self, _group: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn recv_within(t: &mut UdpTransport, timeout: Duration) -> Option<(u32, Bytes)> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(x) = t.recv() {
                return Some(x);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        None
    }

    #[test]
    fn unicast_roundtrip_over_loopback() {
        let mut a = UdpTransport::bind(UdpTransportConfig::new(1, "127.0.0.1:0")).unwrap();
        let mut b = UdpTransport::bind(UdpTransportConfig::new(2, "127.0.0.1:0")).unwrap();
        let addr_a = a.local_addr().unwrap();
        let addr_b = b.local_addr().unwrap();
        a.add_peer(2, addr_b);
        b.add_peer(1, addr_a);

        a.send(TransportDestination::Node(2), Bytes::from_static(b"frame")).unwrap();
        let (src, payload) = recv_within(&mut b, Duration::from_secs(2)).expect("delivery");
        assert_eq!(src, 1);
        assert_eq!(payload.as_ref(), b"frame");
    }

    #[test]
    fn broadcast_fans_out() {
        let mut a = UdpTransport::bind(UdpTransportConfig::new(1, "127.0.0.1:0")).unwrap();
        let mut b = UdpTransport::bind(UdpTransportConfig::new(2, "127.0.0.1:0")).unwrap();
        let mut c = UdpTransport::bind(UdpTransportConfig::new(3, "127.0.0.1:0")).unwrap();
        a.add_peer(2, b.local_addr().unwrap());
        a.add_peer(3, c.local_addr().unwrap());
        a.send(TransportDestination::Broadcast, Bytes::from_static(b"all")).unwrap();
        assert!(recv_within(&mut b, Duration::from_secs(2)).is_some());
        assert!(recv_within(&mut c, Duration::from_secs(2)).is_some());
    }

    #[test]
    fn unknown_destination_errors() {
        let mut a = UdpTransport::bind(UdpTransportConfig::new(1, "127.0.0.1:0")).unwrap();
        assert_eq!(
            a.send(TransportDestination::Node(9), Bytes::new()).unwrap_err(),
            TransportError::UnknownDestination(9)
        );
    }

    #[test]
    fn mtu_enforced() {
        let mut a = UdpTransport::bind(UdpTransportConfig::new(1, "127.0.0.1:0")).unwrap();
        let err =
            a.send(TransportDestination::Broadcast, Bytes::from(vec![0u8; 5000])).unwrap_err();
        assert!(matches!(err, TransportError::PayloadTooLarge { .. }));
    }
}
