//! The pluggable transport abstraction.

use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Where a transport send is headed (mirrors the three delivery modes the
/// paper's container maps primitives onto: unicast, multicast, broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportDestination {
    /// One node.
    Node(u32),
    /// All members of a group (except the sender).
    Group(u32),
    /// All reachable nodes (except the sender).
    Broadcast,
}

/// Transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Payload exceeds this transport's MTU; the protocol layer must
    /// fragment first.
    PayloadTooLarge {
        /// Attempted size.
        size: usize,
        /// Transport MTU.
        mtu: usize,
    },
    /// The local endpoint is no longer usable.
    Closed,
    /// Destination unknown to this transport (e.g. no address table entry).
    UnknownDestination(u32),
    /// An OS-level I/O failure (UDP transport).
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::PayloadTooLarge { size, mtu } => {
                write!(f, "payload of {size} bytes exceeds transport mtu {mtu}")
            }
            TransportError::Closed => write!(f, "transport endpoint closed"),
            TransportError::UnknownDestination(n) => write!(f, "unknown destination node {n}"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl Error for TransportError {}

/// A pluggable frame mover (PEPt *Transport* subsystem).
///
/// Implementations are polled by the container's tick loop: `recv` never
/// blocks. Frames are opaque byte blobs at this layer — integrity and
/// interpretation belong to the protocol layer above.
pub trait Transport: Send + fmt::Debug {
    /// The node id this endpoint represents.
    fn local_node(&self) -> u32;

    /// Largest payload `send` accepts.
    fn mtu(&self) -> usize;

    /// Sends one datagram.
    ///
    /// # Errors
    ///
    /// [`TransportError::PayloadTooLarge`] for oversized frames, plus
    /// implementation-specific failures.
    fn send(&mut self, dest: TransportDestination, frame: Bytes) -> Result<(), TransportError>;

    /// Pops the next received datagram (`(source_node, frame)`), if any.
    fn recv(&mut self) -> Option<(u32, Bytes)>;

    /// Joins a multicast group.
    fn join(&mut self, group: u32);

    /// Leaves a multicast group.
    fn leave(&mut self, group: u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(
            TransportError::PayloadTooLarge { size: 9000, mtu: 1500 }.to_string(),
            "payload of 9000 bytes exceeds transport mtu 1500"
        );
        assert_eq!(TransportError::UnknownDestination(4).to_string(), "unknown destination node 4");
    }
}
