//! # marea-transport — the PEPt *Transport* layer
//!
//! > *"Transport moves the resulting frames from one node in the network to
//! > another."* — paper §6
//!
//! The service container never touches sockets; it talks to a boxed
//! [`Transport`]. Three implementations ship with MAREA, all interchangeable
//! (the PEPt plugability ablation, experiment F4, swaps them under an
//! unchanged container):
//!
//! * [`SimLanTransport`] — rides a [`marea_netsim::SimNet`]; the default
//!   for tests, examples and benches because it is deterministic and
//!   supports fault injection;
//! * [`InProcTransport`] — zero-latency in-memory delivery between
//!   containers of the same process; models a single avionics box hosting
//!   several containers and is the baseline for the local-vs-remote
//!   experiment (F2);
//! * [`UdpTransport`] — real UDP sockets with a static peer table.
//!   Group/broadcast sends fan out as unicast datagrams (deployments with
//!   IP-multicast-capable switches would map groups to real multicast
//!   groups; the fan-out preserves delivery semantics at a higher wire
//!   cost, which the C2 experiment quantifies as exactly the cost the
//!   paper's multicast mapping avoids).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod inproc;
mod sim;
mod traits;
mod udp;

pub use inproc::{InProcHub, InProcTransport};
pub use sim::SimLanTransport;
pub use traits::{Transport, TransportDestination, TransportError};
pub use udp::{UdpTransport, UdpTransportConfig};
