//! Transport over the deterministic simulated LAN.

use bytes::Bytes;

use marea_netsim::{Destination, SendError, SimNet, SimSocket};

use crate::traits::{Transport, TransportDestination, TransportError};

/// [`Transport`] implementation backed by a [`SimNet`] socket.
///
/// # Examples
///
/// ```
/// use marea_netsim::{NetConfig, SimNet};
/// use marea_transport::{SimLanTransport, Transport, TransportDestination};
///
/// let net = SimNet::new(NetConfig::default());
/// let mut a = SimLanTransport::attach(&net, 1);
/// let mut b = SimLanTransport::attach(&net, 2);
/// a.send(TransportDestination::Node(2), b"frame".as_ref().into()).unwrap();
/// net.run_until_idle();
/// assert_eq!(b.recv().unwrap().1.as_ref(), b"frame");
/// ```
#[derive(Debug)]
pub struct SimLanTransport {
    socket: SimSocket,
}

impl SimLanTransport {
    /// Attaches node `id` to the simulated network.
    pub fn attach(net: &SimNet, id: u32) -> Self {
        SimLanTransport { socket: net.socket(id) }
    }

    /// The underlying network handle (for clock/stat access in benches).
    pub fn network(&self) -> &SimNet {
        self.socket.network()
    }

    /// Re-registers this node with the network after it was removed
    /// (e.g. by a simulated crash) — the simulated analogue of rebinding a
    /// UDP socket when an avionics box reboots. A no-op while the node is
    /// still attached; a fresh, empty inbox when it is not.
    pub fn rebind(&mut self) {
        let net = self.socket.network().clone();
        self.socket = net.socket(self.socket.node());
    }
}

impl Transport for SimLanTransport {
    fn local_node(&self) -> u32 {
        self.socket.node()
    }

    fn mtu(&self) -> usize {
        self.socket.mtu()
    }

    fn send(&mut self, dest: TransportDestination, frame: Bytes) -> Result<(), TransportError> {
        let dest = match dest {
            TransportDestination::Node(n) => Destination::Unicast(n),
            TransportDestination::Group(g) => Destination::Multicast(g),
            TransportDestination::Broadcast => Destination::Broadcast,
        };
        self.socket.send(dest, frame).map_err(|e| match e {
            SendError::PayloadExceedsMtu { size, mtu } => {
                TransportError::PayloadTooLarge { size, mtu }
            }
            SendError::UnknownNode(_) => TransportError::Closed,
        })
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        self.socket.recv()
    }

    fn join(&mut self, group: u32) {
        self.socket.join(group);
    }

    fn leave(&mut self, group: u32) {
        self.socket.leave(group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_netsim::NetConfig;

    #[test]
    fn maps_destinations() {
        let net = SimNet::new(NetConfig::default());
        let mut a = SimLanTransport::attach(&net, 1);
        let mut b = SimLanTransport::attach(&net, 2);
        let mut c = SimLanTransport::attach(&net, 3);
        b.join(9);
        a.send(TransportDestination::Group(9), Bytes::from_static(b"g")).unwrap();
        a.send(TransportDestination::Broadcast, Bytes::from_static(b"b")).unwrap();
        a.send(TransportDestination::Node(3), Bytes::from_static(b"u")).unwrap();
        net.run_until_idle();
        let b_got: Vec<_> = std::iter::from_fn(|| b.recv()).map(|(_, p)| p).collect();
        assert_eq!(b_got.len(), 2, "group + broadcast");
        let c_got: Vec<_> = std::iter::from_fn(|| c.recv()).map(|(_, p)| p).collect();
        assert_eq!(c_got.len(), 2, "broadcast + unicast");
    }

    #[test]
    fn mtu_errors_map() {
        let net = SimNet::new(NetConfig::default());
        let mut a = SimLanTransport::attach(&net, 1);
        let _b = SimLanTransport::attach(&net, 2);
        let err = a.send(TransportDestination::Node(2), Bytes::from(vec![0u8; 4000])).unwrap_err();
        assert!(matches!(err, TransportError::PayloadTooLarge { mtu: 1500, .. }));
        assert_eq!(a.mtu(), 1500);
    }

    #[test]
    fn closed_after_node_removal() {
        let net = SimNet::new(NetConfig::default());
        let mut a = SimLanTransport::attach(&net, 1);
        net.remove_node(1);
        let err = a.send(TransportDestination::Broadcast, Bytes::new()).unwrap_err();
        assert_eq!(err, TransportError::Closed);
    }

    #[test]
    fn rebind_restores_send_and_receive() {
        let net = SimNet::new(NetConfig::default());
        let mut a = SimLanTransport::attach(&net, 1);
        let mut b = SimLanTransport::attach(&net, 2);
        net.remove_node(1);
        assert!(a.send(TransportDestination::Node(2), Bytes::from_static(b"x")).is_err());
        a.rebind();
        a.send(TransportDestination::Node(2), Bytes::from_static(b"y")).unwrap();
        b.send(TransportDestination::Node(1), Bytes::from_static(b"z")).unwrap();
        net.run_until_idle();
        assert_eq!(b.recv().unwrap().1.as_ref(), b"y");
        assert_eq!(a.recv().unwrap().1.as_ref(), b"z");
    }
}
