//! Zero-latency in-process transport.
//!
//! Models several service containers sharing one avionics box: frames move
//! by queue hand-off with no serialization delay, loss or reordering. This
//! is the "local" side of the paper's Fig. 2 (containers communicate
//! services in the same container or across the network) and the baseline
//! for the local-vs-remote experiment (F2).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::traits::{Transport, TransportDestination, TransportError};

#[derive(Debug, Default)]
struct HubInner {
    inboxes: HashMap<u32, VecDeque<(u32, Bytes)>>,
    groups: HashMap<u32, HashSet<u32>>,
}

/// Shared rendezvous connecting every [`InProcTransport`] of a process.
#[derive(Debug, Clone, Default)]
pub struct InProcHub {
    inner: Arc<Mutex<HubInner>>,
}

impl InProcHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        InProcHub::default()
    }

    /// Attaches node `id`, returning its transport endpoint.
    pub fn attach(&self, id: u32) -> InProcTransport {
        self.inner.lock().inboxes.entry(id).or_default();
        InProcTransport { hub: self.clone(), node: id, mtu: usize::MAX }
    }

    /// Detaches a node (its queued frames are dropped).
    pub fn detach(&self, id: u32) {
        let mut inner = self.inner.lock();
        inner.inboxes.remove(&id);
        for members in inner.groups.values_mut() {
            members.remove(&id);
        }
    }
}

/// [`Transport`] endpoint on an [`InProcHub`].
#[derive(Debug)]
pub struct InProcTransport {
    hub: InProcHub,
    node: u32,
    mtu: usize,
}

impl InProcTransport {
    /// Overrides the advertised MTU (useful to exercise fragmentation
    /// without a simulated network).
    pub fn set_mtu(&mut self, mtu: usize) {
        self.mtu = mtu;
    }
}

impl Transport for InProcTransport {
    fn local_node(&self) -> u32 {
        self.node
    }

    fn mtu(&self) -> usize {
        self.mtu
    }

    fn send(&mut self, dest: TransportDestination, frame: Bytes) -> Result<(), TransportError> {
        if frame.len() > self.mtu {
            return Err(TransportError::PayloadTooLarge { size: frame.len(), mtu: self.mtu });
        }
        let mut inner = self.hub.inner.lock();
        if !inner.inboxes.contains_key(&self.node) {
            return Err(TransportError::Closed);
        }
        let targets: Vec<u32> = match dest {
            TransportDestination::Node(n) => {
                if inner.inboxes.contains_key(&n) {
                    vec![n]
                } else {
                    Vec::new() // datagram semantics: silently dropped
                }
            }
            TransportDestination::Group(g) => inner
                .groups
                .get(&g)
                .map(|m| m.iter().copied().filter(|id| *id != self.node).collect())
                .unwrap_or_default(),
            TransportDestination::Broadcast => {
                inner.inboxes.keys().copied().filter(|id| *id != self.node).collect()
            }
        };
        let mut sorted = targets;
        sorted.sort_unstable();
        for t in sorted {
            if let Some(q) = inner.inboxes.get_mut(&t) {
                q.push_back((self.node, frame.clone()));
            }
        }
        Ok(())
    }

    fn recv(&mut self) -> Option<(u32, Bytes)> {
        self.hub.inner.lock().inboxes.get_mut(&self.node)?.pop_front()
    }

    fn join(&mut self, group: u32) {
        self.hub.inner.lock().groups.entry(group).or_default().insert(self.node);
    }

    fn leave(&mut self, group: u32) {
        if let Some(m) = self.hub.inner.lock().groups.get_mut(&group) {
            m.remove(&self.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_is_immediate_and_fifo() {
        let hub = InProcHub::new();
        let mut a = hub.attach(1);
        let mut b = hub.attach(2);
        a.send(TransportDestination::Node(2), Bytes::from_static(b"1")).unwrap();
        a.send(TransportDestination::Node(2), Bytes::from_static(b"2")).unwrap();
        assert_eq!(b.recv().unwrap().1.as_ref(), b"1");
        assert_eq!(b.recv().unwrap().1.as_ref(), b"2");
        assert!(b.recv().is_none());
    }

    #[test]
    fn groups_and_broadcast() {
        let hub = InProcHub::new();
        let mut a = hub.attach(1);
        let mut b = hub.attach(2);
        let mut c = hub.attach(3);
        b.join(5);
        a.send(TransportDestination::Group(5), Bytes::from_static(b"g")).unwrap();
        assert!(b.recv().is_some());
        assert!(c.recv().is_none());
        a.send(TransportDestination::Broadcast, Bytes::from_static(b"b")).unwrap();
        assert!(b.recv().is_some());
        assert!(c.recv().is_some());
        assert!(a.recv().is_none(), "no self-delivery");
        b.leave(5);
        a.send(TransportDestination::Group(5), Bytes::from_static(b"g2")).unwrap();
        assert!(b.recv().is_none());
    }

    #[test]
    fn detach_closes_endpoint() {
        let hub = InProcHub::new();
        let mut a = hub.attach(1);
        let _b = hub.attach(2);
        hub.detach(1);
        assert_eq!(
            a.send(TransportDestination::Broadcast, Bytes::new()).unwrap_err(),
            TransportError::Closed
        );
    }

    #[test]
    fn send_to_missing_node_is_dropped_silently() {
        let hub = InProcHub::new();
        let mut a = hub.attach(1);
        a.send(TransportDestination::Node(99), Bytes::from_static(b"x")).unwrap();
    }

    #[test]
    fn mtu_override_enforced() {
        let hub = InProcHub::new();
        let mut a = hub.attach(1);
        a.set_mtu(4);
        assert!(a.send(TransportDestination::Broadcast, Bytes::from_static(b"12345")).is_err());
        assert!(a.send(TransportDestination::Broadcast, Bytes::from_static(b"1234")).is_ok());
    }
}
