//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Implemented locally rather than pulled from a crate: the frame integrity
//! check is a core protocol element and must stay byte-identical across
//! every MAREA port.

/// Lazily-built 256-entry lookup table for the reflected IEEE polynomial
/// 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) of `data`.
///
/// # Examples
///
/// ```
/// // Standard check value for "123456789".
/// assert_eq!(marea_protocol::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed successive slices with the running state.
/// Initialize with `0xFFFF_FFFF` and finalize by xoring `0xFFFF_FFFF`.
pub(crate) fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let oneshot = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(5) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
