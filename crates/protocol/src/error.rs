//! Protocol-layer error types.

use std::error::Error;
use std::fmt;

use marea_encoding::DecodeError;

/// Error produced while parsing a frame from raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Input shorter than the fixed header.
    TooShort {
        /// Bytes available.
        len: usize,
    },
    /// The magic number did not match.
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message-kind byte.
    BadKind(u8),
    /// Header length field disagrees with the actual input length.
    LengthMismatch {
        /// Length declared in the header.
        declared: u32,
        /// Payload bytes actually present.
        actual: usize,
    },
    /// Payload larger than [`MAX_FRAME_PAYLOAD`](crate::MAX_FRAME_PAYLOAD).
    PayloadTooLarge(u32),
    /// CRC32 check failed.
    BadCrc {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort { len } => write!(f, "frame of {len} bytes is too short"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown message kind {k:#04x}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "declared payload length {declared} but {actual} bytes present")
            }
            FrameError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds limit"),
            FrameError::BadCrc { stored, computed } => {
                write!(f, "crc mismatch (stored {stored:#010x}, computed {computed:#010x})")
            }
        }
    }
}

impl Error for FrameError {}

/// Error produced while interpreting a frame payload as a typed message, or
/// by one of the protocol state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Frame-level failure.
    Frame(FrameError),
    /// Payload deserialization failure.
    Decode(DecodeError),
    /// A reliable-delivery send was attempted while the window is full.
    WindowFull {
        /// Configured window size.
        window: usize,
    },
    /// Reliable delivery gave up after the configured retry budget.
    DeliveryFailed {
        /// Sequence number of the abandoned message.
        seq: u64,
        /// Number of transmissions attempted.
        attempts: u32,
    },
    /// A fragment set exceeded limits or was internally inconsistent.
    BadFragment(&'static str),
    /// A file-transfer message referenced an unknown transfer/revision.
    UnknownTransfer,
    /// A file-transfer message was inconsistent with the announced metadata.
    BadTransfer(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Frame(e) => write!(f, "frame error: {e}"),
            ProtocolError::Decode(e) => write!(f, "payload decode error: {e}"),
            ProtocolError::WindowFull { window } => {
                write!(f, "reliable send window of {window} messages is full")
            }
            ProtocolError::DeliveryFailed { seq, attempts } => {
                write!(f, "delivery of seq {seq} abandoned after {attempts} attempts")
            }
            ProtocolError::BadFragment(why) => write!(f, "bad fragment: {why}"),
            ProtocolError::UnknownTransfer => write!(f, "unknown file transfer"),
            ProtocolError::BadTransfer(why) => write!(f, "inconsistent file transfer: {why}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Frame(e) => Some(e),
            ProtocolError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        ProtocolError::Frame(e)
    }
}

impl From<DecodeError> for ProtocolError {
    fn from(e: DecodeError) -> Self {
        ProtocolError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let fe = FrameError::BadMagic(0x1234);
        assert_eq!(fe.to_string(), "bad frame magic 0x1234");
        let pe: ProtocolError = fe.into();
        assert!(pe.source().is_some());
        let pe: ProtocolError = DecodeError::InvalidUtf8.into();
        assert!(pe.to_string().contains("utf-8"));
    }
}
