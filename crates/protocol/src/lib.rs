//! # marea-protocol — the PEPt *Protocol* layer
//!
//! > *"Protocol frames the encoded data to denote the intent of the message.
//! > Protocol subsystem is also responsible for frame retransmission and
//! > other low level bookkeeping tasks."* — paper §6
//!
//! This crate contains every wire state machine of the middleware, with no
//! I/O and no clock of its own — all functions take explicit `now`
//! timestamps ([`Micros`]), which is what makes the whole middleware
//! deterministic under the simulated network and testable with properties:
//!
//! * [`frame`](Frame) — the 16-byte frame header (magic, version, kind,
//!   source node, length) plus a CRC32 trailer over header and payload;
//! * [`messages`] — the typed vocabulary: discovery and heartbeats, variable
//!   samples, events, remote invocation, and MFTP-like file transfer;
//! * [`fragment`] — fragmentation/reassembly for payloads above the
//!   transport MTU;
//! * [`arq`] — the sliding-window acknowledge/retransmit machinery that
//!   backs the *event* and *remote invocation* primitives (paper §4.2: "a
//!   mechanism to acknowledge and resend lost packets ... more efficient for
//!   event messages than the generic case provided by the TCP stack");
//! * [`mftp`] — announce/transfer/completion file distribution loosely based
//!   on Starburst MFTP (paper §4.4), with NACK chunk-run compression,
//!   revisions and late join;
//! * [`fec`] — adaptive-rate erasure coding *below* ARQ: interleaved
//!   systematic XOR parity groups that let the receiver rebuild erased
//!   reliable-channel frames without a retransmission round-trip, with a
//!   loss-driven code-rate controller for degraded radio links.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
mod crc;
mod error;
pub mod fec;
pub mod fragment;
mod frame;
mod ids;
pub mod messages;
pub mod mftp;
mod time;

pub use crc::crc32;
pub use error::{FrameError, ProtocolError};
pub use fec::{FecConfig, FecRate};
pub use frame::{Frame, FrameHeader, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD, PROTOCOL_VERSION};
pub use ids::{GroupId, NodeId, RequestId, ServiceId, TransferId};
pub use messages::{Message, MessageKind};
pub use time::{Micros, ProtoDuration};
