//! Sliding-window ARQ: the reliable channel under events and invocations.
//!
//! The paper maps events onto "UDP using a mechanism to acknowledge and
//! resend lost packets", arguing that "this specific retransmission
//! mechanism in the application layer is more efficient for event messages
//! than the generic case provided by the TCP stack" (§4.2). This module is
//! that mechanism: a per-link, message-oriented sliding window with
//! cumulative + selective acknowledgements and exponential backoff.
//!
//! Unlike TCP there is no connection setup, no in-order byte stream head-of-
//! line blocking across *channels*, and acks piggyback one 64-bit selective
//! bitmap — the `arq_vs_tcp` bench (experiment C3) quantifies the payoff.
//!
//! Sequence numbering starts at 0 per channel. An acknowledgement carries
//! `cumulative` = the receiver's next expected sequence (all `seq <
//! cumulative` delivered) plus a bitmap covering `cumulative+1 ..=
//! cumulative+64` (bit `i` set means `cumulative + 1 + i` was received out
//! of order).

use std::collections::BTreeMap;

use bytes::Bytes;

use crate::error::ProtocolError;
use crate::messages::Message;
use crate::time::{Micros, ProtoDuration};

/// Tuning parameters for an ARQ sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Maximum unacknowledged messages in flight.
    pub window: usize,
    /// First retransmission timeout.
    pub initial_rto: ProtoDuration,
    /// Upper bound for the exponential backoff.
    pub max_rto: ProtoDuration,
    /// Transmission attempts (including the first) before giving up.
    pub max_attempts: u32,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            window: 64,
            initial_rto: ProtoDuration::from_millis(50),
            max_rto: ProtoDuration::from_secs(1),
            max_attempts: 10,
        }
    }
}

/// Counters exposed for the benchmarks and the container's health report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArqStats {
    /// First transmissions.
    pub sent: u64,
    /// Retransmissions.
    pub retransmitted: u64,
    /// Messages acknowledged.
    pub acked: u64,
    /// Messages abandoned after the retry budget.
    pub failed: u64,
    /// Payload bytes sent, including retransmissions.
    pub payload_bytes: u64,
}

#[derive(Debug)]
struct InFlight {
    payload: Bytes,
    attempts: u32,
    rto: ProtoDuration,
    next_retx: Micros,
}

/// Sending half of a reliable channel.
#[derive(Debug)]
pub struct ArqSender {
    channel: u16,
    config: ArqConfig,
    next_seq: u64,
    inflight: BTreeMap<u64, InFlight>,
    stats: ArqStats,
}

impl ArqSender {
    /// Creates a sender for `channel`.
    pub fn new(channel: u16, config: ArqConfig) -> Self {
        ArqSender {
            channel,
            config,
            next_seq: 0,
            inflight: BTreeMap::new(),
            stats: ArqStats::default(),
        }
    }

    /// Channel id.
    pub fn channel(&self) -> u16 {
        self.channel
    }

    /// `true` when another message can enter the window.
    pub fn can_send(&self) -> bool {
        self.inflight.len() < self.config.window
    }

    /// Messages currently awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ArqStats {
        self.stats
    }

    /// Accepts `payload` into the window and returns the wire message for
    /// its first transmission.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::WindowFull`] when the window has no room; the caller
    /// queues and retries after the next acknowledgement.
    pub fn send(&mut self, payload: Bytes, now: Micros) -> Result<Message, ProtocolError> {
        if !self.can_send() {
            return Err(ProtocolError::WindowFull { window: self.config.window });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.sent += 1;
        self.stats.payload_bytes += payload.len() as u64;
        self.inflight.insert(
            seq,
            InFlight {
                payload: payload.clone(),
                attempts: 1,
                rto: self.config.initial_rto,
                next_retx: now + self.config.initial_rto,
            },
        );
        Ok(Message::RelData { channel: self.channel, seq, payload })
    }

    /// Processes an acknowledgement; returns how many messages left the
    /// window.
    pub fn on_ack(&mut self, cumulative: u64, sack: u64) -> usize {
        let before = self.inflight.len();
        self.inflight.retain(|&seq, _| {
            if seq < cumulative {
                return false;
            }
            if seq > cumulative {
                let offset = seq - cumulative - 1;
                if offset < 64 && (sack >> offset) & 1 == 1 {
                    return false;
                }
            }
            true
        });
        let acked = before - self.inflight.len();
        self.stats.acked += acked as u64;
        acked
    }

    /// Produces due retransmissions and expired failures.
    ///
    /// Call once per container tick. Abandoned sequences are reported so
    /// the container can raise the programmed emergency procedure (paper
    /// §4.3: "the middleware will warn the system").
    pub fn poll(&mut self, now: Micros) -> (Vec<Message>, Vec<u64>) {
        let mut retransmits = Vec::new();
        let mut failures = Vec::new();
        for (&seq, entry) in self.inflight.iter_mut() {
            if entry.next_retx > now {
                continue;
            }
            if entry.attempts >= self.config.max_attempts {
                failures.push(seq);
                continue;
            }
            entry.attempts += 1;
            entry.rto = ProtoDuration(entry.rto.0.saturating_mul(2)).min(self.config.max_rto);
            entry.next_retx = now + entry.rto;
            self.stats.retransmitted += 1;
            self.stats.payload_bytes += entry.payload.len() as u64;
            retransmits.push(Message::RelData {
                channel: self.channel,
                seq,
                payload: entry.payload.clone(),
            });
        }
        for seq in &failures {
            self.inflight.remove(seq);
            self.stats.failed += 1;
        }
        (retransmits, failures)
    }

    /// Earliest pending retransmission deadline, for tick scheduling.
    pub fn next_deadline(&self) -> Option<Micros> {
        self.inflight.values().map(|e| e.next_retx).min()
    }
}

/// Receiving half of a reliable channel.
#[derive(Debug)]
pub struct ArqReceiver {
    channel: u16,
    next_expected: u64,
    buffered: BTreeMap<u64, Bytes>,
    max_buffer: usize,
    duplicates: u64,
}

impl ArqReceiver {
    /// Creates a receiver for `channel`; `max_buffer` bounds out-of-order
    /// storage (protecting low-resource nodes).
    pub fn new(channel: u16, max_buffer: usize) -> Self {
        ArqReceiver {
            channel,
            next_expected: 0,
            buffered: BTreeMap::new(),
            max_buffer,
            duplicates: 0,
        }
    }

    /// Channel id.
    pub fn channel(&self) -> u16 {
        self.channel
    }

    /// Next sequence the receiver is waiting for.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }

    /// Count of duplicate receptions observed (retransmission overshoot).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Processes incoming data; returns the payloads that became deliverable
    /// *in order* (possibly none, possibly several when a gap closes).
    pub fn on_data(&mut self, seq: u64, payload: Bytes) -> Vec<Bytes> {
        if seq < self.next_expected || self.buffered.contains_key(&seq) {
            self.duplicates += 1;
            return Vec::new();
        }
        if seq != self.next_expected {
            // Out of order: buffer if within bounds, else drop (the sender
            // retransmits).
            if self.buffered.len() < self.max_buffer {
                self.buffered.insert(seq, payload);
            }
            return Vec::new();
        }
        let mut out = vec![payload];
        self.next_expected += 1;
        while let Some(p) = self.buffered.remove(&self.next_expected) {
            out.push(p);
            self.next_expected += 1;
        }
        out
    }

    /// Builds the current acknowledgement message.
    ///
    /// `loss_permille` is not ARQ state: it is the FEC receiver's
    /// smoothed shard-loss estimate, piggybacked here so the peer's
    /// adaptive code-rate controller gets feedback for free (0 when the
    /// link runs no FEC).
    pub fn make_ack(&self) -> Message {
        self.make_ack_with_loss(0)
    }

    /// [`ArqReceiver::make_ack`] with an explicit piggybacked loss
    /// estimate.
    pub fn make_ack_with_loss(&self, loss_permille: u16) -> Message {
        let mut sack = 0u64;
        for &seq in self.buffered.keys() {
            let offset = seq - self.next_expected;
            debug_assert!(offset >= 1, "buffered seq below next_expected");
            let bit = offset - 1;
            if bit < 64 {
                sack |= 1 << bit;
            }
        }
        Message::RelAck {
            channel: self.channel,
            cumulative: self.next_expected,
            sack,
            loss_permille,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: u8) -> Bytes {
        Bytes::from(vec![n; 4])
    }

    fn cfg() -> ArqConfig {
        ArqConfig {
            window: 8,
            initial_rto: ProtoDuration::from_millis(10),
            max_rto: ProtoDuration::from_millis(80),
            max_attempts: 4,
        }
    }

    fn seq_of(m: &Message) -> u64 {
        match m {
            Message::RelData { seq, .. } => *seq,
            _ => panic!("not data"),
        }
    }

    #[test]
    fn lossless_in_order_delivery() {
        let mut tx = ArqSender::new(1, cfg());
        let mut rx = ArqReceiver::new(1, 64);
        let mut delivered = Vec::new();
        for i in 0..5u8 {
            let m = tx.send(payload(i), Micros::ZERO).unwrap();
            if let Message::RelData { seq, payload, .. } = m {
                delivered.extend(rx.on_data(seq, payload));
            }
        }
        assert_eq!(delivered.len(), 5);
        if let Message::RelAck { cumulative, sack, .. } = rx.make_ack() {
            assert_eq!(cumulative, 5);
            assert_eq!(sack, 0);
            assert_eq!(tx.on_ack(cumulative, sack), 5);
        }
        assert_eq!(tx.inflight_len(), 0);
        assert_eq!(tx.stats().retransmitted, 0);
    }

    #[test]
    fn window_fills_and_reopens() {
        let mut tx = ArqSender::new(1, cfg());
        for i in 0..8u8 {
            tx.send(payload(i), Micros::ZERO).unwrap();
        }
        assert!(!tx.can_send());
        assert!(matches!(
            tx.send(payload(9), Micros::ZERO),
            Err(ProtocolError::WindowFull { window: 8 })
        ));
        tx.on_ack(3, 0); // seqs 0,1,2 acked
        assert!(tx.can_send());
        assert_eq!(tx.inflight_len(), 5);
    }

    #[test]
    fn gap_is_buffered_and_closed() {
        let mut rx = ArqReceiver::new(1, 64);
        assert!(rx.on_data(1, payload(1)).is_empty());
        assert!(rx.on_data(2, payload(2)).is_empty());
        // Ack advertises the gap via sack bits.
        if let Message::RelAck { cumulative, sack, .. } = rx.make_ack() {
            assert_eq!(cumulative, 0);
            assert_eq!(sack, 0b11); // seqs 1 and 2 held
        }
        let got = rx.on_data(0, payload(0));
        assert_eq!(got.len(), 3, "gap closure releases the whole run");
        assert_eq!(rx.next_expected(), 3);
    }

    #[test]
    fn duplicates_are_counted_not_delivered() {
        let mut rx = ArqReceiver::new(1, 64);
        assert_eq!(rx.on_data(0, payload(0)).len(), 1);
        assert!(rx.on_data(0, payload(0)).is_empty());
        assert!(rx.on_data(5, payload(5)).is_empty());
        assert!(rx.on_data(5, payload(5)).is_empty());
        assert_eq!(rx.duplicates(), 2);
    }

    #[test]
    fn selective_ack_removes_out_of_order_receipts() {
        let mut tx = ArqSender::new(1, cfg());
        for i in 0..4u8 {
            tx.send(payload(i), Micros::ZERO).unwrap();
        }
        // Receiver saw 0 and 2, not 1 and 3.
        // cumulative=1 (next expected), sack bit0 -> seq 2.
        let removed = tx.on_ack(1, 0b01);
        assert_eq!(removed, 2);
        assert_eq!(tx.inflight_len(), 2);
        let left: Vec<u64> = tx.inflight.keys().copied().collect();
        assert_eq!(left, vec![1, 3]);
    }

    #[test]
    fn retransmission_backs_off_and_eventually_fails() {
        let mut tx = ArqSender::new(1, cfg());
        tx.send(payload(0), Micros::ZERO).unwrap();
        let mut now = Micros::ZERO;
        let mut retx_count = 0;
        let mut failed = Vec::new();
        // Drive time forward far enough for all attempts to expire.
        for _ in 0..64 {
            now += ProtoDuration::from_millis(10);
            let (retx, fail) = tx.poll(now);
            retx_count += retx.len();
            failed.extend(fail);
            if !failed.is_empty() {
                break;
            }
        }
        assert_eq!(retx_count as u32, cfg().max_attempts - 1, "first send + retries");
        assert_eq!(failed, vec![0]);
        assert_eq!(tx.inflight_len(), 0);
        assert_eq!(tx.stats().failed, 1);
    }

    #[test]
    fn retransmits_carry_same_payload_and_seq() {
        let mut tx = ArqSender::new(3, cfg());
        let first = tx.send(payload(7), Micros::ZERO).unwrap();
        let (retx, _) = tx.poll(Micros::from_millis(11));
        assert_eq!(retx.len(), 1);
        assert_eq!(seq_of(&retx[0]), seq_of(&first));
        if let (Message::RelData { payload: a, .. }, Message::RelData { payload: b, .. }) =
            (&first, &retx[0])
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn ack_after_retransmit_cleans_window() {
        let mut tx = ArqSender::new(1, cfg());
        tx.send(payload(0), Micros::ZERO).unwrap();
        tx.poll(Micros::from_millis(11));
        assert_eq!(tx.on_ack(1, 0), 1);
        let (retx, fail) = tx.poll(Micros::from_secs(10));
        assert!(retx.is_empty() && fail.is_empty());
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut tx = ArqSender::new(1, cfg());
        assert_eq!(tx.next_deadline(), None);
        tx.send(payload(0), Micros::ZERO).unwrap();
        tx.send(payload(1), Micros::from_millis(5)).unwrap();
        assert_eq!(tx.next_deadline(), Some(Micros::from_millis(10)));
    }

    #[test]
    fn receiver_buffer_bound_is_respected() {
        let mut rx = ArqReceiver::new(1, 2);
        assert!(rx.on_data(1, payload(1)).is_empty());
        assert!(rx.on_data(2, payload(2)).is_empty());
        assert!(rx.on_data(3, payload(3)).is_empty()); // dropped silently
        let got = rx.on_data(0, payload(0));
        assert_eq!(got.len(), 3, "seq 3 was dropped, run stops at 2");
        assert_eq!(rx.next_expected(), 3);
    }

    #[test]
    fn sack_bitmap_caps_at_64() {
        let mut rx = ArqReceiver::new(1, 256);
        rx.on_data(70, payload(1)); // beyond bitmap range of cumulative 0
        if let Message::RelAck { cumulative, sack, .. } = rx.make_ack() {
            assert_eq!(cumulative, 0);
            assert_eq!(sack, 0, "seq 70 not representable, will be retransmitted");
        }
    }
}
