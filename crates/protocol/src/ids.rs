//! Identifier newtypes used across the wire protocol.

use std::fmt;

/// Identifier of a physical node (one service container per node, paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Globally unique identifier of one *service instance*.
///
/// Composed of the hosting node and a per-node sequence number; the same
/// service *name* may run as several instances on different nodes (that is
/// how the middleware provides redundancy, paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId {
    /// Node hosting the instance.
    pub node: NodeId,
    /// Per-node instance sequence number.
    pub seq: u32,
}

impl ServiceId {
    /// Creates a service id.
    pub fn new(node: NodeId, seq: u32) -> Self {
        ServiceId { node, seq }
    }

    /// Packs the id into a single u64 for wire encoding.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.node.0) << 32) | u64::from(self.seq)
    }

    /// Inverse of [`ServiceId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        ServiceId { node: NodeId((v >> 32) as u32), seq: v as u32 }
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.seq)
    }
}

/// Correlation id of one remote invocation (unique per calling node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Identifier of one file transfer session (unique per publishing node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(pub u64);

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xfer{}", self.0)
    }
}

/// Multicast group identifier, mapped by the transport to whatever the
/// underlying network provides (IP multicast groups, simulated fan-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The all-containers group every node joins at start-up; discovery and
    /// heartbeats travel here.
    pub const CONTROL: GroupId = GroupId(0);
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_id_packs_and_unpacks() {
        let id = ServiceId::new(NodeId(7), 42);
        assert_eq!(ServiceId::from_u64(id.to_u64()), id);
        let max = ServiceId::new(NodeId(u32::MAX), u32::MAX);
        assert_eq!(ServiceId::from_u64(max.to_u64()), max);
    }

    #[test]
    fn displays() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(ServiceId::new(NodeId(3), 1).to_string(), "node3#1");
        assert_eq!(RequestId(9).to_string(), "req9");
        assert_eq!(TransferId(2).to_string(), "xfer2");
        assert_eq!(GroupId::CONTROL.to_string(), "group0");
    }
}
